"""Differential tests: the compiled engines are observably the reference.

The fast execution engine (:mod:`repro.machine.fastexec`) trades
per-tick interpretation for pre-compiled dispatch plus an
epoch-invalidated guard cache; the trace tier
(:mod:`repro.machine.tracejit`) further compiles hot superblocks with
parameter-specialized guards.  Their shared contract is that nothing
observable changes: bit-identical program output, exit codes, and memory
image, and semantically identical stats (the dispatch/region-cache and
trace counters are the only additions).  These tests check the contract
three ways — property-based random programs run under all three engines,
targeted cache-invalidation scenarios, and end-to-end runs under an
aggressive page-moving policy engine and the multi-tenant scheduler.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carat.pipeline import CompileOptions, compile_carat
from repro.errors import ProtectionFault
from repro.kernel.kernel import Kernel
from repro.kernel.physmem import PhysicalMemory
from tests.support import run_carat, run_traditional
from repro.machine.fastexec import compile_module
from repro.machine.session import CaratSession, RunConfig
from repro.runtime import (
    PERM_RW,
    CaratRuntime,
    Region,
    RegionSet,
)
from repro.runtime.runtime import GuardSiteCell
from repro.workloads import get_workload

MB = 1024 * 1024

#: The stats fields that must match exactly between engines (everything
#: the cost model and the figures consume).  The dispatch-cache and
#: region-cache counters are deliberately absent: they describe the
#: engine, not the program.
SEMANTIC_FIELDS = [
    "cycles",
    "instructions",
    "loads",
    "stores",
    "calls",
    "translation_cycles",
    "guard_cycles",
    "tracking_cycles",
    "page_fault_cycles",
    "fast_tier_accesses",
    "slow_tier_accesses",
    "tier_cycles",
]

RUNTIME_FIELDS = [
    "guards_executed",
    "guard_cycles",
    "guard_faults",
    "tracking_events",
    "tracking_cycles",
]


def _snapshot(result):
    """Everything observable about a run, as a comparable value."""
    semantic = {f: getattr(result.stats, f) for f in SEMANTIC_FIELDS}
    runtime = None
    if result.process.runtime is not None:
        runtime = {
            f: getattr(result.process.runtime.stats, f) for f in RUNTIME_FIELDS
        }
    return (
        result.exit_code,
        tuple(result.output),
        semantic,
        runtime,
        bytes(result.kernel.memory._data),
    )


def _hot_trace(interpreter):
    """Setup hook: promote at 2 back-edge executions so even the tiny
    property-test programs exercise the trace tier."""
    if hasattr(interpreter, "set_trace_tuning"):
        interpreter.set_trace_tuning(threshold=2)


# ---------------------------------------------------------------------------
# Property-based: random programs behave identically under both engines.
# ---------------------------------------------------------------------------

_STMT_TEMPLATES = [
    "for (j = 0; j < N; j++) {{ a[j] = a[j] {op} {c}; }}",
    "acc = helper(acc % 100000);",
    "if (acc % 2 == 0) {{ acc = acc + {c}; }} else {{ acc = acc - {c}; }}",
    "f = f * 1.25 + (double)(acc % 7); acc = acc + (long)f % 1000;",
    "a[{c} % N] = acc % 1000;",
    "acc = acc * 3 + a[{c} % N];",
]


@st.composite
def mini_c_programs(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    seed = draw(st.integers(min_value=-1000, max_value=1000))
    statements = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_STMT_TEMPLATES),
                st.sampled_from(["+", "-", "*"]),
                st.integers(min_value=1, max_value=97),
            ),
            min_size=1,
            max_size=8,
        )
    )
    body = "\n  ".join(
        template.format(op=op, c=c) for template, op, c in statements
    )
    return f"""
long N = {n};
long acc;
long helper(long x) {{ return x * 7 + 3; }}
void main() {{
  long *a = (long*)malloc(N * 8);
  double f = 1.5;
  long i;
  long j;
  acc = {seed};
  for (i = 0; i < N; i++) {{ a[i] = i * 5 + 2; }}
  {body}
  for (i = 0; i < N; i++) {{ acc = acc + a[i]; }}
  print_long(acc % 1000000007);
  free(a);
}}
"""


class TestPropertyDifferential:
    @given(mini_c_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_programs_identical_under_carat(self, source):
        binary = compile_carat(source, CompileOptions(), module_name="fuzz")
        reference = _snapshot(run_carat(binary, engine="reference"))
        fast = _snapshot(run_carat(binary, engine="fast"))
        trace = _snapshot(
            run_carat(binary, engine="trace", setup=_hot_trace)
        )
        assert reference == fast
        assert reference == trace

    @given(mini_c_programs())
    @settings(max_examples=8, deadline=None)
    def test_random_programs_identical_under_traditional(self, source):
        binary = compile_carat(
            source,
            CompileOptions(guards=False, tracking=False),
            module_name="fuzz",
        )
        reference = _snapshot(run_traditional(binary, engine="reference"))
        fast = _snapshot(run_traditional(binary, engine="fast"))
        config = RunConfig(
            mode="traditional", engine="trace", trace_threshold=2
        )
        trace = _snapshot(CaratSession(config).run(binary))
        assert reference == fast
        assert reference == trace


# ---------------------------------------------------------------------------
# Targeted: the guard cache and its invalidation rules.
# ---------------------------------------------------------------------------


class TestGuardCacheInvalidation:
    def _runtime(self):
        regions = RegionSet(
            [Region(0x1000, 0x1000, PERM_RW), Region(0x4000, 0x2000, PERM_RW)]
        )
        runtime = CaratRuntime(PhysicalMemory(MB), regions)
        runtime.enable_region_cache()
        return runtime, regions

    def test_repeat_hits_after_one_miss(self):
        runtime, _ = self._runtime()
        cell = GuardSiteCell()
        for _ in range(5):
            runtime.guard_access(0x1800, 8, "read", cell)
        assert runtime.stats.region_cache_misses == 1
        assert runtime.stats.region_cache_hits == 4
        assert runtime.stats.guards_executed == 5

    def test_region_mutation_invalidates(self):
        runtime, regions = self._runtime()
        cell = GuardSiteCell()
        runtime.guard_access(0x1800, 8, "read", cell)
        runtime.guard_access(0x1800, 8, "read", cell)
        assert runtime.stats.region_cache_hits == 1
        regions.add(Region(0x8000, 0x1000, PERM_RW))
        runtime.guard_access(0x1800, 8, "read", cell)
        # The mutation must demote the probe to a full search, never a
        # stale hit.
        assert runtime.stats.region_cache_invalidations == 1
        assert runtime.stats.region_cache_misses == 2

    def test_removed_region_faults_despite_cache(self):
        runtime, regions = self._runtime()
        cell = GuardSiteCell()
        runtime.guard_access(0x4100, 8, "write", cell)
        runtime.guard_access(0x4100, 8, "write", cell)
        regions.remove(0x4000)
        # A stale hit would let this through; the generation bump means
        # it must re-search and fault.
        with pytest.raises(ProtectionFault):
            runtime.guard_access(0x4100, 8, "write", cell)
        assert runtime.stats.guard_faults == 1

    def test_execute_move_bumps_generation(self):
        runtime, regions = self._runtime()
        cell = GuardSiteCell()
        runtime.on_alloc(0x4100, 64)
        runtime.guard_access(0x4100, 8, "read", cell)
        generation = regions.version
        plan = runtime.patcher.plan_move(0x4000, 0x5000)
        runtime.patcher.execute_move(plan, 0x9000)
        assert regions.version > generation
        runtime.guard_access(0x4100, 8, "read", cell)
        assert runtime.stats.region_cache_invalidations == 1

    def test_cell_from_other_region_set_is_ignored(self):
        runtime, _ = self._runtime()
        other = RegionSet([Region(0x1000, 0x1000, PERM_RW)])
        cell = GuardSiteCell()
        cell.fill(other, other.find(0x1800), other.version)
        runtime.guard_access(0x1800, 8, "read", cell)
        # Identity mismatch: a different landing zone can never hit, even
        # with matching geometry and generation.
        assert runtime.stats.region_cache_hits == 0
        assert runtime.stats.region_cache_misses == 1

    def test_disabled_cache_counts_nothing(self):
        regions = RegionSet([Region(0x1000, 0x1000, PERM_RW)])
        runtime = CaratRuntime(PhysicalMemory(MB), regions)
        cell = GuardSiteCell()
        runtime.guard_access(0x1800, 8, "read", cell)
        runtime.guard_access(0x1800, 8, "read", cell)
        assert runtime.stats.region_cache_hits == 0
        assert runtime.stats.region_cache_misses == 0


# ---------------------------------------------------------------------------
# Targeted: the dispatch cache.
# ---------------------------------------------------------------------------


class TestDispatchCache:
    def test_compiled_code_reused_across_runs(self):
        workload = get_workload("ep", "tiny")
        binary = compile_carat(
            workload.source, CompileOptions(), module_name="ep"
        )
        first = run_carat(binary, engine="fast")
        second = run_carat(binary, engine="fast")
        assert first.stats.compiled_blocks > 0
        # The unit of caching is the basic block: a cold run misses once
        # per block it compiles, and a warm run hits once per block it
        # reuses — never a per-function or per-module count.
        assert first.stats.dispatch_cache_misses == first.stats.compiled_blocks
        assert first.stats.dispatch_cache_hits == 0
        assert second.stats.dispatch_cache_hits == second.stats.compiled_blocks
        assert second.stats.dispatch_cache_misses == 0
        assert second.stats.compiled_blocks == first.stats.compiled_blocks

    def test_module_code_identity(self):
        workload = get_workload("ep", "tiny")
        binary = compile_carat(
            workload.source, CompileOptions(), module_name="ep"
        )
        code, was_cached = compile_module(binary.module)
        assert not was_cached
        again, was_cached = compile_module(binary.module)
        assert was_cached
        assert again is code

    def test_reference_engine_keeps_counters_zero(self):
        workload = get_workload("ep", "tiny")
        result = run_carat(workload.source, name="ep")
        assert result.stats.compiled_blocks == 0
        assert result.stats.dispatch_cache_hits == 0
        assert result.stats.dispatch_cache_misses == 0
        assert result.stats.traces_compiled == 0
        assert result.stats.trace_exits == 0
        assert result.stats.trace_respecializations == 0
        assert result.stats.guard_checks_elided == 0

    def test_unknown_engine_rejected(self):
        workload = get_workload("ep", "tiny")
        with pytest.raises(ValueError, match="unknown engine"):
            run_carat(workload.source, name="ep", engine="warp")


# ---------------------------------------------------------------------------
# End-to-end: mid-run page moves under both engines.
# ---------------------------------------------------------------------------


def _policy_run(workload, engine):
    """An aggressive policy config (small epochs, scatter, tiering) so the
    run performs unsolicited page moves *while* the guard cache is live."""
    from repro.policy import (
        CompactionDaemon,
        HeatTracker,
        PolicyEngine,
        TieringBalancer,
        scatter_capsule,
    )

    kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
    policy = None

    def setup(interpreter):
        nonlocal policy
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        heat = HeatTracker()
        policy = PolicyEngine(
            kernel,
            process,
            epoch_cycles=5_000,
            budget_cycles=500_000,
            heat=heat,
            compaction=CompactionDaemon(kernel, process, target_fragmentation=0.05),
            tiering=TieringBalancer(kernel, process, heat, max_allocation_pages=40),
        )
        policy.attach(interpreter)

    result = run_carat(
        workload.source,
        kernel=kernel,
        name=workload.name,
        heap_size=512 * 1024,
        stack_size=128 * 1024,
        setup=setup,
        engine=engine,
    )
    return result, policy


class TestMidRunMoveParity:
    @pytest.mark.parametrize("name", ["canneal", "mcf"])
    def test_policy_moves_identical_under_all_engines(self, name):
        workload = get_workload(name, "tiny")
        reference, ref_policy = _policy_run(workload, "reference")
        fast, fast_policy = _policy_run(workload, "fast")
        trace, trace_policy = _policy_run(workload, "trace")
        assert _snapshot(reference) == _snapshot(fast)
        assert _snapshot(reference) == _snapshot(trace)
        # The runs must actually have moved pages, and the moves must have
        # invalidated live guard-cache entries (else the test proves
        # nothing).
        assert ref_policy.stats.total_moves > 0
        assert fast_policy.stats.total_moves == ref_policy.stats.total_moves
        assert trace_policy.stats.total_moves == ref_policy.stats.total_moves
        rt_stats = fast.process.runtime.stats
        assert rt_stats.region_cache_hits > 0
        assert rt_stats.region_cache_invalidations > 0


# ---------------------------------------------------------------------------
# End-to-end: multi-tenant scheduling under all three engines.
# ---------------------------------------------------------------------------


class TestMultiTenantParity:
    def _schedule(self, engine):
        from repro.multiproc import Scheduler, TenantSpec

        specs = [
            TenantSpec(get_workload("ep", "tiny").source, name="ep"),
            TenantSpec(get_workload("cg", "tiny").source, name="cg"),
        ]
        config = RunConfig(
            engine=engine,
            quantum=400,
            heap_size=256 * 1024,
            stack_size=64 * 1024,
            trace_threshold=4,
        )
        return Scheduler(config, specs).run()

    def test_scheduled_tenants_fingerprint_identically(self):
        """Per-tenant fingerprints (output + every modeled counter) must
        match across engines even with quantum interleaving — tenant
        switches must invalidate per-site specialization correctly, and
        compiled traces must never leak across tenant interpreters."""
        reference = self._schedule("reference")
        fast = self._schedule("fast")
        trace = self._schedule("trace")
        assert reference.fingerprints() == fast.fingerprints()
        assert reference.fingerprints() == trace.fingerprints()
        # The trace run must actually have compiled traces in at least
        # one tenant, or this proves nothing about the trace tier.
        assert any(
            r.stats.traces_compiled > 0 for r in trace.tenants.values()
        )
