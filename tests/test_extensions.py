"""Extensions beyond the prototype: allocation-granularity movement
(Section 6 future work) and seamless stack expansion (Section 2.2)."""

import pytest

from repro.carat import compile_carat
from repro.errors import KernelError, ProtectionFault
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter
from tests.conftest import LINKED_LIST_SOURCE


class TestAllocationGranularityMoves:
    def _loaded(self, steps=1200):
        binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(steps)
        return kernel, process, interp

    def test_single_allocation_move_preserves_semantics(self):
        kernel, process, interp = self._loaded()
        process.runtime.flush_escapes()
        victim = process.runtime.worst_case_allocation()
        assert victim.kind == "heap"
        snaps = interp.register_snapshots()
        cost, cycles = kernel.request_allocation_move(
            process, victim, register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        assert cost.page_expand == 0  # no granularity mismatch
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_no_region_change_needed(self):
        kernel, process, interp = self._loaded()
        regions_before = len(process.regions)
        version_before = process.regions.version
        victim = process.runtime.worst_case_allocation()
        snaps = interp.register_snapshots()
        kernel.request_allocation_move(process, victim, register_snapshots=snaps)
        interp.apply_snapshots(snaps)
        # The destination came from inside the heap region: the region set
        # is untouched — the paper's motivation for dropping pages.
        assert len(process.regions) == regions_before
        assert process.regions.version == version_before

    def test_cheaper_than_page_move(self):
        kernel, process, interp = self._loaded()
        process.runtime.flush_escapes()
        victim = process.runtime.worst_case_allocation()
        snaps = interp.register_snapshots()
        alloc_cost, _ = kernel.request_allocation_move(
            process, victim, register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        # Now a page-granularity move of the same allocation's (new) page.
        snaps = interp.register_snapshots()
        _, page_cost, _ = kernel.request_page_move(
            process,
            victim.address & ~(PAGE_SIZE - 1),
            register_snapshots=snaps,
        )
        interp.apply_snapshots(snaps)
        assert alloc_cost.total < page_cost.total
        # The savings come from expansion + bulk movement, as Table 3's
        # "w/o expand" column projects.
        assert alloc_cost.alloc_and_move < page_cost.alloc_and_move
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_many_allocation_moves(self):
        kernel, process, interp = self._loaded(steps=200)
        moves = 0
        while True:
            status = interp.run_steps(150)
            if status == "done":
                break
            process.runtime.flush_escapes()
            heap_allocs = [
                a for a in process.runtime.table if a.kind == "heap"
            ]
            if not heap_allocs:
                continue
            victim = heap_allocs[moves % len(heap_allocs)]
            snaps = interp.register_snapshots()
            kernel.request_allocation_move(
                process, victim, register_snapshots=snaps
            )
            interp.apply_snapshots(snaps)
            moves += 1
        assert moves >= 3
        assert interp.output == [str(sum(range(40)))]
        process.runtime.table.check_invariants()


DEEP_RECURSION = """
long deep(long n) {
  long pad[64];
  pad[0] = n;
  if (n == 0) { return 0; }
  return deep(n - 1) + pad[0];
}
void main() { print_long(deep(%d)); }
"""


class TestStackExpansion:
    def _loaded(self, depth, stack_size):
        binary = compile_carat(DEEP_RECURSION % depth, module_name="deep")
        kernel = Kernel()
        # Leave a free gap below the capsule so contiguous expansion can
        # succeed (frames below the first capsule are otherwise reserved).
        spacer = kernel.frames.alloc_address(32)
        process = kernel.load_carat(binary, stack_size=stack_size)
        kernel.frames.free_address(spacer, 32)
        interp = Interpreter(process, kernel)
        return kernel, process, interp

    def test_deep_recursion_faults_on_small_stack(self):
        kernel, process, interp = self._loaded(depth=40, stack_size=8192)
        interp.start("main")
        with pytest.raises(ProtectionFault) as info:
            interp.run_steps(10_000_000)
        assert info.value.access == "stack"

    def test_kernel_expands_and_program_completes(self):
        depth = 40
        kernel, process, interp = self._loaded(depth=depth, stack_size=8192)
        interp.start("main")
        expansions = 0
        while True:
            try:
                status = interp.run_steps(10_000_000)
            except ProtectionFault as fault:
                if fault.access != "stack":
                    raise
                kernel.expand_stack(process, 16 * PAGE_SIZE)
                interp.retry_current_instruction()
                expansions += 1
                continue
            if status == "done":
                break
        assert expansions >= 1
        assert interp.output == [str(sum(range(1, depth + 1)))]

    def test_expansion_grows_the_region(self):
        kernel, process, interp = self._loaded(depth=5, stack_size=8192)
        base_before = process.layout.stack_base
        new_base = kernel.expand_stack(process, 4 * PAGE_SIZE)
        assert new_base < base_before
        assert process.layout.stack_base == new_base
        # The new floor is permitted memory.
        assert process.regions.check(new_base, 8, "write")

    def test_expansion_fails_without_adjacent_frames(self):
        binary = compile_carat(DEEP_RECURSION % 5, module_name="deep")
        kernel = Kernel()
        process = kernel.load_carat(binary, stack_size=8192)
        # Frames below the capsule are the reserved low frames: no room.
        with pytest.raises(KernelError, match="contiguously"):
            kernel.expand_stack(process, 4 * PAGE_SIZE)

    def test_retry_reexecutes_faulting_alloca(self):
        kernel, process, interp = self._loaded(depth=40, stack_size=8192)
        interp.start("main")
        with pytest.raises(ProtectionFault):
            interp.run_steps(10_000_000)
        sp_at_fault = interp.sp
        kernel.expand_stack(process, 16 * PAGE_SIZE)
        interp.retry_current_instruction()
        interp.run_steps(10_000_000)
        # The retried alloca advanced SP past the old floor at some point;
        # the program then completed and unwound.
        assert interp.finished
