"""The cross-layer memory-state sanitizer.

Two halves:

* **clean runs** — real programs under both execution models, with the
  sanitizer attached at every hook point, must report zero violations
  (the invariants actually hold through moves, faults, and frees);
* **fault injection meta-tests** — each :class:`FaultInjector` method
  breaks one invariant the way a real bug would, and the checker must
  flag it with the matching rule.  A sanitizer that passes clean runs
  but misses injected faults is measuring nothing.
"""

import pytest

from tests.support import run_carat, run_traditional
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.allocation_table import AllocationTable
from repro.sanitizer import (
    FaultInjector,
    InvariantChecker,
    Sanitizer,
    SanitizerError,
    ShadowedEscapeMap,
    install_escape_shadow,
)
from tests.conftest import LINKED_LIST_SOURCE, SUM_SOURCE


@pytest.fixture
def checker():
    return InvariantChecker()


@pytest.fixture
def carat_run():
    """A finished CARAT run with live escapes (linked list), sanitized."""
    result = run_carat(LINKED_LIST_SOURCE, sanitize=True)
    assert result.exit_code == 0
    return result


@pytest.fixture
def traditional_run():
    result = run_traditional(LINKED_LIST_SOURCE, sanitize=True)
    assert result.exit_code == 0
    return result


class TestCleanRuns:
    def test_carat_run_is_clean(self, carat_run):
        sanitizer = carat_run.sanitizer
        assert sanitizer.ok
        assert sanitizer.checks_run >= 2  # at least load + end-of-run
        assert sanitizer.report.violations == []
        assert carat_run.output == ["780"]

    def test_traditional_run_is_clean(self, traditional_run):
        sanitizer = traditional_run.sanitizer
        assert sanitizer.ok
        assert sanitizer.checks_run >= 2
        assert traditional_run.output == ["780"]

    def test_tick_checkpoints_fire(self):
        result = run_carat(
            SUM_SOURCE,
            sanitize=True,
            setup=lambda interp: interp.set_tick_interval(50),
        )
        assert result.exit_code == 0
        assert result.sanitizer.ok
        # load + many safepoint ticks + end-of-run.
        assert result.sanitizer.checks_run > 3

    def test_every_n_ticks_thins_checkpoints(self):
        dense = run_carat(
            SUM_SOURCE,
            sanitizer=Sanitizer(every_n_ticks=1),
            setup=lambda interp: interp.set_tick_interval(50),
        )
        sparse = run_carat(
            SUM_SOURCE,
            sanitizer=Sanitizer(every_n_ticks=8),
            setup=lambda interp: interp.set_tick_interval(50),
        )
        assert sparse.sanitizer.checks_run < dense.sanitizer.checks_run

    def test_rule_set_is_complete(self, checker):
        names = checker.rule_names()
        for expected in [
            "region-geometry",
            "allocation-table",
            "allocation-coverage",
            "escape-map",
            "escape-shadow",
            "register-coverage",
            "tlb",
            "frame-ownership",
            "heap",
        ]:
            assert expected in names


class TestFaultInjection:
    """Every fault class named by the issue must be flagged."""

    def test_overlapping_regions_detected(self, carat_run, checker):
        kernel, process = carat_run.kernel, carat_run.process
        assert checker.check_kernel(kernel).ok
        FaultInjector(kernel).overlap_regions(process)
        report = checker.check_kernel(kernel)
        assert not report.ok
        assert report.by_rule("region-geometry")

    def test_dropped_escape_detected(self, carat_run, checker):
        kernel, process = carat_run.kernel, carat_run.process
        assert checker.check_kernel(kernel).ok
        FaultInjector(kernel).drop_escape(process)
        report = checker.check_kernel(kernel)
        assert not report.ok
        assert report.by_rule("escape-shadow")

    def test_skipped_register_patch_detected(self, carat_run, checker):
        kernel, process = carat_run.kernel, carat_run.process
        snapshot = FaultInjector(kernel).skip_register_patch(process)
        # The kernel-side state is consistent (the move itself was legal)...
        assert checker.check_kernel(kernel).ok
        # ...but the unpatched register aims into the moved-away range.
        report = checker.check_kernel(kernel, register_snapshots=[snapshot])
        assert not report.ok
        assert report.by_rule("register-coverage")

    def test_patched_register_passes(self, carat_run, checker):
        """Control: the same move WITH the snapshot passed is clean."""
        kernel, process = carat_run.kernel, carat_run.process
        from repro.kernel.pagetable import PAGE_SIZE
        from repro.runtime.patching import RegisterSnapshot

        allocation = next(
            a for a in process.runtime.table if a.kind == "heap"
        )
        interior = allocation.address + allocation.size // 2
        snapshot = RegisterSnapshot(0, {"rax": interior}, {"rax"})
        page = allocation.address & ~(PAGE_SIZE - 1)
        kernel.request_page_move(
            process, page, 1, register_snapshots=[snapshot]
        )
        assert snapshot.slots["rax"] == allocation.address + allocation.size // 2
        report = checker.check_kernel(kernel, register_snapshots=[snapshot])
        assert report.ok

    def test_stale_tlb_detected(self, traditional_run, checker):
        kernel, process = traditional_run.kernel, traditional_run.process
        assert checker.check_kernel(kernel).ok
        FaultInjector(kernel).stale_tlb(process)
        report = checker.check_kernel(kernel)
        assert not report.ok
        assert report.by_rule("tlb")

    def test_leaked_frame_detected(self, carat_run, checker):
        kernel = carat_run.kernel
        assert checker.check_kernel(kernel).ok
        frame = FaultInjector(kernel).leak_frame()
        report = checker.check_kernel(kernel)
        assert not report.ok
        violations = report.by_rule("frame-ownership")
        assert any(v.subject == frame for v in violations)

    def test_hooks_raise_at_next_checkpoint(self, carat_run):
        """With raise_on_violation (the default), corruption surfaces as
        a SanitizerError at the next checkpoint — not as silent state."""
        kernel, process = carat_run.kernel, carat_run.process
        FaultInjector(kernel).overlap_regions(process)
        with pytest.raises(SanitizerError) as excinfo:
            carat_run.sanitizer.check_now(kernel)
        assert excinfo.value.report.by_rule("region-geometry")

    def test_injection_log(self, carat_run):
        injector = FaultInjector(carat_run.kernel)
        injector.overlap_regions(carat_run.process)
        injector.leak_frame()
        assert len(injector.injected) == 2
        assert "overlap-regions" in injector.injected[0]
        assert "leak-frame" in injector.injected[1]


class TestShadowEscapeMap:
    def test_transparent_proxy(self):
        primary = AllocationToEscapeMap()
        proxy = ShadowedEscapeMap(primary)
        table = AllocationTable()
        allocation = table.add(0x1000, 64)
        values = {0x5000: 0x1010}
        proxy.record(0x5000)
        assert proxy.pending_count == 1
        proxy.flush(table, lambda a: values.get(a, 0))
        assert proxy.escapes_of(allocation) == {0x5000}
        assert proxy.stats.recorded == 1
        assert proxy.divergences() == []

    def test_mutations_tracked_through_proxy(self):
        primary = AllocationToEscapeMap()
        proxy = ShadowedEscapeMap(primary)
        table = AllocationTable()
        allocation = table.add(0x1000, 64)
        proxy.record(0x5000)
        proxy.flush(table, lambda a: 0x1010)
        proxy.rekey(0x1000, 0x2000)
        proxy.rewrite_range(0x5000, 0x6000, 0x100)
        proxy.drop_allocation(0x2000)
        assert proxy.divergences() == []

    def test_out_of_band_corruption_diverges(self):
        primary = AllocationToEscapeMap()
        proxy = ShadowedEscapeMap(primary)
        table = AllocationTable()
        table.add(0x1000, 64)
        proxy.record(0x5000)
        proxy.flush(table, lambda a: 0x1010)
        primary._escapes[0x1000].discard(0x5000)  # bypass the proxy
        problems = proxy.divergences()
        assert problems and "lost" in problems[0]

    def test_install_is_idempotent(self, carat_run):
        runtime = carat_run.process.runtime
        proxy = runtime.escapes
        assert isinstance(proxy, ShadowedEscapeMap)
        assert install_escape_shadow(runtime) is proxy
        assert runtime.patcher.escapes is proxy


class TestSanitizeCli:
    def test_sanitize_subcommand(self, capsys):
        from repro.cli import main

        code = main(["sanitize", "mcf", "--mode", "carat"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mcf" in out
        assert "clean" in out

    def test_run_with_sanitize_flag(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "prog.c"
        source.write_text(SUM_SOURCE)
        code = main(["run", str(source), "--sanitize"])
        captured = capsys.readouterr()
        assert code == 0
        assert "2016" in captured.out
        assert "sanitizer" in captured.err
