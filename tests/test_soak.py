"""The soak-and-chaos harness: long-horizon service runs under fault
pressure.

What "correct" means here:

* **determinism** — one (config, seed) pair is one soak: the chaos arm
  sequence, the per-tenant results, and the whole-report fingerprint are
  bit-identical across re-runs and across all three engines;
* **steady state has teeth** — the monitor's rules (EFI bound, leak
  regression, drain budget, SLO, pause ledger) each fire on a synthetic
  series that violates them, and stay silent on a healthy soak;
* **watchdogs fail loudly** — a soak that cannot finish produces a
  structured verdict and a crash-dump bundle, never a hang;
* **telemetry is honest** — the bounded tracer reports what it dropped,
  and the report carries the counter through.
"""

import json
from types import SimpleNamespace

import pytest

from repro.machine.session import CaratSession, RunConfig
from repro.soak import (
    ChaosSchedule,
    EpochSample,
    SoakRunner,
    SteadyStateMonitor,
    windowed_slope,
)
from repro.telemetry.metrics import run_snapshot
from repro.telemetry.tracer import Tracer

ENGINES = ["reference", "fast", "trace"]


def make_sample(epoch, **overrides):
    base = dict(
        epoch=epoch,
        machine_cycles=epoch * 10_000,
        efi=0.1,
        allocated_frames=100,
        table_entries=50,
        escape_footprint=4096,
        escape_pending=0,
        completed_requests=epoch * 10,
        latencies=[100],
    )
    base.update(overrides)
    return EpochSample(**base)


def soak_config(engine="fast", **overrides):
    base = dict(
        engine=engine,
        soak_requests=600,
        soak_tenants=2,
        soak_horizon=40,
        soak_rounds_per_epoch=25,
        quantum=1000,
        chaos_rate=1.0,
        chaos_seed=77,
        soak_warmup=2,
    )
    base.update(overrides)
    return RunConfig(**base)


class TestWindowedSlope:
    def test_flat_series_has_zero_slope(self):
        assert windowed_slope([5.0] * 10, 8) == 0.0

    def test_linear_series_recovers_slope(self):
        series = [3.0 * i + 7 for i in range(20)]
        assert windowed_slope(series, 8) == pytest.approx(3.0)

    def test_window_ignores_old_history(self):
        # Huge early values, flat tail: the window only sees the tail.
        series = [1e9, 1e9] + [4.0] * 10
        assert windowed_slope(series, 5) == 0.0

    def test_short_series_is_zero(self):
        assert windowed_slope([], 4) == 0.0
        assert windowed_slope([1.0], 4) == 0.0


class TestSteadyStateMonitor:
    def test_healthy_series_stays_clean(self):
        monitor = SteadyStateMonitor(warmup=2, window=8)
        for epoch in range(1, 30):
            monitor.observe(make_sample(epoch, table_entries=50 + epoch % 3))
        monitor.finish(30)
        assert monitor.ok

    def test_efi_needs_consecutive_breaches(self):
        monitor = SteadyStateMonitor(warmup=1, max_efi=0.9, efi_patience=3)
        for epoch in range(2, 4):
            monitor.observe(make_sample(epoch, efi=0.95))
        assert monitor.ok  # two breaches < patience
        monitor.observe(make_sample(4, efi=0.95))
        names = [v.name for v in monitor.verdicts]
        assert names == ["efi-bound"]

    def test_efi_breach_counter_resets(self):
        monitor = SteadyStateMonitor(warmup=1, max_efi=0.9, efi_patience=2)
        monitor.observe(make_sample(2, efi=0.95))
        monitor.observe(make_sample(3, efi=0.5))  # recovery resets
        monitor.observe(make_sample(4, efi=0.95))
        assert monitor.ok

    def test_monotonic_table_growth_is_a_leak(self):
        monitor = SteadyStateMonitor(warmup=2, window=8)
        for epoch in range(1, 25):
            monitor.observe(make_sample(epoch, table_entries=50 + 10 * epoch))
        assert any(v.name == "leak-table-entries" for v in monitor.verdicts)

    def test_oscillating_plateau_is_not_a_leak(self):
        monitor = SteadyStateMonitor(warmup=2, window=8)
        for epoch in range(1, 25):
            monitor.observe(
                make_sample(epoch, table_entries=500 + (7 if epoch % 2 else -7))
            )
        assert monitor.ok

    def test_quarantine_overstay_flags_drain_verdict(self):
        monitor = SteadyStateMonitor(warmup=0, drain_budget=4)
        monitor.observe(make_sample(1, oldest_quarantine_age=5))
        assert [v.name for v in monitor.verdicts] == ["degradation-drain"]

    def test_slo_gate_uses_whole_run_percentile(self):
        monitor = SteadyStateMonitor(warmup=0, slo_p99=200)
        for epoch in range(1, 4):
            monitor.observe(make_sample(epoch, latencies=[100, 150, 500]))
        monitor.finish(4)
        assert [v.name for v in monitor.verdicts] == ["slo-p99"]

    def test_flag_suppresses_repeats(self):
        monitor = SteadyStateMonitor()
        assert monitor.flag("watchdog", 1, "stuck", 1, 0) is not None
        assert monitor.flag("watchdog", 2, "stuck again", 1, 0) is None
        assert len(monitor.verdicts) == 1


class TestChaosSchedule:
    def run_epochs(self, seed, epochs=20, rate=2.5):
        schedule = ChaosSchedule(rate, seed)
        for _ in range(epochs):
            schedule.arm_epoch()
            schedule.sweep_epoch()
        return schedule

    def test_same_seed_same_fault_sequence(self):
        a = self.run_epochs(seed=7)
        b = self.run_epochs(seed=7)
        assert a.armed == b.armed
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_sequence(self):
        assert self.run_epochs(seed=7).armed != self.run_epochs(seed=8).armed

    def test_sweep_clears_unfired_points(self):
        schedule = ChaosSchedule(3.0, seed=5)
        schedule.arm_epoch()
        assert schedule.injector.points
        swept = schedule.sweep_epoch()
        assert swept == len(schedule.armed)
        assert not schedule.injector.points
        assert schedule.swept == swept

    def test_rate_zero_arms_nothing(self):
        schedule = ChaosSchedule(0.0, seed=5)
        for _ in range(10):
            schedule.arm_epoch()
        assert schedule.armed == []

    def test_fractional_rate_averages_out(self):
        schedule = ChaosSchedule(0.5, seed=11)
        for _ in range(200):
            schedule.arm_epoch()
            schedule.sweep_epoch()
        assert 60 <= len(schedule.armed) <= 140

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChaosSchedule(-1.0, seed=1)


class TestRunConfigSoakFlags:
    def test_round_trip_preserves_every_soak_field(self):
        config = RunConfig(
            soak_requests=123_456,
            soak_horizon=77,
            soak_tenants=5,
            soak_rounds_per_epoch=9,
            soak_warmup=3,
            chaos_rate=2.25,
            chaos_seed=424242,
            slo_p99=5000,
            sanitize_every=4,
            drain_budget=6,
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_from_args_maps_the_soak_flag_names(self):
        args = SimpleNamespace(
            requests=5000,
            horizon=33,
            tenants=4,
            rounds_per_epoch=12,
            warmup=2,
            seed=99,
            chaos_rate=1.5,
            slo_p99=3000,
            sanitize_every=2,
            drain_budget=8,
            engine="fast",
        )
        config = RunConfig.from_args(args)
        assert config.soak_requests == 5000
        assert config.soak_horizon == 33
        assert config.soak_tenants == 4
        assert config.soak_rounds_per_epoch == 12
        assert config.soak_warmup == 2
        assert config.chaos_seed == 99
        assert config.chaos_rate == 1.5
        assert config.slo_p99 == 3000
        assert config.sanitize_every == 2
        assert config.drain_budget == 8

    @pytest.mark.parametrize(
        "field,value",
        [
            ("soak_requests", 0),
            ("soak_horizon", -1),
            ("soak_tenants", 0),
            ("soak_rounds_per_epoch", 0),
            ("drain_budget", 0),
            ("soak_warmup", -1),
            ("slo_p99", -5),
            ("sanitize_every", -1),
            ("chaos_rate", -0.5),
        ],
    )
    def test_bad_soak_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            RunConfig(**{field: value})


class TestTracerDropCounter:
    def test_bounded_tracer_counts_drops(self):
        tracer = Tracer(max_events=4)
        for i in range(10):
            tracer.instant(f"e{i}", "test")
        assert len(tracer.events) == 4
        assert tracer.dropped_events == 6
        assert tracer.summary()["dropped"] == 6

    def test_run_snapshot_exposes_drop_counter(self):
        config = RunConfig(engine="fast", trace=True)
        result = CaratSession(config).run(
            "int main() { print_long(7); return 0; }"
        )
        snapshot = run_snapshot(result)
        tracer_section = snapshot["tracer"]
        assert tracer_section["dropped_events"] == result.tracer.dropped_events
        assert tracer_section["max_events"] == result.tracer.max_events
        assert tracer_section["events"] == len(result.tracer.events)


class TestSoakRunner:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_chaos_soak_completes_cleanly(self, engine, tmp_path):
        runner = SoakRunner(
            soak_config(engine),
            crash_dump_path=str(tmp_path / "crash.json"),
        )
        report = runner.run()
        assert report.ok, [v["detail"] for v in report.verdicts]
        assert report.requests_completed == report.requests_target == 600
        assert report.faults["injected"] > 0
        assert report.faults["quarantines_stuck"] == 0
        assert report.crash_dump is None
        assert report.sanitizer_checks >= 1
        # The bounded tracer never dropped anything at this scale, and
        # the report says so explicitly.
        assert report.dropped_events == 0
        assert report.dropped_events == runner.scheduler.tracer.dropped_events

    def test_same_seed_bit_identical_fingerprint(self, tmp_path):
        def fingerprint(seed):
            runner = SoakRunner(
                soak_config(chaos_seed=seed),
                crash_dump_path=str(tmp_path / "crash.json"),
            )
            return runner.run().fingerprint()

        assert fingerprint(77) == fingerprint(77)
        assert fingerprint(77) != fingerprint(31)

    def test_engines_agree_on_fingerprint(self, tmp_path):
        prints = set()
        for engine in ENGINES:
            runner = SoakRunner(
                soak_config(engine),
                crash_dump_path=str(tmp_path / "crash.json"),
            )
            prints.add(runner.run().fingerprint())
        assert len(prints) == 1

    def test_report_document_schema(self, tmp_path):
        runner = SoakRunner(
            soak_config(), crash_dump_path=str(tmp_path / "crash.json")
        )
        document = runner.run().to_dict()
        assert document["schema"] == "carat.soak.v1"
        for key in (
            "engine",
            "requests",
            "latency",
            "efi",
            "faults",
            "verdicts",
            "tenants",
            "fingerprint",
            "dropped_events",
            "epoch_samples",
        ):
            assert key in document
        assert document["requests"]["completed"] == 600
        assert document["latency"]["p99"] >= document["latency"]["p50"] > 0
        assert len(document["epoch_samples"]) == document["epochs"]
        json.dumps(document)  # must be serializable as-is

    def test_horizon_exhaustion_trips_watchdog(self, tmp_path):
        dump = tmp_path / "crash.json"
        runner = SoakRunner(
            soak_config(
                soak_requests=50_000, soak_horizon=2, chaos_rate=0.0
            ),
            crash_dump_path=str(dump),
        )
        report = runner.run()
        assert not report.ok
        assert any(v["name"] == "watchdog" for v in report.verdicts)
        assert report.crash_dump == str(dump)
        bundle = json.loads(dump.read_text())
        assert bundle["schema"] == "carat.soak-crash.v1"
        assert "horizon exhausted" in bundle["reason"]
        assert bundle["trace_tail"], "crash dump must carry trace events"
        assert "metrics" in bundle and "sanitizer" in bundle

    def test_slo_gate_fails_the_soak(self, tmp_path):
        runner = SoakRunner(
            soak_config(chaos_rate=0.0, slo_p99=1),
            crash_dump_path=str(tmp_path / "crash.json"),
        )
        report = runner.run()
        assert not report.ok
        assert any(v["name"] == "slo-p99" for v in report.verdicts)

    def test_kvburst_workload_runs(self, tmp_path):
        runner = SoakRunner(
            soak_config(soak_requests=400),
            workload="kvburst",
            crash_dump_path=str(tmp_path / "crash.json"),
        )
        report = runner.run()
        assert report.ok
        assert report.workload == "kvburst"


class TestSoakCli:
    def run_cli(self, tmp_path, *extra):
        from repro.cli import main

        return main(
            [
                "soak",
                "--requests", "400",
                "--tenants", "2",
                "--horizon", "40",
                "--chaos-rate", "1",
                "--crash-dump", str(tmp_path / "crash.json"),
                "--engine", "fast",
                *extra,
            ]
        )

    def test_soak_subcommand_exits_zero_when_clean(self, tmp_path, capsys):
        out_json = tmp_path / "soak.json"
        code = self.run_cli(tmp_path, "--json", str(out_json))
        captured = capsys.readouterr().out
        assert code == 0
        assert "steady state held" in captured
        document = json.loads(out_json.read_text())
        assert document["schema"] == "carat.soak.v1"
        assert document["ok"] is True

    def test_soak_subcommand_exits_nonzero_on_verdict(self, tmp_path, capsys):
        code = self.run_cli(tmp_path, "--slo-p99", "1")
        assert code == 1
        assert "slo-p99" in capsys.readouterr().out
