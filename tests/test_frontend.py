"""Mini-C frontend: lexer, parser, semantic analysis, and lowering
semantics (checked by executing the compiled programs)."""

import pytest

from repro.errors import ParseError, RestrictionError, SemanticError
from repro.frontend import analyze, compile_source, parse
from repro.frontend.lexer import decode_char_literal, decode_string_literal, tokenize
from repro.ir import verify_module
from tests.support import run_carat_baseline


def run_src(source: str):
    """Compile + run without instrumentation; returns the output lines."""
    return run_carat_baseline(source, name="t").output


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("long x = 42;")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "ident", "punct", "int", "punct", "eof"]

    def test_comments_skipped(self):
        toks = tokenize("// hi\nlong /* there */ x;")
        assert [t.text for t in toks[:-1]] == ["long", "x", ";"]

    def test_float_and_hex(self):
        toks = tokenize("1.5 0x10 2e3")
        assert toks[0].kind == "float"
        assert toks[1].kind == "int"
        assert toks[2].kind == "float"

    def test_multichar_operators(self):
        toks = tokenize("a <= b >> c && d -> e")
        texts = [t.text for t in toks[:-1]]
        assert "<=" in texts and ">>" in texts and "&&" in texts and "->" in texts

    def test_char_literals(self):
        assert decode_char_literal("'a'") == 97
        assert decode_char_literal("'\\n'") == 10
        assert decode_char_literal("'\\0'") == 0

    def test_string_literals(self):
        assert decode_string_literal('"hi"') == b"hi\x00"
        assert decode_string_literal('"a\\tb"') == b"a\tb\x00"

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].col == 3

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("long `x;")


class TestParser:
    def test_function_and_globals(self):
        prog = parse("long g; long f(long x) { return x; }")
        assert len(prog.items) == 2

    def test_struct_def(self):
        prog = parse("struct P { long x; long y; }; struct P g;")
        assert prog.items[0].fields[0][1] == "x"

    def test_precedence(self):
        prog = parse("long f() { return 1 + 2 * 3; }")
        ret = prog.items[0].body.statements[0]
        assert ret.value.op == "+"
        assert ret.value.rhs.op == "*"

    def test_unary_and_cast(self):
        parse("long f(long *p) { return -*p + (long)1.5; }")

    def test_control_flow(self):
        parse(
            """
            void f(long n) {
              long i;
              for (i = 0; i < n; i++) { if (i % 2) continue; else break; }
              while (n > 0) { n = n - 1; }
              do { n = n + 1; } while (n < 5);
            }
            """
        )

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("long f() { return 1 }")

    def test_ternary(self):
        parse("long f(long x) { return x > 0 ? x : -x; }")


class TestSema:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze(parse("long f() { return ghost; }"))

    def test_type_mismatch_assignment(self):
        with pytest.raises(SemanticError):
            analyze(parse("void f(long *p) { double d; p = d; }"))

    def test_call_arity(self):
        with pytest.raises(SemanticError, match="argument"):
            analyze(parse("long g(long x) { return x; } long f() { return g(); }"))

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            analyze(parse("void f() { break; }"))

    def test_member_of_non_struct(self):
        with pytest.raises(SemanticError):
            analyze(parse("void f(long x) { long y = x.field; }"))

    def test_arrow_requires_struct_pointer(self):
        with pytest.raises(SemanticError):
            analyze(parse("void f(long *p) { long y = p->field; }"))

    def test_address_of_rvalue(self):
        with pytest.raises(SemanticError, match="address"):
            analyze(parse("void f(long x) { long *p = &(x + 1); }"))

    def test_duplicate_definition(self):
        with pytest.raises(SemanticError, match="redefinition"):
            analyze(parse("void f() { long x; long x; }"))

    def test_void_variable_rejected(self):
        # Rejected at parse time (a bare `void` cannot start a statement).
        with pytest.raises((SemanticError, ParseError)):
            analyze(parse("void f() { void x; }"))

    def test_pointer_cast_to_int_must_be_long(self):
        with pytest.raises(SemanticError):
            analyze(parse("void f(long *p) { int x = (int)p; }"))


class TestRestrictions:
    """CARAT Section 2.2: violations must *fail compilation*."""

    def test_inline_asm_rejected(self):
        with pytest.raises(RestrictionError, match="assembly"):
            analyze(parse('void f() { asm("nop"); }'))

    def test_function_used_as_value(self):
        with pytest.raises(RestrictionError, match="function"):
            analyze(parse("long g() { return 1; } void f() { long x = (long)g; }"))

    def test_division_by_constant_zero(self):
        with pytest.raises(RestrictionError, match="zero"):
            analyze(parse("long f(long x) { return x / 0; }"))

    def test_modulo_by_constant_zero(self):
        with pytest.raises(RestrictionError):
            analyze(parse("long f(long x) { return x % 0; }"))

    def test_call_through_variable(self):
        with pytest.raises((RestrictionError, SemanticError)):
            analyze(parse("void f(long g) { g(); }"))


class TestLoweringSemantics:
    """Lowered programs must compute C semantics."""

    def test_arithmetic(self):
        out = run_src("void main() { print_long(7 + 3 * 4 - 10 / 2); }")
        assert out == ["14"]

    def test_signed_division(self):
        out = run_src("void main() { print_long(-7 / 2); print_long(-7 % 2); }")
        assert out == ["-3", "-1"]

    def test_comparisons_and_logic(self):
        out = run_src(
            "void main() { print_long(1 < 2 && 3 > 4 || 5 == 5); }"
        )
        assert out == ["1"]

    def test_short_circuit(self):
        # Division by n guarded by n != 0; short-circuit must protect it.
        out = run_src(
            """
            long n;
            void main() {
              n = 0;
              if (n != 0 && 10 / n > 1) { print_long(1); }
              else { print_long(0); }
            }
            """
        )
        assert out == ["0"]

    def test_while_and_for(self):
        out = run_src(
            """
            void main() {
              long s = 0; long i;
              for (i = 1; i <= 10; i++) { s += i; }
              long t = 0;
              while (t < 5) { t++; }
              print_long(s + t);
            }
            """
        )
        assert out == ["60"]

    def test_do_while_runs_once(self):
        out = run_src(
            "void main() { long i = 100; do { i++; } while (i < 0); print_long(i); }"
        )
        assert out == ["101"]

    def test_break_continue(self):
        out = run_src(
            """
            void main() {
              long s = 0; long i;
              for (i = 0; i < 10; i++) {
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
              }
              print_long(s);
            }
            """
        )
        assert out == [str(0 + 1 + 2 + 4 + 5)]

    def test_recursion(self):
        out = run_src(
            """
            long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            void main() { print_long(fib(12)); }
            """
        )
        assert out == ["144"]

    def test_pointers_and_arrays(self):
        out = run_src(
            """
            void main() {
              long *a = (long*)malloc(8 * 4);
              a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
              long *p = a + 1;
              print_long(*p + p[1]);
              print_long(&a[3] - a);
              free((char*)a);
            }
            """
        )
        assert out == ["50", "3"]

    def test_structs(self):
        out = run_src(
            """
            struct Pair { long a; long b; };
            void main() {
              struct Pair p;
              p.a = 3; p.b = 4;
              struct Pair *q = &p;
              q->a = q->a * 10;
              print_long(p.a + p.b);
            }
            """
        )
        assert out == ["34"]

    def test_global_initializers(self):
        out = run_src(
            """
            long g = 42;
            double d = 1.5;
            long zeroed;
            void main() { print_long(g + (long)(d * 2.0) + zeroed); }
            """
        )
        assert out == ["45"]

    def test_global_arrays_zeroed(self):
        out = run_src(
            """
            long table[8];
            void main() {
              long s = 0; long i;
              for (i = 0; i < 8; i++) { s += table[i]; }
              table[3] = 7;
              print_long(s + table[3]);
            }
            """
        )
        assert out == ["7"]

    def test_char_arithmetic(self):
        out = run_src(
            """
            void main() {
              char *s = (char*)malloc(4);
              s[0] = 'a'; s[1] = s[0] + 1; s[2] = 0;
              print_long((long)s[1]);
              free(s);
            }
            """
        )
        assert out == ["98"]

    def test_double_math(self):
        out = run_src(
            "void main() { print_long((long)(sqrt(144.0) + exp(0.0))); }"
        )
        assert out == ["13"]

    def test_ternary(self):
        out = run_src("void main() { long x = -5; print_long(x < 0 ? -x : x); }")
        assert out == ["5"]

    def test_string_literal(self):
        out = run_src('void main() { print_str("hello"); }')
        assert out == ["hello"]

    def test_sizeof(self):
        out = run_src(
            """
            struct S { long a; char b; };
            void main() {
              print_long(sizeof(long) + sizeof(char) + sizeof(struct S));
            }
            """
        )
        assert out == [str(8 + 1 + 16)]

    def test_nested_struct_pointers(self):
        out = run_src(
            """
            struct Inner { long v; };
            struct Outer { struct Inner *inner; long pad; };
            void main() {
              struct Inner i;
              i.v = 99;
              struct Outer o;
              o.inner = &i;
              print_long(o.inner->v);
            }
            """
        )
        assert out == ["99"]

    def test_compound_assignment(self):
        out = run_src(
            """
            void main() {
              long x = 10;
              x += 5; x -= 2; x *= 3; x /= 2;
              print_long(x);
            }
            """
        )
        assert out == ["19"]

    def test_shifts_and_bitwise(self):
        out = run_src(
            "void main() { print_long(((1 << 4) | 3) & 0x1F ^ 2); }"
        )
        assert out == [str((((1 << 4) | 3) & 0x1F) ^ 2)]

    def test_verified_ir(self):
        from tests.conftest import SUM_SOURCE

        module = compile_source(SUM_SOURCE)
        verify_module(module)
