"""Smaller contracts not covered elsewhere: the MMU notifier hub, builder
positioning, module containers, and error surfaces."""

import pytest

from repro.errors import IRError
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Module,
)
from repro.ir.types import I64, VOID, ptr
from repro.kernel.mmu_notifier import EventKind, MMUNotifier, NotifierEvent


class TestMMUNotifier:
    def test_counts_and_events(self):
        hub = MMUNotifier(keep_events=True)
        hub.page_alloc(1, 0x10)
        hub.page_alloc(1, 0x11)
        hub.pte_change(1, 0x10)
        hub.invalidate_range(1, 0x10, 0x20)
        hub.page_swap(1, 0x11)
        assert hub.page_allocs == 2
        assert hub.page_moves == 1
        assert hub.counts[EventKind.INVALIDATE_RANGE] == 1
        assert hub.counts[EventKind.PAGE_SWAP] == 1
        assert len(hub.events) == 5

    def test_events_not_kept_by_default(self):
        hub = MMUNotifier()
        hub.page_alloc(1, 0x10)
        assert hub.events == []
        assert hub.page_allocs == 1

    def test_subscribers_called(self):
        hub = MMUNotifier()
        seen = []
        hub.subscribe(seen.append)
        hub.pte_change(7, 0x42, detail="test")
        assert len(seen) == 1
        assert seen[0].pid == 7
        assert seen[0].detail == "test"

    def test_rates(self):
        hub = MMUNotifier()
        for _ in range(10):
            hub.page_alloc(1, 0)
        hub.pte_change(1, 0)
        rates = hub.rates(2.0)
        assert rates["alloc_rate"] == 5.0
        assert rates["move_rate"] == 0.5
        assert hub.rates(0)["alloc_rate"] == 0.0


class TestBuilderPositioning:
    def test_position_before_inserts_before(self, module):
        fn = Function("f", FunctionType(I64, [I64]), module, ["x"])
        block = fn.add_block("entry")
        b = IRBuilder(block)
        first = b.add(fn.args[0], b.i64(1))
        ret = b.ret(first)
        b.position_before(ret)
        second = b.mul(fn.args[0], b.i64(2))
        assert block.instructions.index(second) < block.instructions.index(ret)

    def test_position_at_start_respects_order(self, module):
        fn = Function("g", FunctionType(VOID, [I64]), module, ["x"])
        block = fn.add_block("entry")
        b = IRBuilder(block)
        b.ret()
        b.position_at_start(block)
        added = b.add(fn.args[0], b.i64(1))
        assert block.instructions[0] is added

    def test_builder_without_block_errors(self):
        with pytest.raises(IRError):
            IRBuilder().block

    def test_unique_names(self, module):
        fn = Function("h", FunctionType(VOID, [I64]), module, ["x"])
        b = IRBuilder(fn.add_block("entry"))
        names = {b.add(fn.args[0], b.i64(i)).name for i in range(10)}
        assert len(names) == 10


class TestModuleContainers:
    def test_duplicate_global_rejected(self, module):
        module.add_global(GlobalVariable("g", I64, ConstantInt(I64, 1)))
        with pytest.raises(IRError):
            module.add_global(GlobalVariable("g", I64, ConstantInt(I64, 2)))

    def test_global_function_name_collision(self, module):
        Function("name", FunctionType(VOID, []), module)
        with pytest.raises(IRError):
            module.add_global(GlobalVariable("name", I64))

    def test_get_or_declare_type_conflict(self, module):
        module.get_or_declare("f", FunctionType(I64, [I64]))
        with pytest.raises(Exception):
            module.get_or_declare("f", FunctionType(VOID, [I64]))

    def test_defined_vs_declared(self, module):
        declared = Function("d", FunctionType(VOID, []), module)
        defined = Function("e", FunctionType(VOID, []), module)
        b = IRBuilder(defined.add_block("entry"))
        b.ret()
        assert declared.is_declaration
        assert not defined.is_declaration
        assert module.defined_functions() == [defined]

    def test_missing_lookups(self, module):
        with pytest.raises(IRError):
            module.get_function("ghost")
        with pytest.raises(IRError):
            module.get_global("ghost")


class TestRunSummaryHarness:
    def test_summary_captures_the_needed_slice(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
        from harness import RunSummary

        from tests.support import run_carat
        from tests.conftest import SUM_SOURCE

        result = run_carat(SUM_SOURCE, name="sum")
        summary = RunSummary(result)
        assert summary.cycles == result.cycles
        assert summary.output == result.output
        assert summary.guards_executed > 0
        assert summary.peak_tracking_bytes > 0
        assert summary.heap_peak_bytes > 0
        # Summaries must not retain the kernel (that is their point).
        assert not hasattr(summary, "process")
        assert not hasattr(summary, "kernel")
