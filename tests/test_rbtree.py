"""Red-black tree: unit tests plus hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        t = RedBlackTree()
        assert len(t) == 0
        assert not t
        assert t.get(1) is None
        assert t.min_item() is None
        assert t.max_item() is None
        assert not t.delete(5)

    def test_insert_and_get(self):
        t = RedBlackTree()
        t.insert(5, "five")
        t.insert(3, "three")
        t.insert(8, "eight")
        assert t.get(5) == "five"
        assert t.get(3) == "three"
        assert 8 in t
        assert 9 not in t
        assert len(t) == 3

    def test_replace_value(self):
        t = RedBlackTree()
        t.insert(1, "a")
        t.insert(1, "b")
        assert len(t) == 1
        assert t.get(1) == "b"

    def test_ordered_iteration(self):
        t = RedBlackTree()
        for k in (5, 1, 9, 3, 7):
            t.insert(k, k * 10)
        assert list(t.keys()) == [1, 3, 5, 7, 9]
        assert list(t.items())[0] == (1, 10)

    def test_min_max(self):
        t = RedBlackTree()
        for k in (5, 1, 9):
            t.insert(k, None)
        assert t.min_item() == (1, None)
        assert t.max_item() == (9, None)

    def test_floor_ceiling(self):
        t = RedBlackTree()
        for k in (10, 20, 30):
            t.insert(k, k)
        assert t.floor_item(25) == (20, 20)
        assert t.floor_item(20) == (20, 20)
        assert t.floor_item(5) is None
        assert t.ceiling_item(25) == (30, 30)
        assert t.ceiling_item(30) == (30, 30)
        assert t.ceiling_item(35) is None

    def test_range_iteration(self):
        t = RedBlackTree()
        for k in range(0, 100, 10):
            t.insert(k, k)
        assert [k for k, _ in t.items_in_range(25, 65)] == [30, 40, 50, 60]
        assert [k for k, _ in t.items_in_range(0, 10)] == [0]
        assert list(t.items_in_range(200, 300)) == []

    def test_delete(self):
        t = RedBlackTree()
        for k in range(20):
            t.insert(k, k)
        assert t.delete(10)
        assert 10 not in t
        assert len(t) == 19
        assert not t.delete(10)
        t.check_invariants()

    def test_pop(self):
        t = RedBlackTree()
        t.insert(1, "x")
        assert t.pop(1) == "x"
        assert t.pop(1, "default") == "default"

    def test_sequential_insert_stays_balanced(self):
        t = RedBlackTree()
        for k in range(1000):
            t.insert(k, k)
        t.check_invariants()
        assert list(t.keys()) == list(range(1000))

    def test_reverse_insert_stays_balanced(self):
        t = RedBlackTree()
        for k in reversed(range(1000)):
            t.insert(k, k)
        t.check_invariants()


class TestProperties:
    @given(st.lists(st.integers(min_value=-(10**9), max_value=10**9)))
    @settings(max_examples=60)
    def test_matches_dict_semantics(self, keys):
        t = RedBlackTree()
        reference = {}
        for k in keys:
            t.insert(k, k * 2)
            reference[k] = k * 2
        assert len(t) == len(reference)
        assert list(t.keys()) == sorted(reference)
        for k in keys:
            assert t.get(k) == reference[k]
        t.check_invariants()

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=1),
        st.lists(st.integers(min_value=0, max_value=200)),
    )
    @settings(max_examples=60)
    def test_insert_delete_interleaved(self, inserts, deletes):
        t = RedBlackTree()
        reference = set()
        for k in inserts:
            t.insert(k, None)
            reference.add(k)
        for k in deletes:
            assert t.delete(k) == (k in reference)
            reference.discard(k)
            t.check_invariants()
        assert list(t.keys()) == sorted(reference)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_floor_ceiling_consistency(self, keys, probe):
        t = RedBlackTree()
        for k in keys:
            t.insert(k, None)
        unique = sorted(set(keys))
        floor = t.floor_item(probe)
        expected_floor = max((k for k in unique if k <= probe), default=None)
        assert (floor[0] if floor else None) == expected_floor
        ceiling = t.ceiling_item(probe)
        expected_ceiling = min((k for k in unique if k >= probe), default=None)
        assert (ceiling[0] if ceiling else None) == expected_ceiling

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=60)
    def test_range_query_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        t = RedBlackTree()
        for k in keys:
            t.insert(k, None)
        got = [k for k, _ in t.items_in_range(lo, hi)]
        expected = sorted(k for k in set(keys) if lo <= k < hi)
        assert got == expected
