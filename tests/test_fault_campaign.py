"""The fault campaign: every Figure 8 step, multiple fault classes.

Each test runs the escape-heavy linked-list program end to end with a
mid-run move request and a step-targeted fault injected into the
kernel↔runtime upcall path.  The acceptance bar, per fault:

* a one-shot fault is rolled back and the retry commits — program
  output is bit-identical to the fault-free run and the sanitizer's
  recovery-oracle checkpoints stay clean (``sanitize=True`` raises on
  any violation);
* a persistent fault exhausts its retries into a structured
  :class:`~repro.resilience.degrade.MoveFailure` — the range is
  quarantined, the program still finishes with identical output, and
  state is never corrupted.

The property test at the bottom drives all three engines (reference,
fast, trace) through *identical* random fault schedules and asserts the
runs are observably the same, memory image included.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carat import compile_carat
from repro.errors import MoveError
from repro.kernel import Kernel, PAGE_SIZE
from tests.support import run_carat
from repro.resilience import (
    ALLOCATION_MOVE_STEPS,
    DegradationManager,
    PAGE_MOVE_STEPS,
    PROTECTION_STEPS,
    RetryPolicy,
    TORN_CAPABLE_STEPS,
)
from repro.sanitizer.faults import (
    FaultPoint,
    ProtocolFaultInjector,
    random_fault_schedule,
)
from tests.conftest import LINKED_LIST_SOURCE

EXPECTED_OUTPUT = [str(sum(range(40)))]

#: The page-move campaign matrix: every step sees a crash and a hang
#: (which the watchdog converts into a retryable timeout); the steps
#: with mid-step progress also see a torn fault.
PAGE_MOVE_MATRIX = [
    (step, kind) for step in PAGE_MOVE_STEPS for kind in ("crash", "hang")
] + [(step, "torn") for step in sorted(TORN_CAPABLE_STEPS)]


@pytest.fixture(scope="module")
def binary():
    return compile_carat(LINKED_LIST_SOURCE, module_name="list")


def _campaign_run(
    binary,
    points,
    engine="reference",
    operation="page-move",
    max_attempts=None,
    degradation=None,
):
    """One end-to-end run: a tick hook requests one move mid-program;
    ``points`` go to a fresh injector.  Returns (result, kernel,
    injector, errors-caught-by-the-hook)."""
    kernel = Kernel()
    if max_attempts is not None:
        kernel.retry_policy = RetryPolicy(max_attempts=max_attempts)
    injector = ProtocolFaultInjector([replace(p) for p in points])
    kernel.attach_fault_injector(injector)
    if degradation is not None:
        kernel.attach_degradation(degradation)
    caught = []
    done = []

    def setup(interpreter):
        interpreter.set_tick_interval(200)
        previous = interpreter.tick_hook

        def hook(interp):
            if previous is not None:
                previous(interp)
            if done or interp.stats.instructions < 600:
                return
            done.append(True)
            process = interp.process
            victim = process.runtime.worst_case_allocation()
            snaps = interp.register_snapshots()
            try:
                if operation == "page-move":
                    kernel.request_page_move(
                        process,
                        victim.address & ~(PAGE_SIZE - 1),
                        register_snapshots=snaps,
                    )
                elif operation == "allocation-move":
                    kernel.request_allocation_move(
                        process, victim, register_snapshots=snaps
                    )
                else:  # protection change: flip the stack RW -> RWX (no-op
                    # permission-wise is not allowed, so re-grant RWX over RW)
                    from repro.runtime.regions import PERM_RW, PERM_RWX

                    base = process.layout.stack_base
                    kernel.request_protection_change(
                        process, base, PAGE_SIZE, PERM_RW
                    )
                    kernel.request_protection_change(
                        process, base, PAGE_SIZE, PERM_RWX
                    )
                interp.apply_snapshots(snaps)
            except MoveError as exc:
                caught.append(exc)

        interpreter.tick_hook = hook

    result = run_carat(binary, kernel=kernel, setup=setup, sanitize=True,
                       engine=engine)
    assert done, "the campaign hook never fired"
    return result, kernel, injector, caught


# ---------------------------------------------------------------------------
# One-shot faults: rollback, retry, commit — output identical.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("step,kind", PAGE_MOVE_MATRIX)
def test_one_shot_page_move_fault_recovers(binary, engine, step, kind):
    result, kernel, injector, caught = _campaign_run(
        binary, [FaultPoint(step, kind)], engine=engine
    )
    assert injector.fired == [f"{step}:{kind}@move0"]
    assert caught == []  # the retry committed; the caller never saw it
    assert result.exit_code == 0
    assert result.output == EXPECTED_OUTPUT
    assert kernel.stats.moves_attempted == 2
    assert kernel.stats.moves_committed == 1
    assert kernel.stats.moves_rolled_back == 1
    assert kernel.stats.move_retries == 1
    assert kernel.stats.backoff_cycles > 0


@pytest.mark.parametrize(
    "step,kind",
    [(step, kind) for step in ALLOCATION_MOVE_STEPS for kind in ("crash", "hang")],
)
def test_one_shot_allocation_move_fault_recovers(binary, step, kind):
    result, kernel, injector, caught = _campaign_run(
        binary, [FaultPoint(step, kind)], operation="allocation-move"
    )
    assert injector.fired == [f"{step}:{kind}@move0"]
    assert caught == []
    assert result.output == EXPECTED_OUTPUT
    assert kernel.stats.moves_committed == 1
    assert kernel.stats.moves_rolled_back == 1


@pytest.mark.parametrize(
    "step,kind",
    [(step, kind) for step in PROTECTION_STEPS for kind in ("crash", "hang")],
)
def test_one_shot_protection_change_fault_recovers(binary, step, kind):
    result, kernel, injector, caught = _campaign_run(
        binary, [FaultPoint(step, kind)], operation="protection-change"
    )
    assert injector.fired[0] == f"{step}:{kind}@move0"
    assert caught == []
    assert result.output == EXPECTED_OUTPUT
    assert kernel.stats.moves_rolled_back == 1
    assert kernel.stats.carat_protection_changes == 2  # both changes landed


# ---------------------------------------------------------------------------
# Persistent faults: exhaustion, structured failure, graceful degradation.
# ---------------------------------------------------------------------------

PERSISTENT_STEPS = [
    "reserve-destination",
    "patch-escapes",
    "copy-data",
    "region-install",
    "release-frames",
]


@pytest.mark.parametrize("step", PERSISTENT_STEPS)
def test_persistent_fault_degrades_without_corruption(binary, step):
    manager = DegradationManager()
    result, kernel, injector, caught = _campaign_run(
        binary,
        [FaultPoint(step, "crash", persistent=True)],
        max_attempts=3,
        degradation=manager,
    )
    # The program is untouched by the failed move: same output, and the
    # sanitizer's move-rollback checkpoints (sanitize=True) stayed clean.
    assert result.exit_code == 0
    assert result.output == EXPECTED_OUTPUT
    assert len(caught) == 1
    error = caught[0]
    assert error.step == step
    assert error.attempts == 3
    assert error.failure is manager.failures[0]
    assert manager.is_quarantined(error.lo, error.hi)
    assert kernel.stats.moves_attempted == 3
    assert kernel.stats.moves_committed == 0
    assert kernel.stats.moves_rolled_back == 3
    assert kernel.stats.moves_degraded == 1
    assert len(injector.fired) == 3


def test_persistent_hang_exhausts_through_watchdog(binary):
    manager = DegradationManager()
    result, kernel, injector, caught = _campaign_run(
        binary,
        [FaultPoint("copy-data", "hang", persistent=True)],
        max_attempts=2,
        degradation=manager,
    )
    assert result.output == EXPECTED_OUTPUT
    assert len(caught) == 1
    assert "watchdog" in caught[0].failure.error
    assert kernel.stats.moves_degraded == 1


def test_quarantined_range_refused_at_admission(binary):
    manager = DegradationManager()
    result, kernel, _, caught = _campaign_run(
        binary,
        [FaultPoint("copy-data", "crash", persistent=True)],
        max_attempts=2,
        degradation=manager,
    )
    assert result.output == EXPECTED_OUTPUT
    (error,) = caught
    attempted = kernel.stats.moves_attempted
    with pytest.raises(MoveError) as refused:
        kernel.request_page_move(result.process, error.lo)
    assert refused.value.step == "admission"
    assert kernel.stats.moves_attempted == attempted  # refused pre-attempt


# ---------------------------------------------------------------------------
# Chunk-boundary faults: the incremental (queued, batched, chunked) path.
# ---------------------------------------------------------------------------

#: Steps that fire while a *queued* move is serviced: negotiate/reserve
#: at batch start, escape-flush/patch-escapes/copy-data inside pre-copy
#: chunks (so a crash here lands at a chunk boundary, with the world
#: running), and the flip/install steps under the batched stop.
QUEUE_FAULT_STEPS = [
    "negotiate",
    "quiesce-agents",
    "reserve-destination",
    "escape-flush",
    "patch-escapes",
    "copy-data",
    "patch-registers",
    "rebase-tracking",
    "region-install",
    "kernel-metadata",
    "release-frames",
]


def _queued_run(
    binary,
    points,
    engine="reference",
    chunk_budget=200,
    max_attempts=None,
    degradation=None,
):
    """Like :func:`_campaign_run`, but the mid-program move goes through
    the asynchronous queue (claimed destination, chunked pre-copy) and
    is serviced by the clock instead of a synchronous request."""
    from repro.resilience import MoveQueue, MoveRequest

    kernel = Kernel()
    if max_attempts is not None:
        kernel.retry_policy = RetryPolicy(max_attempts=max_attempts)
    injector = ProtocolFaultInjector([replace(p) for p in points])
    kernel.attach_fault_injector(injector)
    if degradation is not None:
        kernel.attach_degradation(degradation)
    queue = MoveQueue(kernel, batch_size=2, chunk_budget=chunk_budget)
    kernel.attach_move_queue(queue)
    done = []

    def setup(interpreter):
        interpreter.set_tick_interval(200)

        def hook(interp):
            if done or interp.stats.instructions < 600:
                return
            done.append(True)
            process = interp.process
            victim = process.runtime.worst_case_allocation()
            hole, _ = kernel.frames.free_runs(None)[-1]
            assert kernel.frames.alloc_at(hole, 1)
            queue.enqueue(
                MoveRequest(
                    process=process,
                    lo=victim.address & ~(PAGE_SIZE - 1),
                    page_count=1,
                    destination=hole * PAGE_SIZE,
                    interpreter=interp,
                )
            )

        interpreter.tick_hook = hook

    result = run_carat(binary, kernel=kernel, setup=setup, sanitize=True,
                       engine=engine)
    assert done, "the campaign hook never fired"
    if kernel.move_queue is not None:
        kernel.move_queue.drain_all()
    return result, kernel, queue, injector


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("step", QUEUE_FAULT_STEPS)
def test_one_shot_chunk_boundary_fault_recovers(binary, engine, step):
    """A crash at any step of the queued path — including mid-pre-copy,
    where the world is *running* — rolls the batch back (journal undo,
    windows closed, destination released), and the retry commits with
    bit-identical program output and clean sanitizer checkpoints."""
    result, kernel, queue, injector = _queued_run(
        binary, [FaultPoint(step, "crash")], engine=engine
    )
    assert injector.fired == [f"{step}:crash@move0"]
    assert result.exit_code == 0
    assert result.output == EXPECTED_OUTPUT
    assert queue.stats.retries == 1
    assert queue.stats.serviced == 1
    assert kernel.stats.moves_attempted == 2
    assert kernel.stats.moves_committed == 1
    assert kernel.stats.moves_rolled_back == 1
    assert kernel.stats.backoff_cycles > 0


def test_persistent_chunk_fault_degrades_and_frees_destination(binary):
    """Retry exhaustion on the queued path: the batch degrades into a
    quarantined range, the claimed destination frames return to the
    kernel, and the program is untouched."""
    manager = DegradationManager()
    result, kernel, queue, injector = _queued_run(
        binary,
        [FaultPoint("copy-data", "crash", persistent=True)],
        max_attempts=2,
        degradation=manager,
    )
    assert result.exit_code == 0
    assert result.output == EXPECTED_OUTPUT
    assert queue.stats.serviced == 0
    assert queue.stats.degraded == 1
    assert len(manager.failures) == 1
    failure = manager.failures[0]
    assert failure.operation == "page-move-batch"
    assert manager.is_quarantined(failure.lo, failure.hi)
    assert kernel.stats.moves_rolled_back == 2
    assert kernel.stats.moves_degraded == 1
    # No frames leaked: every claim the batch held was released.
    from repro.sanitizer import InvariantChecker

    assert InvariantChecker().check_kernel(kernel).ok


@pytest.mark.parametrize("step", ["quiesce-agents", "patch-escapes", "copy-data"])
def test_mid_chunk_torn_fault_recovers(binary, step):
    """Torn faults land *between two items of mid-step progress* — for
    the queued path that means between two escapes of a chunk scan, the
    two halves of the chunked copy, or the lease-drain scan of the
    quiesce step."""
    result, kernel, queue, injector = _queued_run(
        binary, [FaultPoint(step, "torn")]
    )
    assert len(injector.fired) == 1
    assert result.output == EXPECTED_OUTPUT
    assert queue.stats.serviced == 1
    assert kernel.stats.moves_rolled_back == 1
    assert kernel.stats.moves_committed == 1


# ---------------------------------------------------------------------------
# Property: both engines are identical under identical fault schedules.
# ---------------------------------------------------------------------------


def _scheduled_run(binary, points, engine):
    kernel = Kernel()
    injector = ProtocolFaultInjector([replace(p) for p in points])
    kernel.attach_fault_injector(injector)
    kernel.attach_degradation(DegradationManager())
    moved = []

    def setup(interpreter):
        interpreter.set_tick_interval(200)
        if hasattr(interpreter, "set_trace_tuning"):
            # Promote early so the trace tier is live while the faulted
            # moves (and their rollbacks) mutate the region map.
            interpreter.set_trace_tuning(threshold=2)

        def hook(interp):
            if len(moved) >= 4:
                return
            if interp.stats.instructions < (len(moved) + 1) * 500:
                return
            moved.append(True)
            process = interp.process
            victim = process.runtime.worst_case_allocation()
            snaps = interp.register_snapshots()
            try:
                kernel.request_page_move(
                    process,
                    victim.address & ~(PAGE_SIZE - 1),
                    register_snapshots=snaps,
                )
                interp.apply_snapshots(snaps)
            except MoveError:
                pass

        interpreter.tick_hook = hook

    result = run_carat(binary, kernel=kernel, setup=setup, engine=engine)
    return (
        result.exit_code,
        tuple(result.output),
        bytes(result.kernel.memory._data),
        result.stats.instructions,
        result.stats.cycles,
        kernel.stats.moves_attempted,
        kernel.stats.moves_committed,
        kernel.stats.moves_rolled_back,
        kernel.stats.moves_degraded,
        kernel.stats.backoff_cycles,
        tuple(injector.fired),
    )


class TestFaultScheduleDifferential:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_engines_identical_under_random_fault_schedule(self, seed):
        binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
        points = random_fault_schedule(random.Random(seed), count=3)
        reference = _scheduled_run(binary, points, "reference")
        fast = _scheduled_run(binary, points, "fast")
        trace = _scheduled_run(binary, points, "trace")
        assert reference == fast
        assert reference == trace
        assert reference[1] == tuple(EXPECTED_OUTPUT)
