"""Textual IR: printing, parsing, and round-tripping."""

import pytest

from repro.errors import IRError, ParseError
from repro.ir import (
    ConstantArray,
    ConstantInt,
    ConstantZero,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Module,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.types import ArrayType, F64, I8, I64, StructType, VOID, ptr
from tests.conftest import build_count_loop


def roundtrip(module: Module) -> Module:
    text = print_module(module)
    parsed = parse_module(text)
    assert print_module(parsed) == text
    return parsed


class TestRoundTrip:
    def test_count_loop(self, module):
        build_count_loop(module)
        verify_module(module)
        parsed = roundtrip(module)
        verify_module(parsed)

    def test_module_name_preserved(self):
        m = Module("fancy-name")
        assert parse_module(print_module(m)).name == "fancy-name"

    def test_globals(self, module):
        module.add_global(GlobalVariable("x", I64, ConstantInt(I64, -7)))
        module.add_global(
            GlobalVariable("arr", ArrayType(I64, 3), ConstantZero(ArrayType(I64, 3)))
        )
        module.add_global(
            GlobalVariable(
                "init",
                ArrayType(I8, 2),
                ConstantArray(ArrayType(I8, 2), [ConstantInt(I8, 104), ConstantInt(I8, 0)]),
                is_constant=True,
            )
        )
        parsed = roundtrip(module)
        assert parsed.get_global("x").initializer.value == -7
        assert parsed.get_global("init").is_constant

    def test_struct_types(self, module):
        node = StructType([I64, ptr(I8)], name="node")
        module.add_struct_type(node)
        fn = Function("touch", FunctionType(VOID, [ptr(node)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        g = b.gep(fn.args[0], [b.i64(0), ConstantInt(I64, 1)])
        b.load(g)
        b.ret()
        verify_module(module)
        parsed = roundtrip(module)
        assert "node" in parsed.struct_types

    def test_recursive_struct(self):
        text = """
%struct.n = type { i64, %struct.n* }

define void @f(%struct.n* %p) {
entry:
  %q = getelementptr %struct.n* %p, i64 0, i64 1
  %r = load %struct.n** %q
  ret void
}
"""
        m = parse_module(text)
        verify_module(m)
        st = m.struct_types["n"]
        assert st.fields[1].pointee is st

    def test_declare_with_vararg(self):
        m = parse_module("declare void @printf(i8*, ...)\n")
        assert m.get_function("printf").ftype.vararg

    def test_all_scalar_instructions(self):
        text = """
define i64 @ops(i64 %a, f64 %f) {
entry:
  %t1 = add i64 %a, 2
  %t2 = sub i64 %t1, 1
  %t3 = mul i64 %t2, 3
  %t4 = sdiv i64 %t3, 2
  %t5 = and i64 %t4, 255
  %t6 = shl i64 %t5, 1
  %t7 = lshr i64 %t6, 1
  %t8 = xor i64 %t7, 5
  %c = icmp slt i64 %t8, 100
  %s = select i1 %c, i64 %t8, i64 100
  %g = fadd f64 %f, 1.5
  %h = fmul f64 %g, 2.0
  %fc = fcmp olt f64 %h, 10.0
  %z = zext i1 %fc to i64
  %sum = add i64 %s, %z
  ret i64 %sum
}
"""
        m = parse_module(text)
        verify_module(m)
        assert print_module(parse_module(print_module(m))) == print_module(m)

    def test_forward_value_reference_via_phi(self):
        text = """
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %i
}
"""
        m = parse_module(text)
        verify_module(m)


class TestParseErrors:
    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_module("define i64 @f(banana %x) {\nentry:\n  ret i64 0\n}\n")

    def test_undefined_value(self):
        with pytest.raises(IRError, match="undefined value"):
            parse_module(
                "define i64 @f() {\nentry:\n  ret i64 %ghost\n}\n"
            )

    def test_unknown_global(self):
        with pytest.raises(ParseError, match="unknown global"):
            parse_module(
                "define i64 @f() {\nentry:\n  %x = load i64* @nope\n  ret i64 %x\n}\n"
            )

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_module("hello world")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_module("define i64 @f() { entry: ret i64 0 } #")

    def test_type_mismatch_surfaces(self):
        with pytest.raises(Exception):
            parse_module(
                "define void @f(i64 %x) {\nentry:\n"
                "  store i32 5, i64* null\n  ret void\n}\n"
            )
