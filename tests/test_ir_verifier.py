"""The structural verifier must catch each invariant violation."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import BranchInst, PhiInst, ReturnInst
from repro.ir.types import I64, VOID, ptr
from tests.conftest import build_count_loop


def test_good_function_passes(module):
    build_count_loop(module)
    verify_module(module)


def test_declaration_is_fine(module):
    Function("ext", FunctionType(I64, [I64]), module)
    verify_module(module)


def test_unterminated_block(module):
    fn = Function("f", FunctionType(VOID, []), module)
    block = fn.add_block("entry")
    IRBuilder(block).i64(0)  # constants insert nothing; block stays empty
    with pytest.raises(VerificationError, match="empty"):
        verify_function(fn)


def test_missing_terminator(module):
    fn = Function("f", FunctionType(I64, [I64]), module)
    block = fn.add_block("entry")
    b = IRBuilder(block)
    b.add(fn.args[0], b.i64(1))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(fn)


def test_entry_with_predecessor(module):
    fn = Function("f", FunctionType(VOID, []), module)
    entry = fn.add_block("entry")
    IRBuilder(entry).br(entry)
    with pytest.raises(VerificationError, match="entry block"):
        verify_function(fn)


def test_phi_missing_predecessor(module):
    fn, parts = build_count_loop(module)
    parts["i"].remove_incoming(parts["entry"])
    with pytest.raises(VerificationError, match="phi"):
        verify_function(fn)


def test_phi_after_non_phi(module):
    fn, parts = build_count_loop(module)
    loop = parts["loop"]
    phi = PhiInst(I64)
    phi.name = "late"
    phi.add_incoming(ConstantInt(I64, 0), parts["entry"])
    phi.add_incoming(ConstantInt(I64, 0), parts["body"])
    loop.insert(2, phi)  # after the existing phi AND the icmp
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_function(fn)


def test_use_not_dominated(module):
    fn = Function("f", FunctionType(I64, [I64]), module)
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    join = fn.add_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("slt", fn.args[0], b.i64(0))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    x = b.add(fn.args[0], b.i64(1))
    b.br(join)
    b.position_at_end(right)
    b.br(join)
    b.position_at_end(join)
    y = b.add(x, b.i64(2))  # x does not dominate join
    b.ret(y)
    with pytest.raises(VerificationError, match="not dominated"):
        verify_function(fn)


def test_return_type_mismatch(module):
    fn = Function("f", FunctionType(I64, []), module)
    block = fn.add_block("entry")
    block.append(ReturnInst())  # ret void from an i64 function
    with pytest.raises(VerificationError, match="ret"):
        verify_function(fn)


def test_duplicate_block_names(module):
    fn = Function("f", FunctionType(VOID, []), module)
    a = fn.add_block("same")
    c = fn.add_block("x")
    c.name = a.name
    IRBuilder(a).ret()
    IRBuilder(c).ret()
    with pytest.raises(VerificationError, match="duplicate block"):
        verify_function(fn)


def test_cross_function_value_use(module):
    f1 = Function("f1", FunctionType(I64, [I64]), module)
    e1 = f1.add_block("entry")
    b1 = IRBuilder(e1)
    val = b1.add(f1.args[0], b1.i64(1))
    b1.ret(val)
    f2 = Function("f2", FunctionType(I64, []), module)
    e2 = f2.add_block("entry")
    IRBuilder(e2).ret(val)  # value from f1!
    with pytest.raises(VerificationError, match="another function"):
        verify_function(f2)
