"""The patcher (page moves), register snapshots, and the runtime facade."""

import pytest

from repro.errors import KernelError, ProtectionFault
from repro.kernel.physmem import PhysicalMemory
from repro.runtime import (
    PAGE_SIZE,
    AllocationTable,
    AllocationToEscapeMap,
    CaratRuntime,
    Patcher,
    Region,
    RegionSet,
    RegisterSnapshot,
    page_down,
    page_up,
)

MB = 1024 * 1024


@pytest.fixture
def memory():
    return PhysicalMemory(4 * MB)


@pytest.fixture
def patcher(memory):
    return Patcher(AllocationTable(), AllocationToEscapeMap(), memory)


class TestPageMath:
    def test_page_down_up(self):
        assert page_down(0x1234) == 0x1000
        assert page_up(0x1234) == 0x2000
        assert page_up(0x1000) == 0x1000


class TestPlanMove:
    def test_simple_plan(self, patcher):
        patcher.table.add(0x10100, 64)
        plan = patcher.plan_move(0x10000, 0x11000)
        assert plan.lo == 0x10000
        assert plan.hi == 0x11000
        assert not plan.expanded
        assert len(plan.allocations) == 1

    def test_expansion_on_straddling_allocation(self, patcher):
        # Allocation straddles the 0x11000 boundary.
        patcher.table.add(0x10F80, 0x100)
        plan = patcher.plan_move(0x10000, 0x11000)
        assert plan.expanded
        assert plan.hi == 0x12000
        assert plan.page_count == 2

    def test_expansion_cascades(self, patcher):
        # A chain of straddling allocations: each expansion pulls in the
        # next one.
        patcher.table.add(0x10F80, 0x100)  # crosses into page 0x11
        patcher.table.add(0x11F80, 0x100)  # crosses into page 0x12
        plan = patcher.plan_move(0x10000, 0x11000)
        assert plan.hi == 0x13000
        assert plan.expand_lookups >= 2

    def test_expansion_downward(self, patcher):
        patcher.table.add(0x0FF80, 0x100)  # starts below the range
        plan = patcher.plan_move(0x10000, 0x11000)
        assert plan.lo == 0x0F000

    def test_unaligned_rejected(self, patcher):
        with pytest.raises(KernelError):
            patcher.plan_move(0x10001, 0x11000)
        with pytest.raises(KernelError):
            patcher.plan_move(0x11000, 0x11000)


class TestExecuteMove:
    def test_data_and_escapes_move(self, patcher, memory):
        a = patcher.table.add(0x10000, 64)
        memory.write_u64(0x10000, 0xABCDEF)
        # A cell elsewhere holds a pointer to 0x10008.
        memory.write_u64(0x20000, 0x10008)
        patcher.escapes.record(0x20000)

        plan = patcher.plan_move(0x10000, 0x11000)
        cost = patcher.execute_move(plan, 0x40000)
        # Data moved.
        assert memory.read_u64(0x40000) == 0xABCDEF
        # Escape patched.
        assert memory.read_u64(0x20000) == 0x40008
        # Table rebased.
        assert patcher.table.at(0x40000) is a
        assert cost.patch_gen_exec > 0
        assert cost.alloc_and_move > 0
        assert cost.total == (
            cost.page_expand + cost.patch_gen_exec + cost.register_patch
            + cost.alloc_and_move
        )

    def test_stale_escape_not_patched(self, patcher, memory):
        patcher.table.add(0x10000, 64)
        memory.write_u64(0x20000, 0x10008)
        patcher.escapes.record(0x20000)
        patcher.escapes.flush(patcher.table, memory.read_u64)
        # The cell is overwritten with a non-pointer before the move.
        memory.write_u64(0x20000, 7)
        plan = patcher.plan_move(0x10000, 0x11000)
        patcher.execute_move(plan, 0x40000)
        assert memory.read_u64(0x20000) == 7  # untouched

    def test_internal_pointer_cell_moves_and_patches(self, patcher, memory):
        # A linked structure where the escape cell itself lives in the
        # moved page (node->next inside the page).
        patcher.table.add(0x10000, 16)  # node A
        patcher.table.add(0x10010, 16)  # node B
        memory.write_u64(0x10008, 0x10010)  # A.next = B
        patcher.escapes.record(0x10008)
        plan = patcher.plan_move(0x10000, 0x11000)
        patcher.execute_move(plan, 0x50000)
        # A.next now lives at 0x50008 and must point to B's new home.
        assert memory.read_u64(0x50008) == 0x50010
        # And the escape map must have followed the cell.
        b = patcher.table.at(0x50010)
        assert patcher.escapes.escapes_of(b) == {0x50008}

    def test_register_patching(self, patcher, memory):
        patcher.table.add(0x10000, 64)
        snap = RegisterSnapshot(0, {"r1": 0x10020, "r2": 0x99999}, {"r1", "r2"})
        plan = patcher.plan_move(0x10000, 0x11000)
        cost = patcher.execute_move(plan, 0x40000, [snap])
        assert snap.slots["r1"] == 0x40020
        assert snap.slots["r2"] == 0x99999
        assert cost.register_patch > 0

    def test_non_pointer_slots_ignored(self):
        snap = RegisterSnapshot(0, {"i": 0x10000}, pointer_slots=set())
        assert snap.patch(0x10000, 0x11000, 0x1000) == 0
        assert snap.slots["i"] == 0x10000

    # Regression: when the destination range overlaps the source (a short
    # downward compaction slide), the old one-at-a-time rebase could land
    # one allocation's new base on another's not-yet-rebased base, and the
    # rbtree insert would silently replace that node — the later rebase
    # then popped the wrong allocation and merged the two escape sets.
    def test_overlapping_move_keeps_allocations_distinct(self, patcher, memory):
        a = patcher.table.add(0x10000, 64)
        b = patcher.table.add(0x11000, 64)
        memory.write_u64(0x20000, 0x10010)  # pointer into A
        memory.write_u64(0x20008, 0x11010)  # pointer into B
        patcher.escapes.record(0x20000)
        patcher.escapes.record(0x20008)
        patcher.escapes.flush(patcher.table, memory.read_u64)

        plan = patcher.plan_move(0x10000, 0x12000)
        patcher.execute_move(plan, 0x11000)  # slide up one page: overlap

        assert a.address == 0x11000
        assert b.address == 0x12000
        patcher.table.check_invariants()
        # Escape sets stayed per-allocation (not merged).
        assert patcher.escapes.escapes_of(a) == {0x20000}
        assert patcher.escapes.escapes_of(b) == {0x20008}
        # And the cells were patched against the right deltas.
        assert memory.read_u64(0x20000) == 0x11010
        assert memory.read_u64(0x20008) == 0x12010

    def test_overlapping_move_downward(self, patcher, memory):
        a = patcher.table.add(0x10000, 64)
        b = patcher.table.add(0x11000, 64)
        plan = patcher.plan_move(0x10000, 0x12000)
        patcher.execute_move(plan, 0x0F000)  # slide down one page
        assert a.address == 0x0F000
        assert b.address == 0x10000
        patcher.table.check_invariants()

    def test_unaligned_destination_rejected(self, patcher):
        patcher.table.add(0x10000, 8)
        plan = patcher.plan_move(0x10000, 0x11000)
        with pytest.raises(KernelError):
            patcher.execute_move(plan, 0x40001)

    def test_move_cost_aggregation(self):
        from repro.runtime.patching import MoveCost

        a = MoveCost(1, 2, 3, 4)
        b = MoveCost(10, 20, 30, 40)
        c = a + b
        assert (c.page_expand, c.patch_gen_exec, c.register_patch, c.alloc_and_move) == (11, 22, 33, 44)
        assert a.prototype_cost == 6
        assert a.prototype_wo_expand == 5
        assert abs(a.wo_expand_fraction - 0.5) < 1e-9


class TestCaratRuntime:
    def _runtime(self, memory):
        regions = RegionSet([Region(0, 2 * MB)])
        return CaratRuntime(memory, regions)

    def test_tracking_callbacks(self, memory):
        rt = self._runtime(memory)
        rt.on_alloc(0x1000, 64)
        assert rt.table.find_containing(0x1010) is not None
        rt.on_escape(0x5000)
        memory.write_u64(0x5000, 0x1010)
        rt.flush_escapes()
        assert rt.escapes.tracked_allocations() == 1
        rt.on_free(0x1000)
        assert len(rt.table) == 0
        assert rt.stats.tracking_events == 3
        assert rt.stats.tracking_cycles > 0

    def test_guard_pass_and_fault(self, memory):
        rt = self._runtime(memory)
        cycles = rt.guard_access(0x1000, 8, "read")
        assert cycles >= 1
        with pytest.raises(ProtectionFault):
            rt.guard_access(5 * MB, 8, "read")
        assert rt.stats.guard_faults == 1

    def test_guard_range_zero_length_passes(self, memory):
        rt = self._runtime(memory)
        rt.guard_range(0xFFFFFFFF, 0)  # bogus address, zero length: OK
        with pytest.raises(ProtectionFault):
            rt.guard_range(5 * MB, 64)

    def test_guard_call_checks_frame(self, memory):
        rt = self._runtime(memory)
        rt.guard_call(0x10000, 256)
        with pytest.raises(ProtectionFault):
            rt.guard_call(128, 256)  # frame would underflow region 0 base...
            # (stack pointer 128 minus 256 goes negative)

    def test_world_stop_resume(self, memory):
        rt = self._runtime(memory)
        cycles = rt.world_stop(thread_count=4)
        assert rt.is_stopped
        assert cycles >= 4 * rt.costs.world_stop_per_thread
        rt.resume()
        assert not rt.is_stopped

    def test_worst_case_allocation(self, memory):
        rt = self._runtime(memory)
        rt.on_alloc(0x10000, 64)
        rt.on_alloc(0x20000, 64)
        for i in range(5):
            cell = 0x30000 + 8 * i
            memory.write_u64(cell, 0x20000 + i)
            rt.on_escape(cell)
        memory.write_u64(0x38000, 0x10000)
        rt.on_escape(0x38000)
        worst = rt.worst_case_allocation()
        assert worst.address == 0x20000

    def test_footprint_reporting(self, memory):
        rt = self._runtime(memory)
        empty = rt.tracking_footprint_bytes()
        rt.on_alloc(0x10000, 64)
        assert rt.tracking_footprint_bytes() > empty

    def test_service_move_request(self, memory):
        rt = self._runtime(memory)
        rt.on_alloc(0x10000, 64)
        memory.write_u64(0x50000, 0x10008)
        rt.on_escape(0x50000)
        plan, cost = rt.service_move_request(0x10000, 0x11000, 0x80000)
        assert memory.read_u64(0x50000) == 0x80008
        assert rt.stats.moves_serviced == 1
        assert rt.stats.move_cost_accum.total == cost.total
