"""Shared fixtures and IR-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import (
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    ptr,
)


@pytest.fixture
def module():
    return Module("test")


def build_count_loop(module: Module, name: str = "count", bound=None):
    """A canonical counted loop::

        define i64 @count(i64* %arr, i64 %n) {
        entry:  br loop
        loop:   %i = phi [0, entry], [%i.next, body]
                %c = icmp slt %i, %n ; br %c, body, exit
        body:   %p = gep %arr, %i ; %v = load %p
                %i.next = add %i, 1 ; br loop
        exit:   ret %i
        }

    Returns (fn, dict of named values).
    """
    fn = Function(name, FunctionType(I64, [ptr(I64), I64]), module, ["arr", "n"])
    entry = fn.add_block("entry")
    loop = fn.add_block("loop")
    body = fn.add_block("body")
    exit_block = fn.add_block("exit")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I64, "i")
    n = bound if bound is not None else fn.args[1]
    cond = b.icmp("slt", i, n)
    b.cond_br(cond, body, exit_block)
    b.position_at_end(body)
    p = b.gep(fn.args[0], [i])
    v = b.load(p)
    i_next = b.add(i, b.i64(1))
    b.br(loop)
    b.position_at_end(exit_block)
    b.ret(i)
    i.add_incoming(b.i64(0), entry)
    i.add_incoming(i_next, body)
    return fn, {
        "entry": entry,
        "loop": loop,
        "body": body,
        "exit": exit_block,
        "i": i,
        "cond": cond,
        "p": p,
        "v": v,
        "i_next": i_next,
    }


SUM_SOURCE = """
long N = 64;
long total;
long sum(long *a, long n) {
  long s = 0;
  long i;
  for (i = 0; i < n; i++) { s += a[i]; }
  return s;
}
void main() {
  long *a = (long*)malloc(sizeof(long) * N);
  long i;
  for (i = 0; i < N; i++) { a[i] = i; }
  total = sum(a, N);
  print_long(total);
  free((char*)a);
}
"""

LINKED_LIST_SOURCE = """
struct Node { long value; struct Node *next; };
struct Node *head;
void main() {
  long i;
  for (i = 0; i < 40; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = i;
    node->next = head;
    head = node;
  }
  long total = 0;
  struct Node *p = head;
  while (p != null) { total += p->value; p = p->next; }
  print_long(total);
}
"""


def machine_fingerprint(kernel, process):
    """Every piece of machine state a failed move must leave untouched:
    the byte image, regions, frame allocator, heap metadata, kernel-side
    maps, the allocation table, and the (flushed) escape map.  The
    rollback tests assert fingerprint equality across a faulted move."""
    runtime = process.runtime
    runtime.flush_escapes()
    layout = process.layout
    allocations = sorted(runtime.table, key=lambda a: a.address)
    return {
        "memory": bytes(kernel.memory._data),
        "regions": tuple(
            (r.base, r.length, r.perms) for r in process.regions
        ),
        "frames_free": kernel.frames.free_frames,
        "free_runs": tuple(kernel.frames.free_runs(None)),
        "heap": process.heap.snapshot_state() if process.heap else None,
        "globals": dict(process.globals_map),
        "layout": (
            layout.stack_base,
            layout.globals_base,
            layout.code_base,
            layout.heap_base,
        ),
        "table": tuple((a.address, a.size) for a in allocations),
        "escapes": tuple(
            (a.address, tuple(sorted(runtime.escapes.escapes_of(a))))
            for a in allocations
        ),
    }
