"""Coverage for paths the main suites do not reach."""

import pytest

from repro.errors import KernelError
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    parse_module,
    print_module,
)
from repro.ir.types import F64, I8, I64, VOID, ptr
from tests.support import run_carat_baseline


def run_ir(text: str):
    """Parse IR text, run it baseline-on-physical, return output."""
    from repro.carat import compile_baseline

    module = parse_module(text)
    return run_carat_baseline(compile_baseline(module)).output


class TestInterpreterOpcodes:
    def test_unsigned_ops(self):
        out = run_ir(
            """
declare void @print_long(i64)
define void @main() {
entry:
  %a = udiv i64 -1, 4611686018427387904
  %b = urem i64 -1, 10
  call void @print_long(i64 %a)
  call void @print_long(i64 %b)
  ret void
}
"""
        )
        assert out == [str((2**64 - 1) // 2**62), str((2**64 - 1) % 10)]

    def test_shifts(self):
        out = run_ir(
            """
declare void @print_long(i64)
define void @main() {
entry:
  %a = ashr i64 -16, 2
  %b = lshr i64 -16, 60
  %c = shl i64 3, 4
  call void @print_long(i64 %a)
  call void @print_long(i64 %b)
  call void @print_long(i64 %c)
  ret void
}
"""
        )
        assert out == ["-4", str((2**64 - 16) >> 60), "48"]

    def test_select_and_fcmp(self):
        out = run_ir(
            """
declare void @print_long(i64)
define void @main() {
entry:
  %c = fcmp oge f64 2.5, 2.5
  %v = select i1 %c, i64 111, i64 222
  call void @print_long(i64 %v)
  ret void
}
"""
        )
        assert out == ["111"]

    def test_frem_and_fdiv_by_zero(self):
        out = run_ir(
            """
declare void @print_double(f64)
define void @main() {
entry:
  %a = frem f64 7.5, 2.0
  call void @print_double(f64 %a)
  ret void
}
"""
        )
        assert out == ["1.5"]

    def test_trunc_zext_roundtrip(self):
        out = run_ir(
            """
declare void @print_long(i64)
define void @main() {
entry:
  %t = trunc i64 456 to i8
  %z = zext i8 %t to i64
  %s = sext i8 %t to i64
  call void @print_long(i64 %z)
  call void @print_long(i64 %s)
  ret void
}
"""
        )
        # 456 mod 256 = 200, which is negative as a signed byte (-56).
        assert out == ["200", "-56"]


class TestPrinterCorners:
    def test_select_roundtrip(self):
        text = """
define i64 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 0
  %v = select i1 %c, i64 %x, i64 0
  ret i64 %v
}
"""
        module = parse_module(text)
        assert print_module(parse_module(print_module(module))) == print_module(module)

    def test_struct_global_roundtrip(self):
        from repro.ir import ConstantStruct, GlobalVariable
        from repro.ir.types import StructType

        module = Module("structs")
        st = StructType([I64, F64], name="pair")
        module.add_struct_type(st)
        module.add_global(
            GlobalVariable(
                "p",
                st,
                ConstantStruct(st, [ConstantInt(I64, 1), __import__("repro.ir.values", fromlist=["ConstantFloat"]).ConstantFloat(F64, 2.0)]),
            )
        )
        text = print_module(module)
        parsed = parse_module(text)
        assert print_module(parsed) == text


class TestPDGCorners:
    def test_memory_dependences_of_load(self, module):
        from repro.analysis.alias import ChainedAliasAnalysis
        from repro.analysis.pdg import ProgramDependenceGraph

        fn = Function("f", FunctionType(I64, [ptr(I64)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        b.store(b.i64(1), fn.args[0])
        other = b.alloca(I64)
        b.store(b.i64(2), other)
        load = b.load(fn.args[0])
        b.ret(load)
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        deps = pdg.memory_dependences(load)
        # The store through %p is a dependence; the private alloca store
        # is provably not.
        assert len(deps) == 1
        assert deps[0].pointer is fn.args[0]

    def test_malloc_does_not_clobber(self, module):
        from repro.analysis.alias import ChainedAliasAnalysis
        from repro.analysis.pdg import ProgramDependenceGraph

        malloc = Function("malloc", FunctionType(ptr(I8), [I64]), module)
        fn = Function("g", FunctionType(I64, [ptr(I64)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        call = b.call(malloc, [b.i64(8)])
        load = b.load(fn.args[0])
        b.ret(load)
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        assert not pdg.may_write_to(call, fn.args[0], 8)

    def test_free_clobbers(self, module):
        from repro.analysis.alias import ChainedAliasAnalysis
        from repro.analysis.pdg import ProgramDependenceGraph

        free = Function("free", FunctionType(VOID, [ptr(I8)]), module)
        fn = Function("h", FunctionType(VOID, [ptr(I8)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        call = b.call(free, [fn.args[0]])
        b.ret()
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        assert pdg.may_write_to(call, fn.args[0], 8)


class TestKernelErrorPaths:
    def test_move_unmapped_traditional_page(self):
        from repro.carat import compile_baseline
        from repro.kernel import Kernel
        from tests.conftest import SUM_SOURCE

        kernel = Kernel()
        process = kernel.load_traditional(compile_baseline(SUM_SOURCE))
        with pytest.raises(KernelError):
            kernel.move_page_traditional(process, 0xDEAD0000)

    def test_carat_ops_on_traditional_process(self):
        from repro.carat import compile_baseline
        from repro.kernel import Kernel
        from tests.conftest import SUM_SOURCE

        kernel = Kernel()
        process = kernel.load_traditional(compile_baseline(SUM_SOURCE))
        with pytest.raises(KernelError):
            kernel.request_page_move(process, 0x1000)
        with pytest.raises(KernelError):
            kernel.request_protection_change(process, 0, 4096, 0)
        with pytest.raises(KernelError):
            kernel.expand_stack(process, 4096)

    def test_traditional_ops_on_carat_process(self):
        from repro.carat import compile_carat
        from repro.kernel import Kernel
        from repro.kernel.mmu import PageFault
        from tests.conftest import SUM_SOURCE

        kernel = Kernel()
        process = kernel.load_carat(compile_carat(SUM_SOURCE))
        with pytest.raises(KernelError):
            kernel.handle_page_fault(process, PageFault(0x1000, "read", False))
        with pytest.raises(KernelError):
            kernel.move_page_traditional(process, 0x1000)

    def test_double_swap_out_rejected(self):
        from repro.carat import compile_carat
        from repro.kernel import Kernel
        from repro.kernel.swap import SwapManager
        from repro.machine.interp import Interpreter
        from tests.conftest import LINKED_LIST_SOURCE

        kernel = Kernel()
        process = kernel.load_carat(compile_carat(LINKED_LIST_SOURCE))
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(800)
        process.runtime.flush_escapes()
        victim = next(a for a in process.runtime.table if a.kind == "heap")
        swap = SwapManager(kernel)
        page = victim.address & ~4095
        swap.swap_out(process, page)
        with pytest.raises(KernelError):
            swap.swap_out(process, page)


class TestGuardRangeHoisting:
    def test_range_guard_hoists_out_of_outer_loop(self):
        """An inner loop's merged range guard whose bounds are invariant in
        the outer loop should climb to the outer preheader (Opt1 applied
        to Opt2's product)."""
        from repro.carat import CompileOptions, compile_carat
        from repro.carat.intrinsics import GUARD_RANGE

        source = """
        long grid[32];
        void main() {
          long r;
          long c;
          long s = 0;
          for (r = 0; r < 8; r++) {
            for (c = 0; c < 32; c++) {
              s = s + grid[c];
            }
          }
          print_long(s);
        }
        """
        binary = compile_carat(
            source, CompileOptions(tracking=False), module_name="nest"
        )
        from tests.support import run_carat

        run = run_carat(binary)
        # The range guard must execute far fewer times than the 8 outer
        # iterations x 1 would if trapped in the outer loop body — ideally
        # exactly once (hoisted to the outermost preheader).
        range_guards = [
            inst
            for fn in binary.module.defined_functions()
            for inst in fn.instructions()
            if getattr(inst, "callee_name", None) == GUARD_RANGE
        ]
        assert range_guards, "inner loop guard must have merged"
        assert run.process.runtime.stats.guards_executed <= 12
