"""Generic transforms: mem2reg, simplify, DCE, LICM, pass manager."""

import pytest

from repro.analysis.loops import LoopInfo
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    parse_module,
    print_function,
    verify_function,
    verify_module,
)
from repro.ir.instructions import AllocaInst, LoadInst, PhiInst, StoreInst
from repro.ir.types import I64, VOID, ptr
from repro.transform.dce import eliminate_dead_code, run_on_function as dce_fn
from repro.transform.licm import hoist_loop_invariants
from repro.transform.mem2reg import is_promotable, promote_memory_to_registers
from repro.transform.pass_manager import PassManager, optimize_module
from repro.transform.simplify import (
    fold_icmp,
    fold_int_binop,
    run_on_function as simplify_fn,
)
from repro.ir.types import I8


class TestMem2Reg:
    def _straightline(self, module):
        fn = Function("f", FunctionType(I64, [I64]), module, ["x"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64, name="slot")
        b.store(fn.args[0], slot)
        v1 = b.load(slot)
        add = b.add(v1, b.i64(1))
        b.store(add, slot)
        v2 = b.load(slot)
        b.ret(v2)
        return fn, slot

    def test_straightline_promotion(self, module):
        fn, slot = self._straightline(module)
        assert is_promotable(slot)
        promoted = promote_memory_to_registers(fn)
        assert promoted == 1
        verify_function(fn)
        assert not any(isinstance(i, (AllocaInst, LoadInst, StoreInst)) for i in fn.instructions())

    def test_diamond_inserts_phi(self, module):
        fn = Function("g", FunctionType(I64, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        slot = b.alloca(I64)
        cond = b.icmp("slt", fn.args[0], b.i64(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        b.store(b.i64(1), slot)
        b.br(join)
        b.position_at_end(right)
        b.store(b.i64(2), slot)
        b.br(join)
        b.position_at_end(join)
        v = b.load(slot)
        b.ret(v)
        assert promote_memory_to_registers(fn) == 1
        verify_function(fn)
        phis = join.phis()
        assert len(phis) == 1
        values = sorted(v.value for v, _ in phis[0].incoming)
        assert values == [1, 2]

    def test_escaped_alloca_not_promoted(self, module):
        ext = Function("use", FunctionType(VOID, [ptr(I64)]), module)
        fn = Function("h", FunctionType(VOID, []), module)
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64)
        b.call(ext, [slot])
        b.ret()
        assert not is_promotable(slot)
        assert promote_memory_to_registers(fn) == 0

    def test_aggregate_alloca_not_promoted(self, module):
        from repro.ir.types import ArrayType

        fn = Function("k", FunctionType(VOID, []), module)
        b = IRBuilder(fn.add_block("entry"))
        arr = b.alloca(ArrayType(I64, 4))
        b.ret()
        assert not is_promotable(arr)

    def test_loop_counter_becomes_phi(self, module):
        # while (i < n) i++ lowered with a slot, then promoted.
        fn = Function("m", FunctionType(I64, [I64]), module, ["n"])
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        out = fn.add_block("out")
        b = IRBuilder(entry)
        slot = b.alloca(I64)
        b.store(b.i64(0), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        cond = b.icmp("slt", i, fn.args[0])
        b.cond_br(cond, body, out)
        b.position_at_end(body)
        i2 = b.load(slot)
        b.store(b.add(i2, b.i64(1)), slot)
        b.br(header)
        b.position_at_end(out)
        final = b.load(slot)
        b.ret(final)
        assert promote_memory_to_registers(fn) == 1
        verify_function(fn)
        assert len(header.phis()) == 1


class TestSimplify:
    def test_fold_int_binop(self):
        assert fold_int_binop("add", I64, 2, 3) == 5
        assert fold_int_binop("sdiv", I64, 7, -2) == -3  # trunc toward zero
        assert fold_int_binop("srem", I64, 7, -2) == 1
        assert fold_int_binop("sdiv", I64, 1, 0) is None
        assert fold_int_binop("shl", I8, 1, 9) is None
        assert fold_int_binop("add", I8, 127, 1) == -128  # wraps

    def test_fold_icmp(self):
        assert fold_icmp("slt", -1, 1, 64)
        assert not fold_icmp("ult", -1, 1, 64)  # -1 is huge unsigned
        assert fold_icmp("eq", 5, 5, 64)

    def test_constant_folding_in_function(self, module):
        fn = Function("cf", FunctionType(I64, []), module)
        b = IRBuilder(fn.add_block("entry"))
        x = b.add(b.i64(2), b.i64(3))
        y = b.mul(x, b.i64(4))
        b.ret(y)
        simplify_fn(fn)
        verify_function(fn)
        term = fn.entry.terminator
        assert isinstance(term.return_value, ConstantInt)
        assert term.return_value.value == 20

    def test_identities(self, module):
        fn = Function("ids", FunctionType(I64, [I64]), module, ["x"])
        b = IRBuilder(fn.add_block("entry"))
        x = fn.args[0]
        a = b.add(x, b.i64(0))
        c = b.mul(a, b.i64(1))
        d = b.sub(c, c)
        b.ret(d)
        simplify_fn(fn)
        dce_fn(fn)
        term = fn.entry.terminator
        assert isinstance(term.return_value, ConstantInt)
        assert term.return_value.value == 0

    def test_zext_icmp_peephole(self, module):
        fn = Function("pe", FunctionType(I64, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        t = fn.add_block("t")
        f = fn.add_block("f")
        b = IRBuilder(entry)
        flag = b.icmp("slt", fn.args[0], b.i64(10))
        wide = b.zext(flag, I64)
        again = b.icmp("ne", wide, b.i64(0))
        b.cond_br(again, t, f)
        b.position_at_end(t)
        b.ret(b.i64(1))
        b.position_at_end(f)
        b.ret(b.i64(0))
        simplify_fn(fn)
        dce_fn(fn)
        term = entry.terminator
        assert term.condition is flag  # chain collapsed

    def test_constant_branch_folding(self, module):
        fn = Function("cb", FunctionType(I64, []), module)
        entry = fn.add_block("entry")
        t = fn.add_block("t")
        f = fn.add_block("f")
        b = IRBuilder(entry)
        b.cond_br(b.true(), t, f)
        b.position_at_end(t)
        b.ret(b.i64(1))
        b.position_at_end(f)
        b.ret(b.i64(0))
        simplify_fn(fn)
        dce_fn(fn)
        verify_function(fn)
        assert len(fn.blocks) == 2  # dead arm removed
        assert not entry.terminator.is_conditional


class TestDCE:
    def test_dead_chain_removed(self, module):
        fn = Function("d", FunctionType(I64, [I64]), module, ["x"])
        b = IRBuilder(fn.add_block("entry"))
        a = b.add(fn.args[0], b.i64(1))
        c = b.mul(a, b.i64(2))  # dead chain
        b.ret(fn.args[0])
        removed = eliminate_dead_code(fn)
        assert removed == 2
        assert len(fn.entry.instructions) == 1

    def test_store_not_removed(self, module):
        fn = Function("d2", FunctionType(VOID, [ptr(I64)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        b.store(b.i64(1), fn.args[0])
        b.ret()
        assert eliminate_dead_code(fn) == 0

    def test_unused_load_removed(self, module):
        fn = Function("d3", FunctionType(VOID, [ptr(I64)]), module, ["p"])
        b = IRBuilder(fn.add_block("entry"))
        b.load(fn.args[0])
        b.ret()
        assert eliminate_dead_code(fn) == 1


class TestLICM:
    def test_invariant_computation_hoisted(self, module):
        fn = Function("l", FunctionType(I64, [I64, I64]), module, ["n", "k"])
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        out = fn.add_block("out")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I64, "i")
        acc = b.phi(I64, "acc")
        cond = b.icmp("slt", i, fn.args[0])
        b.cond_br(cond, body, out)
        b.position_at_end(body)
        invariant = b.mul(fn.args[1], b.i64(7))  # loop-invariant
        acc2 = b.add(acc, invariant)
        i2 = b.add(i, b.i64(1))
        b.br(header)
        b.position_at_end(out)
        b.ret(acc)
        i.add_incoming(b.i64(0), entry)
        i.add_incoming(i2, body)
        acc.add_incoming(b.i64(0), entry)
        acc.add_incoming(acc2, body)
        verify_function(fn)

        hoisted = hoist_loop_invariants(fn)
        assert hoisted >= 1
        verify_function(fn)
        li = LoopInfo.compute(fn)
        assert not li.loops[0].contains_instruction(invariant)

    def test_variant_not_hoisted(self, module):
        from tests.conftest import build_count_loop

        fn, parts = build_count_loop(module)
        hoist_loop_invariants(fn)
        verify_function(fn)
        li = LoopInfo.compute(fn)
        # The gep depends on %i: must stay in the loop.
        assert li.loop_for(parts["p"].parent) is not None


class TestPassManager:
    def test_pipeline_reports_counts(self):
        from repro.frontend import compile_source
        from tests.conftest import SUM_SOURCE

        m = compile_source(SUM_SOURCE)
        stats = optimize_module(m, verify=True)
        assert stats["mem2reg"] > 0
        verify_module(m)

    def test_custom_pass_order(self, module):
        calls = []
        pm = PassManager()
        pm.add("a", lambda m: calls.append("a") or 0)
        pm.add("b", lambda m: calls.append("b") or 0)
        pm.run(module)
        assert calls == ["a", "b"]

    def test_verify_failure_names_pass(self, module):
        def bad_pass(m):
            fn = Function("broken", FunctionType(I64, []), module)
            fn.add_block("entry")  # unterminated
            b = IRBuilder(fn.entry)
            b.add(b.i64(1), b.i64(2))
            return 1

        pm = PassManager(verify_after_each=True)
        pm.add("bad", bad_pass)
        with pytest.raises(Exception, match="bad"):
            pm.run(module)
