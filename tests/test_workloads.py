"""Workload suite: every program compiles under the full CARAT treatment
and computes the same answer in all three configurations."""

import pytest

from repro.carat import compile_baseline, compile_carat
from tests.support import run_carat, run_carat_baseline, run_traditional
from repro.workloads import all_workloads, get_workload, workload_names

ALL_NAMES = workload_names()


def test_suite_covers_the_paper(snapshot=None):
    # The paper's Section 3 list (Mantevo, NAS, PARSEC, SPEC).
    expected = {
        "hpccg", "cg", "ep", "ft", "lu",
        "blackscholes", "bodytrack", "canneal", "fluidanimate",
        "freqmine", "streamcluster", "swaptions", "x264",
        "deepsjeng", "lbm", "mcf", "nab", "namd", "omnetpp",
        "x264_s", "xalancbmk", "xz",
    }
    assert expected <= set(ALL_NAMES)


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("quake3")
    with pytest.raises(ValueError):
        get_workload("hpccg", scale="galactic")


def test_scales_change_footprint():
    tiny = get_workload("lbm", "tiny")
    small = get_workload("lbm", "small")
    assert tiny.source != small.source


@pytest.mark.parametrize("name", ALL_NAMES)
def test_compiles_under_carat(name):
    wl = get_workload(name, "tiny")
    binary = compile_carat(wl.source, module_name=name)
    assert binary.guard_stats.total > 0
    assert binary.is_signed


@pytest.mark.parametrize("name", ALL_NAMES)
def test_carat_matches_baseline(name):
    wl = get_workload(name, "tiny")
    base = run_carat_baseline(wl.source, name=name)
    carat = run_carat(wl.source, name=name)
    assert base.output == carat.output
    assert base.exit_code == carat.exit_code == 0
    assert carat.process.runtime.stats.guard_faults == 0


@pytest.mark.parametrize(
    "name", ["hpccg", "canneal", "mcf", "swaptions", "ft", "deepsjeng"]
)
def test_traditional_matches_baseline(name):
    wl = get_workload(name, "tiny")
    base = run_carat_baseline(wl.source, name=name)
    trad = run_traditional(wl.source, name=name)
    assert base.output == trad.output


def test_behavior_classes_show_up_in_tlb_pressure():
    """Pointer-chasing/random workloads must out-miss regular ones, the
    ordering Figure 2 exists to show."""
    regular = run_traditional(get_workload("hpccg", "tiny").source, name="hpccg")
    chase = run_traditional(get_workload("deepsjeng", "tiny").source, name="deepsjeng")
    assert chase.dtlb_mpki() > regular.dtlb_mpki()


def test_nab_is_the_escape_outlier():
    """nab holds many escapes into one allocation (Figure 5)."""
    r = run_carat(get_workload("nab", "tiny").source, name="nab")
    rt = r.process.runtime
    hist = rt.escape_histogram()
    assert hist, "nab must record escapes"
    assert max(hist.keys()) > 50  # one allocation with many escapes


def test_streamcluster_escapes_happen_early():
    from repro.carat import compile_carat
    from repro.kernel import Kernel
    from repro.machine.interp import Interpreter

    wl = get_workload("streamcluster", "tiny")
    binary = compile_carat(wl.source, module_name=wl.name)
    kernel = Kernel()
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")
    interp.run_steps(10_000_000)
    stats = process.runtime.escapes.stats
    assert stats.recorded > 0


def test_ft_static_footprint_dominates():
    """FT's data lives in globals: static footprint ~ total footprint
    (Table 2's pre-allocatable case)."""
    from repro.kernel.loader import static_footprint_pages

    # Compile only (no run), so the small scale is cheap here.
    ft = compile_baseline(get_workload("ft", "small").source, module_name="ft")
    ep = compile_baseline(get_workload("ep", "small").source, module_name="ep")
    assert static_footprint_pages(ft) > 3 * static_footprint_pages(ep)
