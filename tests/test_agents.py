"""Translation clients: mediated leases, DMA streaming, and the
quiesce-vs-degradation contract of the ``quiesce-agents`` move step.

The acceptance bar, per scenario:

* a cooperative agent's lease over a move's source range is *drained*
  at the journaled quiesce step; if the move later rolls back, the
  journal undo re-grants the lease and the agent resumes mid-cursor;
* an uncooperative agent (refuses every quiesce) must *degrade* the
  move — rollback, destination frames freed, range quarantined, no
  leak — on both the serial path and the queued/batched path;
* no move may land *inside* a live lease: admission refuses such
  destinations, and the sanitizer's ``dma-pin`` rule catches one forged
  straight past admission (``FaultInjector.move_into_lease``).
"""

import pytest

from repro.agents import AgentMediator, DmaAgent, Lease, TranslationClient
from repro.carat import compile_carat
from repro.errors import KernelError, MoveError, QuiesceFailure
from repro.kernel import Kernel, PAGE_SIZE
from repro.machine.session import CaratSession, RunConfig
from repro.resilience import DegradationManager, MoveQueue, MoveRequest, RetryPolicy
from repro.sanitizer import InvariantChecker
from repro.sanitizer.faults import FaultInjector
from tests.conftest import LINKED_LIST_SOURCE
from tests.support import run_carat

EXPECTED_OUTPUT = [str(sum(range(40)))]

HEAP_PROGRAM = """
long N = 600;
void main() {
  long *a = (long*)malloc(sizeof(long) * N);
  long *b = (long*)malloc(sizeof(long) * N);
  long i; long s = 0;
  for (i = 0; i < N; i++) { a[i] = i * 3; b[i] = i * 5; }
  for (i = 0; i < N; i++) { s = s + a[i] + b[i]; }
  print_long(s);
}
"""


def _loaded(source=HEAP_PROGRAM):
    """A kernel + CARAT process that has *run to completion* (so its
    heap allocations are live in the table) + an attached mediator."""
    from repro.machine.interp import Interpreter

    kernel = Kernel()
    binary = compile_carat(source, module_name="agents")
    process = kernel.load_carat(binary)
    Interpreter(process, kernel).run("main")
    mediator = AgentMediator(kernel)
    kernel.attach_agents(mediator)
    return kernel, process, mediator


def _first_heap_allocation(process):
    heap = sorted(
        (a for a in process.runtime.table if a.kind == "heap" and a.live),
        key=lambda a: a.address,
    )
    assert heap, "program has no live heap allocations"
    return heap[0]


# ---------------------------------------------------------------------------
# Mediator and lease mechanics
# ---------------------------------------------------------------------------


class TestMediator:
    def test_register_rejects_duplicate_names(self):
        _, _, mediator = _loaded()
        mediator.register(DmaAgent(name="dma0"))
        with pytest.raises(KernelError, match="already registered"):
            mediator.register(DmaAgent(name="dma0"))

    def test_unregister_releases_client_leases(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        allocation = _first_heap_allocation(process)
        mediator.translate(agent, process, allocation.address, allocation.size)
        assert len(mediator.live_leases()) == 1
        mediator.unregister("dma0")
        assert mediator.live_leases() == []
        with pytest.raises(KernelError, match="no client"):
            mediator.unregister("dma0")

    def test_translate_validates_against_the_tables(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        allocation = _first_heap_allocation(process)
        with pytest.raises(KernelError, match="empty"):
            mediator.translate(agent, process, allocation.address, 0)
        outsider = DmaAgent(name="ghost")
        with pytest.raises(KernelError, match="not registered"):
            mediator.translate(outsider, process, allocation.address, 8)
        # Outside every region: far past the capsule.
        with pytest.raises(KernelError, match="outside every"):
            mediator.translate(agent, process, 2**40, 8)
        # Region-legal but not backed by a live allocation: free heap
        # space past the last allocation.
        free_heap = allocation.address + allocation.size + 4 * PAGE_SIZE
        with pytest.raises(KernelError, match="not backed"):
            mediator.translate(agent, process, free_heap, 8)

    def test_lease_overlap_queries(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        allocation = _first_heap_allocation(process)
        lease = mediator.translate(
            agent, process, allocation.address, allocation.size
        )
        assert lease.length == allocation.size
        assert mediator.leases_overlapping(lease.lo, lease.hi) == [lease]
        assert mediator.leases_overlapping(lease.hi, lease.hi + 8) == []
        assert mediator.leases_overlapping(lease.lo, lease.hi, pid=999) == []
        assert mediator.leases_of("dma0") == [lease]
        mediator.release(lease)
        assert not lease.live
        assert mediator.live_leases() == []


# ---------------------------------------------------------------------------
# DMA streaming through a real run
# ---------------------------------------------------------------------------


class TestDmaStreaming:
    def test_agents_stream_and_output_is_agent_oblivious(self):
        config = RunConfig(name="dmastream", agents=2, agent_burst=128)
        from repro.workloads import get_workload

        workload = get_workload("dmastream", "tiny")
        plain = CaratSession(RunConfig(name="dmastream")).run(workload.source)
        result = CaratSession(config).run(workload.source)
        assert result.output == plain.output
        assert result.exit_code == 0
        mediator = result.kernel.agents
        assert mediator is not None
        for client in mediator.clients.values():
            assert client.leases_taken > 0
            assert client.bytes_streamed > 0
            assert client.checksum > 0

    def test_streamed_bytes_checksum_matches_memory_contents(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0", burst=32))
        agent.target(process)
        allocation = _first_heap_allocation(process)
        # Step until the first lease is fully streamed.
        for _ in range(2 + allocation.size // 32):
            mediator.step()
            if agent.leases_taken and agent.lease is None:
                break
        assert agent.bytes_streamed >= allocation.size
        expected = 0
        for byte in kernel.memory.read_bytes(allocation.address, allocation.size):
            expected = (expected * 131 + byte) % (1 << 61)
        assert agent.checksum == expected


# ---------------------------------------------------------------------------
# Quiesce: drain + journaled re-grant
# ---------------------------------------------------------------------------


class TestQuiesceDrain:
    def _leased_victim(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        agent.target(process)
        mediator.step()  # acquires a lease over the first heap allocation
        lease = agent.lease
        assert lease is not None and lease.live
        return kernel, process, mediator, agent, lease

    def test_move_over_lease_drains_it_and_commits(self):
        kernel, process, mediator, agent, lease = self._leased_victim()
        page = lease.lo & ~(PAGE_SIZE - 1)
        kernel.request_page_move(process, page)
        assert agent.leases_drained == 1
        assert not lease.live
        assert mediator.live_leases() == []
        assert any("drained" in entry for entry in mediator.quiesce_log)
        assert kernel.stats.moves_committed == 1

    def test_rollback_regrants_the_drained_lease(self):
        from repro.sanitizer.faults import FaultPoint, ProtocolFaultInjector

        kernel, process, mediator, agent, lease = self._leased_victim()
        # Crash *after* the quiesce drain; the journal undo must re-grant.
        kernel.attach_fault_injector(
            ProtocolFaultInjector(
                [FaultPoint("copy-data", "crash", persistent=True)]
            )
        )
        kernel.retry_policy = RetryPolicy(max_attempts=2)
        kernel.attach_degradation(DegradationManager())
        page = lease.lo & ~(PAGE_SIZE - 1)
        with pytest.raises(MoveError):
            kernel.request_page_move(process, page)
        # Every attempt drained the lease and every rollback re-granted it.
        assert lease.live
        assert mediator.live_leases() == [lease]
        assert agent.lease is lease  # on_regrant resumed the stream
        assert agent.leases_drained == 2
        assert InvariantChecker().check_kernel(kernel).ok


# ---------------------------------------------------------------------------
# Degradation: an uncooperative agent must degrade the move, not hang it
# ---------------------------------------------------------------------------


class TestQuiesceDegradation:
    def test_serial_move_degrades_without_leaking(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0", uncooperative=True))
        agent.target(process)
        mediator.step()
        lease = agent.lease
        assert lease is not None
        kernel.retry_policy = RetryPolicy(max_attempts=3)
        manager = DegradationManager()
        kernel.attach_degradation(manager)
        page = lease.lo & ~(PAGE_SIZE - 1)
        free_before = kernel.frames.free_frames
        with pytest.raises(MoveError) as error:
            kernel.request_page_move(process, page)
        # QuiesceFailure is non-transient: one attempt, no retries.
        assert error.value.attempts == 1
        assert error.value.failure is manager.failures[0]
        assert "refused" in manager.failures[0].error
        assert manager.is_quarantined(error.value.lo, error.value.hi)
        assert agent.quiesces_refused == 1
        assert lease.live  # the refused lease was never revoked
        # Destination freed on rollback: no frame leak.
        assert kernel.frames.free_frames == free_before
        assert kernel.stats.moves_degraded == 1
        assert kernel.stats.moves_committed == 0
        assert InvariantChecker().check_kernel(kernel).ok

    def test_queued_move_degrades_without_leaking(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0", uncooperative=True))
        agent.target(process)
        mediator.step()
        lease = agent.lease
        assert lease is not None
        kernel.retry_policy = RetryPolicy(max_attempts=3)
        manager = DegradationManager()
        kernel.attach_degradation(manager)
        queue = MoveQueue(kernel, batch_size=2)
        kernel.attach_move_queue(queue)
        page = lease.lo & ~(PAGE_SIZE - 1)
        # Size the request from the patcher's plan: a request smaller
        # than the allocation it covers would drop as stale, not degrade.
        plan = process.runtime.patcher.plan_move(page, page + PAGE_SIZE)
        hole = next(
            start
            for start, length in reversed(kernel.frames.free_runs(None))
            if length >= plan.page_count
        )
        assert kernel.frames.alloc_at(hole, plan.page_count)
        free_before = kernel.frames.free_frames
        assert queue.enqueue(
            MoveRequest(
                process=process,
                lo=plan.lo,
                page_count=plan.page_count,
                destination=hole * PAGE_SIZE,
            )
        )
        queue.drain_all()
        assert queue.stats.serviced == 0
        assert queue.stats.degraded == 1
        assert len(manager.failures) == 1
        assert manager.is_quarantined(
            manager.failures[0].lo, manager.failures[0].hi
        )
        assert lease.live
        assert kernel.stats.moves_degraded == 1
        assert InvariantChecker().check_kernel(kernel).ok

    def test_uncooperative_agent_does_not_corrupt_a_full_run(self):
        """End to end: the linked-list program runs while an
        uncooperative agent pins its heap and a mid-run move is
        requested — the move degrades, the program's output is
        bit-identical, and the sanitizer stays clean."""
        kernel = Kernel()
        kernel.retry_policy = RetryPolicy(max_attempts=2)
        kernel.attach_degradation(DegradationManager())
        mediator = AgentMediator(kernel)
        kernel.attach_agents(mediator)
        caught = []
        done = []

        def setup(interpreter):
            interpreter.set_tick_interval(200)
            agent = mediator.register(
                DmaAgent(name="dma0", uncooperative=True)
            )
            agent.target(interpreter.process)

            def hook(interp):
                mediator.step()
                if done or interp.stats.instructions < 600:
                    return
                if agent.lease is None:
                    return
                done.append(True)
                process = interp.process
                snaps = interp.register_snapshots()
                try:
                    kernel.request_page_move(
                        process,
                        agent.lease.lo & ~(PAGE_SIZE - 1),
                        register_snapshots=snaps,
                    )
                    interp.apply_snapshots(snaps)
                except MoveError as exc:
                    caught.append(exc)

            interpreter.tick_hook = hook

        result = run_carat(
            LINKED_LIST_SOURCE, kernel=kernel, setup=setup, sanitize=True
        )
        assert done, "the move was never requested"
        assert result.exit_code == 0
        assert result.output == EXPECTED_OUTPUT
        assert len(caught) == 1
        assert kernel.stats.moves_degraded == 1


# ---------------------------------------------------------------------------
# Admission + the dma-pin sanitizer rule
# ---------------------------------------------------------------------------


class TestDmaPin:
    def test_admission_refuses_destination_inside_live_lease(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        agent.target(process)
        mediator.step()
        lease = agent.lease
        assert lease is not None
        queue = MoveQueue(kernel)
        kernel.attach_move_queue(queue)
        victim = sorted(
            (a for a in process.runtime.table if a.kind == "heap" and a.live),
            key=lambda a: a.address,
        )[-1]
        destination = lease.lo & ~(PAGE_SIZE - 1)
        source = victim.address & ~(PAGE_SIZE - 1)
        # Admission control itself raises with the lease in the message.
        with pytest.raises(MoveError) as refused:
            kernel._check_admission(
                process,
                "page-move",
                source,
                source + PAGE_SIZE,
                destination=destination,
            )
        assert refused.value.step == "admission"
        assert "lease" in str(refused.value)
        # The queue's producer path maps that to a refusal: nothing is
        # enqueued, and the (unclaimed, lease-owned) destination frames
        # are left alone.
        free_before = kernel.frames.free_frames
        assert not queue.enqueue(
            MoveRequest(
                process=process,
                lo=source,
                page_count=1,
                destination=destination,
                destination_claimed=False,
            )
        )
        assert queue.stats.refused == 1
        assert queue.stats.enqueued == 0
        assert kernel.frames.free_frames == free_before

    def test_forged_move_into_lease_trips_the_dma_pin_rule(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        agent.target(process)
        mediator.step()
        assert agent.lease is not None
        queue = MoveQueue(kernel)
        kernel.attach_move_queue(queue)
        checker = InvariantChecker()
        assert checker.check_kernel(kernel).ok

        injector = FaultInjector(kernel)
        destination = injector.move_into_lease(process)
        assert destination == agent.lease.lo & ~(PAGE_SIZE - 1)
        report = checker.check_kernel(kernel)
        assert not report.ok
        rules = {violation.rule for violation in report.errors}
        assert "dma-pin" in rules

    def test_dma_pin_rule_flags_lease_over_freed_frames(self):
        kernel, process, mediator = _loaded()
        agent = mediator.register(DmaAgent(name="dma0"))
        agent.target(process)
        mediator.step()
        lease = agent.lease
        assert lease is not None
        checker = InvariantChecker()
        assert checker.check_kernel(kernel).ok
        # Forge the backing away: free the lease's frames behind the
        # mediator's back.
        kernel.frames.free_address(lease.lo & ~(PAGE_SIZE - 1), 1)
        report = checker.check_kernel(kernel)
        assert not report.ok
        assert any(v.rule == "dma-pin" for v in report.errors)
