"""The resilience layer, unit by unit: the undo journal, the retry
policy's backoff math, the degradation manager, fault-spec parsing,
destination validation, and — end to end through the kernel — verified
rollback: a faulted move must leave the machine fingerprint-identical
to its pre-move state.
"""

import pytest

from repro.carat import compile_carat
from repro.errors import KernelError, MoveError, RollbackError
from repro.kernel import Kernel, PAGE_SIZE
from repro.kernel.physmem import PhysicalMemory
from repro.machine.interp import Interpreter
from repro.resilience import (
    DegradationManager,
    MoveFailure,
    MoveJournal,
    RetryPolicy,
)
from repro.resilience.journal import (
    PAGE_MOVE_STEPS,
    PROTECTION_STEPS,
    STEP_REGION_PERMS,
    STEP_RELEASE_OLD,
    STEP_RESERVE,
)
from repro.sanitizer.faults import (
    FaultPoint,
    ProtocolFaultInjector,
    parse_fault_points,
    random_fault_schedule,
)
from tests.conftest import LINKED_LIST_SOURCE, machine_fingerprint


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


class TestMoveJournal:
    def test_rollback_runs_undos_newest_first(self):
        journal = MoveJournal()
        order = []
        for i in range(3):
            journal.record("step", f"undo {i}", lambda i=i: order.append(i))
        assert journal.rollback() == 3
        assert order == [2, 1, 0]
        assert journal.state == "rolled-back"
        # A second rollback is a no-op, not a re-execution.
        assert journal.rollback() == 0
        assert order == [2, 1, 0]

    def test_commit_discards_undos(self):
        journal = MoveJournal()
        fired = []
        journal.record("step", "undo", lambda: fired.append(1))
        journal.commit()
        assert journal.state == "committed"
        assert len(journal) == 0
        with pytest.raises(RollbackError):
            journal.record("step", "late", lambda: None)
        assert fired == []

    def test_log_u64_and_image_restore_bytes(self):
        memory = PhysicalMemory(2 * PAGE_SIZE)
        memory.write_u64(0x100, 0xDEAD)
        memory.write_bytes(0x200, b"original")
        journal = MoveJournal()
        journal.log_u64("patch-escapes", memory, 0x100, memory.read_u64(0x100))
        journal.log_image("copy-data", memory, 0x200, 8)
        memory.write_u64(0x100, 0xBEEF)
        memory.write_bytes(0x200, b"clobberd")
        journal.rollback()
        assert memory.read_u64(0x100) == 0xDEAD
        assert memory.read_bytes(0x200, 8) == b"original"

    def test_failing_undo_wraps_in_rollback_error(self):
        journal = MoveJournal()
        journal.record("step", "fine", lambda: None)
        def boom():
            raise KeyError("gone")
        journal.record("release-frames", "explodes", boom)
        with pytest.raises(RollbackError, match="release-frames"):
            journal.rollback()

    def test_steps_journaled_first_appearance_order(self):
        journal = MoveJournal()
        for step in ["a", "b", "a", "c", "b"]:
            journal.record(step, step, lambda: None)
        assert journal.steps_journaled() == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_exponential_then_capped(self):
        policy = RetryPolicy(
            backoff_base_cycles=1_000,
            backoff_factor=2.0,
            backoff_cap_cycles=3_000,
        )
        assert policy.backoff_cycles(1) == 1_000
        assert policy.backoff_cycles(2) == 2_000
        assert policy.backoff_cycles(3) == 3_000  # capped, not 4000
        assert policy.backoff_cycles(10) == 3_000

    def test_should_retry_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------------------------
# Degradation manager
# ---------------------------------------------------------------------------


def _failure(lo=0x1000, hi=0x3000, operation="page-move"):
    return MoveFailure(
        pid=1,
        operation=operation,
        lo=lo,
        hi=hi,
        step="copy-data",
        error="injected",
        attempts=3,
        cycles_wasted=123,
        clock_cycles=456,
    )


class TestDegradationManager:
    def test_failure_quarantines_overlapping_ranges(self):
        manager = DegradationManager()
        manager.record_failure(_failure())
        assert not manager.allows(0x1000, 0x2000)
        assert not manager.allows(0x2FFF, 0x4000)  # overlap by one byte
        assert manager.allows(0x3000, 0x4000)  # adjacent is fine
        assert manager.pinned_pages(PAGE_SIZE) == 2
        assert "1 move failure(s)" in manager.describe()

    def test_duplicate_ranges_not_requarantined(self):
        manager = DegradationManager()
        manager.record_failure(_failure())
        manager.record_failure(_failure(lo=0x1800, hi=0x2000))
        assert len(manager.failures) == 2
        assert len(manager.quarantined) == 1

    def test_cooldown_consumed_per_epoch(self):
        manager = DegradationManager(cooldown_epochs=2)
        assert not manager.in_cooldown()
        manager.record_failure(_failure())
        assert manager.in_cooldown()
        assert manager.consume_cooldown_epoch()
        assert manager.consume_cooldown_epoch()
        assert not manager.consume_cooldown_epoch()
        assert not manager.in_cooldown()

    def test_release_expired_frees_aged_quarantines(self):
        manager = DegradationManager(cooldown_epochs=2)
        manager.record_failure(_failure())
        assert manager.release_expired() == []  # age 0: still cooling
        manager.advance_epoch()
        assert manager.release_expired() == []  # age 1 < cooldown
        assert manager.oldest_quarantine_age() == 1
        manager.advance_epoch()
        assert manager.release_expired() == [(0x1000, 0x3000)]
        assert manager.allows(0x1000, 0x3000)
        assert manager.quarantined == []
        assert manager.released == [(0x1000, 0x3000)]
        assert manager.oldest_quarantine_age() == 0

    def test_release_requires_exact_range(self):
        manager = DegradationManager()
        manager.record_failure(_failure())
        assert not manager.release(0x1000, 0x2000)  # sub-range: no
        assert manager.release(0x1000, 0x3000)
        assert not manager.release(0x1000, 0x3000)  # already released

    def test_requarantine_after_release_restamps_entry_epoch(self):
        manager = DegradationManager(cooldown_epochs=1)
        manager.record_failure(_failure())
        manager.advance_epoch()
        assert manager.release_expired() == [(0x1000, 0x3000)]
        manager.record_failure(_failure())
        assert manager.quarantine_age(0x1000, 0x3000) == 0


# ---------------------------------------------------------------------------
# Fault-spec parsing and schedules
# ---------------------------------------------------------------------------


class TestFaultSpecs:
    def test_parse_simple_and_full_specs(self):
        points = parse_fault_points(
            "copy-data:crash, patch-escapes:torn:0, region-install:hang:2:persist"
        )
        assert [(p.step, p.kind, p.move_index, p.persistent) for p in points] == [
            ("copy-data", "crash", None, False),
            ("patch-escapes", "torn", 0, False),
            ("region-install", "hang", 2, True),
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPoint(step="copy-data", kind="gamma-ray")

    def test_random_spec_needs_seeded_rng(self):
        with pytest.raises(ValueError):
            parse_fault_points("random:3")

    def test_random_schedule_is_deterministic_per_seed(self):
        import random

        a = random_fault_schedule(random.Random(7), count=5)
        b = random_fault_schedule(random.Random(7), count=5)
        assert a == b
        for point in a:
            assert point.step in PAGE_MOVE_STEPS


# ---------------------------------------------------------------------------
# End to end through the kernel: faults, rollback, retry, degradation
# ---------------------------------------------------------------------------


def _loaded(**kernel_kwargs):
    binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
    kernel = Kernel(**kernel_kwargs)
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")
    interp.run_steps(1200)  # mid build loop: heap nodes and escapes exist
    return kernel, process, interp


def _victim_page(process):
    victim = process.runtime.worst_case_allocation()
    return victim.address & ~(PAGE_SIZE - 1)


class TestDestinationValidation:
    def test_patcher_rejects_unbacked_destination(self):
        kernel, process, interp = _loaded()
        patcher = process.runtime.patcher
        page = _victim_page(process)
        plan = patcher.plan_move(page, page + PAGE_SIZE)
        # Pick a page-aligned hole the frame allocator has NOT handed out.
        hole, _ = kernel.frames.free_runs(None)[-1]
        with pytest.raises(MoveError) as info:
            patcher.execute_move(plan, hole * PAGE_SIZE)
        assert info.value.step == STEP_RESERVE

    def test_kernel_rejects_misaligned_or_oob_destination(self):
        kernel, process, interp = _loaded()
        page = _victim_page(process)
        for bad in (page + 8, kernel.memory.size + PAGE_SIZE):
            with pytest.raises(MoveError):
                kernel.request_page_move(process, page, 1, destination=bad)
        # Both rejections rolled back cleanly: nothing committed.
        assert kernel.stats.moves_committed == 0
        assert kernel.stats.moves_rolled_back == 2


class TestTransactionalMoves:
    def test_one_shot_fault_retries_then_commits(self):
        kernel, process, interp = _loaded()
        injector = ProtocolFaultInjector([FaultPoint("copy-data", "crash")])
        kernel.attach_fault_injector(injector)
        snaps = interp.register_snapshots()
        plan, cost, cycles = kernel.request_page_move(
            process, _victim_page(process), register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        assert injector.fired == ["copy-data:crash@move0"]
        stats = kernel.stats
        assert stats.moves_attempted == 2
        assert stats.moves_committed == 1
        assert stats.moves_rolled_back == 1
        assert stats.move_retries == 1
        assert stats.backoff_cycles > 0
        assert cycles > cost.total  # wasted attempt + backoff folded in
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    @pytest.mark.parametrize("step", PAGE_MOVE_STEPS)
    def test_rollback_restores_exact_machine_state(self, step):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=1)
        injector = ProtocolFaultInjector(
            [FaultPoint(step, "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        before = machine_fingerprint(kernel, process)
        snaps = interp.register_snapshots()
        saved_slots = [dict(s.slots) for s in snaps]
        with pytest.raises(MoveError) as info:
            kernel.request_page_move(
                process, _victim_page(process), register_snapshots=snaps
            )
        assert info.value.step == step
        assert info.value.attempts == 1
        assert machine_fingerprint(kernel, process) == before
        # Register snapshots were restored too (the patch was undone).
        assert [dict(s.slots) for s in snaps] == saved_slots
        assert not process.runtime.is_stopped
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_short_hang_is_absorbed_and_charged(self):
        kernel, process, interp = _loaded()
        stall = kernel.retry_policy.step_timeout_cycles - 1
        injector = ProtocolFaultInjector(
            [FaultPoint("copy-data", "hang", stall_cycles=stall)]
        )
        kernel.attach_fault_injector(injector)
        _, cost, cycles = kernel.request_page_move(process, _victim_page(process))
        assert kernel.stats.moves_attempted == 1  # no retry: step completed
        assert kernel.stats.moves_committed == 1
        assert cycles >= cost.total + stall  # the wait is billed

    def test_watchdog_converts_long_hang_into_retry(self):
        kernel, process, interp = _loaded()
        injector = ProtocolFaultInjector([FaultPoint("copy-data", "hang")])
        kernel.attach_fault_injector(injector)
        kernel.request_page_move(process, _victim_page(process))
        assert kernel.stats.move_retries == 1
        assert kernel.stats.moves_committed == 1
        assert kernel.stats.moves_rolled_back == 1

    def test_exhaustion_degrades_and_pins_the_range(self):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=2)
        injector = ProtocolFaultInjector(
            [FaultPoint("region-install", "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        manager = DegradationManager()
        kernel.attach_degradation(manager)
        page = _victim_page(process)
        with pytest.raises(MoveError) as info:
            kernel.request_page_move(process, page)
        failure = info.value.failure
        assert failure.operation == "page-move"
        assert failure.step == "region-install"
        assert failure.attempts == 2
        assert manager.failures == [failure]
        assert manager.is_quarantined(page, page + PAGE_SIZE)
        assert manager.in_cooldown()
        assert kernel.stats.moves_degraded == 1
        # The pinned range is refused at admission — before any attempt.
        attempted_before = kernel.stats.moves_attempted
        with pytest.raises(MoveError) as refused:
            kernel.request_page_move(process, page)
        assert refused.value.step == "admission"
        assert kernel.stats.moves_attempted == attempted_before

    def test_quarantined_page_movable_again_after_cooldown_release(self):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=2)
        injector = ProtocolFaultInjector(
            [FaultPoint("region-install", "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        manager = DegradationManager(cooldown_epochs=2)
        kernel.attach_degradation(manager)
        page = _victim_page(process)
        with pytest.raises(MoveError):
            kernel.request_page_move(process, page)
        assert manager.is_quarantined(page, page + PAGE_SIZE)
        # The transient fault clears; the cooldown elapses; the range is
        # released and the very same move now goes through.
        injector.points.clear()
        for _ in range(manager.cooldown_epochs):
            assert manager.release_expired() == []
            manager.advance_epoch()
        assert manager.release_expired() == [(page, page + PAGE_SIZE)]
        committed_before = kernel.stats.moves_committed
        kernel.request_page_move(process, page)
        assert kernel.stats.moves_committed == committed_before + 1
        assert not manager.is_quarantined(page, page + PAGE_SIZE)

    @pytest.mark.parametrize("step", ["world-stop", "reserve-destination"])
    def test_early_fault_releases_caller_claimed_destination(self, step):
        # A fault BEFORE the reserve step's own journal entry (world
        # stop, or at reserve entry) must still free a caller-claimed
        # destination on rollback — the soak's chaos schedule found
        # these leaking as orphan frames.
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=2)
        injector = ProtocolFaultInjector(
            [FaultPoint(step, "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        hole, length = kernel.frames.free_runs(None)[-1]
        assert length >= 1
        assert kernel.frames.alloc_at(hole, 1)
        free_before = kernel.frames.free_frames
        with pytest.raises(MoveError):
            kernel.request_page_move(
                process, _victim_page(process), destination=hole * PAGE_SIZE
            )
        assert kernel.frames.frame_is_free(hole)
        assert kernel.frames.free_frames == free_before + 1

    def test_caller_claimed_destination_released_by_rollback(self):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=1)
        injector = ProtocolFaultInjector(
            [FaultPoint("kernel-metadata", "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        hole, length = kernel.frames.free_runs(None)[-1]
        assert length >= 1
        assert kernel.frames.alloc_at(hole, 1)
        free_before = kernel.frames.free_frames
        with pytest.raises(MoveError):
            kernel.request_page_move(
                process, _victim_page(process), destination=hole * PAGE_SIZE
            )
        # The transaction adopted the claim and released it on rollback.
        assert kernel.frames.frame_is_free(hole)
        assert kernel.frames.free_frames == free_before + 1

    def test_retry_reclaims_caller_destination_and_commits(self):
        kernel, process, interp = _loaded()
        injector = ProtocolFaultInjector([FaultPoint("copy-data", "crash")])
        kernel.attach_fault_injector(injector)
        hole, _ = kernel.frames.free_runs(None)[-1]
        assert kernel.frames.alloc_at(hole, 1)
        plan, _, _ = kernel.request_page_move(
            process, _victim_page(process), destination=hole * PAGE_SIZE
        )
        assert kernel.stats.moves_committed == 1
        assert plan.lo != hole * PAGE_SIZE
        region = process.regions.find(hole * PAGE_SIZE)
        assert region is not None  # the destination is live and mapped
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_allocation_move_fault_rolls_back(self):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=1)
        injector = ProtocolFaultInjector(
            [FaultPoint(STEP_RELEASE_OLD, "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        victim = process.runtime.worst_case_allocation()
        before = machine_fingerprint(kernel, process)
        with pytest.raises(MoveError) as info:
            kernel.request_allocation_move(process, victim)
        assert info.value.step == STEP_RELEASE_OLD
        assert machine_fingerprint(kernel, process) == before
        assert not process.runtime.is_stopped
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    @pytest.mark.parametrize("step", PROTECTION_STEPS[:-1])
    def test_protection_change_fault_rolls_back(self, step):
        kernel, process, interp = _loaded()
        kernel.retry_policy = RetryPolicy(max_attempts=1)
        injector = ProtocolFaultInjector(
            [FaultPoint(step, "crash", persistent=True)]
        )
        kernel.attach_fault_injector(injector)
        from repro.runtime.regions import PERM_READ

        base = process.layout.stack_base
        before = machine_fingerprint(kernel, process)
        with pytest.raises(MoveError):
            kernel.request_protection_change(process, base, PAGE_SIZE, PERM_READ)
        assert machine_fingerprint(kernel, process) == before
        assert process.regions.check(base, 8, "write")  # perms untouched

    def test_nested_world_stop_reused_not_recharged(self):
        # Regression: allocation moves and protection changes used to
        # initiate a *second* world stop even when the caller already
        # held one (and then resumed the world out from under the
        # caller).  With reuse_existing the transaction must piggyback
        # on the existing stop: no new stop charged, world still
        # stopped afterwards.
        kernel, process, interp = _loaded()
        runtime = process.runtime
        assert runtime.world_stop(1) > 0
        assert runtime.is_stopped
        stops_before = runtime.stats.world_stops

        victim = process.runtime.worst_case_allocation()
        kernel.request_allocation_move(process, victim)
        assert runtime.stats.world_stops == stops_before
        assert runtime.is_stopped  # the caller's stop was not released

        from repro.runtime.regions import PERM_READ, PERM_RWX

        base = process.layout.stack_base
        kernel.request_protection_change(process, base, PAGE_SIZE, PERM_READ)
        assert runtime.stats.world_stops == stops_before
        assert runtime.is_stopped
        kernel.request_protection_change(process, base, PAGE_SIZE, PERM_RWX)
        runtime.resume()

        # Without a caller-held stop the transaction initiates its own
        # stop and releases it on commit.
        kernel.request_allocation_move(
            process, process.runtime.worst_case_allocation()
        )
        assert runtime.stats.world_stops == stops_before + 1
        assert not runtime.is_stopped

    def test_protection_change_commit_unaffected_by_one_shot_fault(self):
        kernel, process, interp = _loaded()
        injector = ProtocolFaultInjector(
            [FaultPoint(STEP_REGION_PERMS, "crash")]
        )
        kernel.attach_fault_injector(injector)
        from repro.runtime.regions import PERM_READ, PERM_RWX

        base = process.layout.stack_base
        cycles = kernel.request_protection_change(
            process, base, PAGE_SIZE, PERM_READ
        )
        assert cycles > 0
        assert not process.regions.check(base, 8, "write")
        assert kernel.stats.move_retries == 1
        kernel.request_protection_change(process, base, PAGE_SIZE, PERM_RWX)
