"""Instruction construction rules and queries."""

import pytest

from repro.errors import IRError, IRTypeError
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
)
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    GEPInst,
    ICmpInst,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from repro.ir.types import (
    ArrayType,
    F64,
    I1,
    I8,
    I32,
    I64,
    StructType,
    VOID,
    ptr,
)


@pytest.fixture
def fn_and_builder(module):
    fn = Function(
        "f", FunctionType(I64, [ptr(I64), I64]), module, ["p", "n"]
    )
    block = fn.add_block("entry")
    return fn, IRBuilder(block)


class TestMemoryInstructions:
    def test_alloca_default_count(self):
        a = AllocaInst(I64)
        assert a.is_static
        assert a.allocation_size() == 8
        assert a.type == ptr(I64)

    def test_alloca_dynamic(self, fn_and_builder):
        fn, b = fn_and_builder
        a = b.alloca(I64, count=fn.args[1])
        assert not a.is_static
        assert a.allocation_size() is None

    def test_load_requires_pointer(self, fn_and_builder):
        fn, b = fn_and_builder
        with pytest.raises(IRTypeError):
            LoadInst(fn.args[1])
        load = b.load(fn.args[0])
        assert load.type == I64
        assert load.access_size() == 8

    def test_store_type_check(self, fn_and_builder):
        fn, b = fn_and_builder
        b.store(fn.args[1], fn.args[0])
        with pytest.raises(IRTypeError):
            StoreInst(ConstantInt(I32, 1), fn.args[0])

    def test_store_pointer_detection(self, fn_and_builder):
        fn, b = fn_and_builder
        slot = b.alloca(ptr(I64))
        store = b.store(fn.args[0], slot)
        assert store.stores_pointer()
        plain = b.store(fn.args[1], fn.args[0])
        assert not plain.stores_pointer()


class TestGEP:
    def test_simple_index(self, fn_and_builder):
        fn, b = fn_and_builder
        g = b.gep(fn.args[0], [fn.args[1]])
        assert g.type == ptr(I64)

    def test_struct_navigation(self, module):
        node = StructType([I64, ptr(I8)], name="n2")
        fn = Function("g", FunctionType(VOID, [ptr(node)]), module, ["s"])
        b = IRBuilder(fn.add_block("entry"))
        g = b.gep(fn.args[0], [b.i64(0), ConstantInt(I64, 1)])
        assert g.type == ptr(ptr(I8))

    def test_struct_index_must_be_constant(self, module):
        node = StructType([I64, I64], name="n3")
        fn = Function("h", FunctionType(VOID, [ptr(node), I64]), module)
        b = IRBuilder(fn.add_block("entry"))
        with pytest.raises(IRTypeError):
            b.gep(fn.args[0], [b.i64(0), fn.args[1]])

    def test_constant_offset(self, module):
        s = StructType([I64, I32, I32], name="n4")
        fn = Function("k", FunctionType(VOID, [ptr(s)]), module)
        b = IRBuilder(fn.add_block("entry"))
        g = b.gep(fn.args[0], [b.i64(1), ConstantInt(I64, 2)])
        # One struct (16 bytes) + offset of field 2 (12).
        assert g.constant_offset() == 16 + 12

    def test_array_gep_offset(self, module):
        arr = ArrayType(I32, 10)
        fn = Function("m", FunctionType(VOID, [ptr(arr)]), module)
        b = IRBuilder(fn.add_block("entry"))
        g = b.gep(fn.args[0], [b.i64(0), b.i64(3)])
        assert g.type == ptr(I32)
        assert g.constant_offset() == 12

    def test_dynamic_offset_is_none(self, fn_and_builder):
        fn, b = fn_and_builder
        g = b.gep(fn.args[0], [fn.args[1]])
        assert g.constant_offset() is None


class TestArithmeticAndCompare:
    def test_binary_type_mismatch(self, fn_and_builder):
        fn, b = fn_and_builder
        with pytest.raises(IRTypeError):
            BinaryInst("add", fn.args[1], ConstantInt(I32, 1))

    def test_float_op_on_int_rejected(self, fn_and_builder):
        fn, b = fn_and_builder
        with pytest.raises(IRTypeError):
            BinaryInst("fadd", fn.args[1], fn.args[1])

    def test_unknown_opcode(self, fn_and_builder):
        fn, b = fn_and_builder
        with pytest.raises(IRTypeError):
            BinaryInst("bogus", fn.args[1], fn.args[1])

    def test_commutativity_flag(self, fn_and_builder):
        fn, b = fn_and_builder
        assert b.add(fn.args[1], b.i64(1)).is_commutative
        assert not b.sub(fn.args[1], b.i64(1)).is_commutative

    def test_icmp_result_is_i1(self, fn_and_builder):
        fn, b = fn_and_builder
        c = b.icmp("slt", fn.args[1], b.i64(10))
        assert c.type == I1

    def test_icmp_bad_predicate(self, fn_and_builder):
        fn, b = fn_and_builder
        with pytest.raises(IRTypeError):
            ICmpInst("lt", fn.args[1], b.i64(1))

    def test_icmp_on_pointers(self, fn_and_builder):
        fn, b = fn_and_builder
        c = b.icmp("eq", fn.args[0], fn.args[0])
        assert c.type == I1


class TestCasts:
    def test_valid_casts(self, fn_and_builder):
        fn, b = fn_and_builder
        n = fn.args[1]
        assert b.trunc(n, I32).type == I32
        assert b.sext(b.trunc(n, I32), I64).type == I64
        assert b.ptrtoint(fn.args[0]).type == I64
        assert b.inttoptr(n, ptr(I8)).type == ptr(I8)
        assert b.sitofp(n).type == F64
        assert b.bitcast(fn.args[0], ptr(I8)).type == ptr(I8)

    def test_invalid_casts(self, fn_and_builder):
        fn, b = fn_and_builder
        n = fn.args[1]
        with pytest.raises(IRTypeError):
            CastInst("trunc", n, I64)  # same width
        with pytest.raises(IRTypeError):
            CastInst("zext", n, I32)  # narrowing
        with pytest.raises(IRTypeError):
            CastInst("bitcast", n, ptr(I8))  # int -> ptr must be inttoptr


class TestControlFlow:
    def test_unconditional_branch(self, module):
        fn = Function("br1", FunctionType(VOID, []), module)
        a = fn.add_block("a")
        c = fn.add_block("c")
        br = IRBuilder(a).br(c)
        assert not br.is_conditional
        assert br.targets == (c,)
        assert a.successors() == [c]
        assert c.predecessors() == [a]

    def test_conditional_branch_requires_i1(self, module):
        fn = Function("br2", FunctionType(VOID, [I64]), module)
        a = fn.add_block("a")
        t = fn.add_block("t")
        e = fn.add_block("e")
        with pytest.raises(IRTypeError):
            BranchInst(t, fn.args[0], e)

    def test_phi_incoming(self, module):
        fn = Function("ph", FunctionType(VOID, []), module)
        a = fn.add_block("a")
        c = fn.add_block("c")
        phi = PhiInst(I64)
        phi.add_incoming(ConstantInt(I64, 1), a)
        phi.add_incoming(ConstantInt(I64, 2), c)
        assert phi.incoming_for_block(a).value == 1  # type: ignore[attr-defined]
        phi.remove_incoming(a)
        assert len(phi.incoming) == 1
        with pytest.raises(IRError):
            phi.incoming_for_block(a)

    def test_phi_type_check(self, module):
        fn = Function("ph2", FunctionType(VOID, []), module)
        a = fn.add_block("a")
        phi = PhiInst(I64)
        with pytest.raises(IRTypeError):
            phi.add_incoming(ConstantInt(I32, 1), a)

    def test_select(self, fn_and_builder):
        fn, b = fn_and_builder
        c = b.icmp("slt", fn.args[1], b.i64(0))
        s = b.select(c, b.i64(1), b.i64(2))
        assert s.type == I64
        with pytest.raises(IRTypeError):
            SelectInst(fn.args[1], b.i64(1), b.i64(2))


class TestCalls:
    def test_call_arity_and_types(self, module):
        callee = Function("callee", FunctionType(I64, [I64]), module)
        caller = Function("caller", FunctionType(VOID, [I64]), module)
        b = IRBuilder(caller.add_block("entry"))
        call = b.call(callee, [caller.args[0]])
        assert call.type == I64
        assert call.callee_name == "callee"
        with pytest.raises(IRTypeError):
            CallInst(callee, [])
        with pytest.raises(IRTypeError):
            CallInst(callee, [ConstantInt(I32, 1)])

    def test_vararg_call(self, module):
        v = Function("v", FunctionType(VOID, [], vararg=True), module)
        caller = Function("c2", FunctionType(VOID, [I64]), module)
        b = IRBuilder(caller.add_block("entry"))
        b.call(v, [])
        b.call(v, [caller.args[0], caller.args[0]])

    def test_intrinsic_detection(self, module):
        g = Function("carat.guard.load", FunctionType(VOID, [], vararg=True), module)
        caller = Function("c3", FunctionType(VOID, [I64]), module)
        b = IRBuilder(caller.add_block("entry"))
        call = b.call(g, [caller.args[0]])
        assert call.is_intrinsic()
        assert call.is_readonly_call()
