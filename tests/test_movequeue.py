"""The asynchronous move queue (incremental, bounded-pause moves).

Four pillars:

* **mechanics** — admission re-checked at service time, refused or stale
  requests release their claimed destination frames, overlapping
  requests never share a batch, and a range another batch already moved
  drops instead of double-freeing its source frames;
* **bounded pauses** — with a chunk budget set, no policy-move pause
  comes near the serial stop-the-world pause for the same workload,
  while the queue still services moves (chunks, flips, commits);
* **engine parity** — reference and fast engines are fingerprint-
  identical with async + chunked moves on (the CARAT semantic-
  invisibility claim, extended to the overlapped protocol);
* **accounting** — per tenant, the pause log and the move-cycle ledger
  are the same book: ``sum(kernel.pause_log[pid]) ==
  kernel.tenant_stats[pid].move_cycles``, both engines, with and
  without the queue, single- and multi-tenant.
"""

import pytest

from repro.carat import compile_carat
from repro.kernel import Kernel, PAGE_SIZE
from tests.support import run_carat
from repro.machine.interp import Interpreter
from repro.machine.session import RunConfig
from repro.multiproc import FairnessArbiter, Scheduler, TenantSpec
from repro.policy import (
    CompactionDaemon,
    HeatTracker,
    PolicyEngine,
    TieringBalancer,
    scatter_capsule,
)
from repro.resilience import DegradationManager, MoveQueue, MoveRequest
from repro.workloads import get_workload
from tests.conftest import LINKED_LIST_SOURCE, machine_fingerprint

MB = 1024 * 1024
ENGINES = ["reference", "fast"]

COUNTER_SOURCE = """
long counter;
void main() {
  long i;
  for (i = 1; i <= 50; i++) { counter = counter + i; }
  print_long(counter);
}
"""


def _loaded(**kernel_kwargs):
    binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
    kernel = Kernel(**kernel_kwargs)
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")
    interp.run_steps(1200)  # mid build loop: heap nodes and escapes exist
    return kernel, process, interp


def _victim_page(process):
    victim = process.runtime.worst_case_allocation()
    return victim.address & ~(PAGE_SIZE - 1)


def _claim_hole(kernel, pages=1, offset=0):
    """Claim ``pages`` frames from the tail free run, like the policy
    daemons do before enqueueing."""
    hole, length = kernel.frames.free_runs(None)[-1]
    frame = hole + offset
    assert length > offset
    assert kernel.frames.alloc_at(frame, pages)
    return frame


def _request(process, interp, destination_frame, lo=None):
    lo = _victim_page(process) if lo is None else lo
    return MoveRequest(
        process=process,
        lo=lo,
        page_count=1,
        destination=destination_frame * PAGE_SIZE,
        interpreter=interp,
    )


def _policy_run(
    engine="reference",
    batch_size=None,
    chunk_budget=0,
    clear_scatter_pauses=True,
):
    """The aggressive policy config from the differential suite (small
    epochs, scatter, tiering on a tiered machine).  By default the
    pause log is cleared after scatter, so it holds only moves performed
    while the program runs (scatter's synchronous setup moves happen
    before there is a program to pause); the accounting tests keep the
    full log instead, since the move-cycle ledger spans the whole run."""
    workload = get_workload("canneal", "tiny")
    kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
    if batch_size is not None:
        kernel.attach_move_queue(
            MoveQueue(kernel, batch_size=batch_size, chunk_budget=chunk_budget)
        )

    def setup(interpreter):
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        if clear_scatter_pauses:
            kernel.pause_log.clear()
        heat = HeatTracker()
        engine_ = PolicyEngine(
            kernel,
            process,
            epoch_cycles=5_000,
            budget_cycles=500_000,
            heat=heat,
            compaction=CompactionDaemon(
                kernel, process, target_fragmentation=0.05
            ),
            tiering=TieringBalancer(
                kernel, process, heat, max_allocation_pages=40
            ),
        )
        engine_.attach(interpreter)

    result = run_carat(
        workload.source,
        kernel=kernel,
        name=workload.name,
        heap_size=512 * 1024,
        stack_size=128 * 1024,
        setup=setup,
        sanitize=True,
        engine=engine,
    )
    return kernel, result


# ---------------------------------------------------------------------------
# Queue mechanics
# ---------------------------------------------------------------------------


class TestQueueMechanics:
    def test_parameters_validated(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            MoveQueue(kernel, batch_size=0)
        with pytest.raises(ValueError):
            MoveQueue(kernel, chunk_budget=-1)

    def test_refused_enqueue_frees_claimed_destination(self):
        kernel, process, interp = _loaded()
        queue = MoveQueue(kernel)
        manager = DegradationManager()
        kernel.attach_degradation(manager)
        page = _victim_page(process)
        from tests.test_resilience_transaction import _failure

        manager.record_failure(_failure(lo=page, hi=page + PAGE_SIZE))
        frame = _claim_hole(kernel)
        assert not queue.enqueue(_request(process, interp, frame))
        assert queue.stats.refused == 1
        assert kernel.frames.frame_is_free(frame)  # claim returned
        assert queue.idle

    def test_overlaps_pending_and_destination_ranges(self):
        kernel, process, interp = _loaded()
        queue = MoveQueue(kernel)
        frame = _claim_hole(kernel)
        request = _request(process, interp, frame)
        assert queue.enqueue(request)
        assert queue.overlaps_pending(
            process.pid, request.lo, request.lo + PAGE_SIZE
        )
        assert not queue.overlaps_pending(
            process.pid, request.lo + 16 * PAGE_SIZE,
            request.lo + 17 * PAGE_SIZE,
        )
        assert not queue.overlaps_pending(
            process.pid + 1, request.lo, request.lo + PAGE_SIZE
        )
        assert queue.destination_ranges() == [
            (frame * PAGE_SIZE, (frame + 1) * PAGE_SIZE)
        ]

    @pytest.mark.parametrize("batch_size", [1, 4])
    def test_duplicate_range_drops_stale_not_double_free(self, batch_size):
        """Two queued requests for the same source range: the first
        services, the second must drop as stale (its range was emptied
        by the first flip) and release its destination — not install a
        region over dead bytes and double-free the source frames."""
        kernel, process, interp = _loaded()
        queue = MoveQueue(kernel, batch_size=batch_size, chunk_budget=200)
        kernel.attach_move_queue(queue)
        f1 = _claim_hole(kernel, offset=0)
        f2 = _claim_hole(kernel, offset=1)
        assert queue.enqueue(_request(process, interp, f1))
        assert queue.enqueue(_request(process, interp, f2))
        queue.drain_all()
        assert queue.stats.serviced == 1
        assert queue.stats.stale_drops == 1
        assert queue.stats.chunks > 0 and queue.stats.flips == 1
        assert not kernel.frames.frame_is_free(f1)  # the move landed
        assert kernel.frames.frame_is_free(f2)  # the stale claim returned
        assert queue.idle
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_serviced_move_is_committed_and_audited(self):
        kernel, process, interp = _loaded()
        queue = MoveQueue(kernel, batch_size=2, chunk_budget=150)
        kernel.attach_move_queue(queue)
        frame = _claim_hole(kernel)
        request = _request(process, interp, frame)
        assert queue.enqueue(request)
        queue.drain_all()
        assert queue.idle
        assert kernel.stats.moves_committed == 1
        assert kernel.stats.carat_moves == 1
        # The destination is live and region-backed; the source range
        # no longer holds the victim allocation.
        assert process.regions.find(frame * PAGE_SIZE) is not None
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]


# ---------------------------------------------------------------------------
# Bounded pauses
# ---------------------------------------------------------------------------


class TestBoundedPause:
    def test_chunked_pauses_stay_far_below_serial(self):
        serial_kernel, serial = _policy_run("reference")
        async_kernel, chunked = _policy_run(
            "reference", batch_size=4, chunk_budget=400
        )
        assert chunked.output == serial.output
        assert chunked.exit_code == serial.exit_code == 0
        serial_pauses = serial_kernel.pause_log[serial.process.pid]
        chunked_pauses = async_kernel.pause_log[chunked.process.pid]
        assert serial_pauses and chunked_pauses
        # The whole point: the longest pause under chunking is a small
        # fraction of the serial stop-the-world pause.
        assert max(chunked_pauses) * 4 < max(serial_pauses)
        stats = async_kernel.move_queue.stats
        assert stats.chunks > 0
        assert stats.flips > 0
        assert stats.serviced > 0
        assert async_kernel.move_queue.idle  # drained before the run ended

    def test_zero_chunk_budget_means_unchunked_batches(self):
        kernel, result = _policy_run(
            "reference", batch_size=4, chunk_budget=0
        )
        assert result.exit_code == 0
        stats = kernel.move_queue.stats
        assert stats.serviced > 0
        # Unbounded budget: each item pre-copies in one chunk.
        assert stats.chunks <= stats.serviced + stats.stale_drops + \
            stats.retries * 4


# ---------------------------------------------------------------------------
# Engine parity
# ---------------------------------------------------------------------------


class TestEngineParity:
    def test_fingerprint_identical_with_async_chunked_moves(self):
        reference_kernel, reference = _policy_run(
            "reference", batch_size=4, chunk_budget=400
        )
        fast_kernel, fast = _policy_run(
            "fast", batch_size=4, chunk_budget=400
        )
        assert reference.output == fast.output
        assert reference.instructions == fast.instructions
        assert machine_fingerprint(
            reference_kernel, reference.process
        ) == machine_fingerprint(fast_kernel, fast.process)
        assert reference_kernel.move_queue.stats.serviced > 0
        assert (
            fast_kernel.move_queue.stats.serviced
            == reference_kernel.move_queue.stats.serviced
        )


# ---------------------------------------------------------------------------
# The pause-accounting invariant
# ---------------------------------------------------------------------------


def _assert_pause_ledger_matches(kernel):
    assert kernel.pause_log  # the run actually paused
    for pid, pauses in kernel.pause_log.items():
        stats = kernel.tenant_stats.get(pid)
        assert stats is not None
        assert sum(pauses) == stats.move_cycles
    assert (
        sum(sum(p) for p in kernel.pause_log.values())
        == kernel.stats.move_cycles - sum(
            s.move_cycles
            for pid, s in kernel.tenant_stats.items()
            if pid not in kernel.pause_log
        )
    )


class TestPauseAccounting:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("use_queue", [False, True])
    def test_single_tenant_pause_log_equals_move_cycles(
        self, engine, use_queue
    ):
        """Every cycle a change request held (or chunked past) the world
        is charged to ``move_cycles`` *and* logged as a pause — the two
        ledgers must agree exactly, serial or async."""
        kernel, result = _policy_run(
            engine,
            batch_size=4 if use_queue else None,
            chunk_budget=400,
            clear_scatter_pauses=False,
        )
        assert result.exit_code == 0
        _assert_pause_ledger_matches(kernel)
        if use_queue:
            assert kernel.move_queue.stats.serviced > 0

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("use_queue", [False, True])
    def test_multi_tenant_pause_log_equals_move_cycles(
        self, engine, use_queue
    ):
        """The same invariant per tenant on a scheduled machine, where
        pauses come from CoW breaks attributed through the tenant
        context."""
        config = RunConfig(
            engine=engine,
            sanitize=True,
            quantum=123,
            heap_size=64 * 1024,
            stack_size=16 * 1024,
            async_moves=use_queue,
            move_batch=2,
            chunk_budget=150,
        )
        arbiter = FairnessArbiter(epoch_cycles=500, budget_cycles=4000)
        scheduler = Scheduler(
            config,
            [
                TenantSpec(COUNTER_SOURCE, weight=1),
                TenantSpec(COUNTER_SOURCE, weight=3),
            ],
            share=True,
            arbiter=arbiter,
        )
        result = scheduler.run()
        assert all(r.exit_code == 0 for r in result.tenants.values())
        kernel = scheduler.kernel
        assert (kernel.move_queue is not None) == use_queue
        _assert_pause_ledger_matches(kernel)
