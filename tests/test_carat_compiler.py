"""The CARAT compiler: guard injection, the three optimizations,
tracking injection, restrictions, signing, and the pipeline."""

import pytest

from repro.carat import (
    CompileOptions,
    compile_baseline,
    compile_carat,
    find_violations,
    inject_guards,
    inject_tracking,
    is_guard_call,
    is_tracking_call,
    max_stack_footprint,
    optimize_guards,
    sign_module,
    verify_signature,
)
from repro.carat.guards import GuardTable, iter_guards
from repro.carat.intrinsics import (
    CALL_OVERHEAD_BYTES,
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
    TRACK_ALLOC,
    TRACK_ESCAPE,
    TRACK_FREE,
)
from repro.errors import RestrictionError, SigningError
from repro.frontend import compile_source
from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    verify_module,
)
from repro.ir.instructions import CallInst
from repro.ir.types import I64, VOID, ptr
from tests.conftest import LINKED_LIST_SOURCE, SUM_SOURCE, build_count_loop


def guard_calls(module, name=None):
    out = []
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if is_guard_call(inst):
                if name is None or inst.callee_name == name:
                    out.append(inst)
    return out


class TestGuardInjection:
    def test_every_access_guarded(self, module):
        fn, parts = build_count_loop(module)
        table = inject_guards(module)
        verify_module(module)
        # One load in the loop -> one load guard; no stores or calls.
        assert table.total == 1
        assert len(guard_calls(module, GUARD_LOAD)) == 1

    def test_guard_precedes_access(self, module):
        fn, parts = build_count_loop(module)
        inject_guards(module)
        body = parts["body"]
        opcodes = [i.opcode for i in body.instructions]
        load_index = next(
            i for i, inst in enumerate(body.instructions) if inst.opcode == "load"
        )
        guard = body.instructions[load_index - 1]
        assert is_guard_call(guard)
        assert guard.args[0] is parts["p"]

    def test_call_guard_frame_size(self, module):
        callee = Function("callee", FunctionType(VOID, []), module)
        cb = IRBuilder(callee.add_block("entry"))
        cb.alloca(I64)  # 8 bytes
        cb.ret()
        caller = Function("caller", FunctionType(VOID, []), module)
        b = IRBuilder(caller.add_block("entry"))
        b.call(callee, [])
        b.ret()
        assert max_stack_footprint(callee) == CALL_OVERHEAD_BYTES + 8
        inject_guards(module)
        guards = guard_calls(module, GUARD_CALL)
        # One for the call in caller and one inside callee? callee makes no
        # calls; only the caller's call is guarded.
        assert len(guards) == 1
        assert guards[0].args[0].value == CALL_OVERHEAD_BYTES + 8

    def test_store_guard(self):
        module = compile_source(
            "void main() { long *p = (long*)malloc(8); *p = 1; free((char*)p); }"
        )
        table = inject_guards(module)
        kinds = sorted(r.kind for r in table.records.values())
        assert "store" in kinds
        assert "call" in kinds

    def test_intrinsics_not_guarded(self):
        module = compile_source(SUM_SOURCE)
        inject_tracking(module)
        table = inject_guards(module)
        for record in table.records.values():
            assert record.kind in ("load", "store", "call")
        # No guard may target a carat.* call.
        for fn in module.defined_functions():
            insts = list(fn.instructions())
            for i, inst in enumerate(insts):
                if is_guard_call(inst) and inst.callee_name == GUARD_CALL:
                    target = insts[i + 1]
                    assert isinstance(target, CallInst)
                    assert not (target.callee_name or "").startswith("carat.")


class TestGuardOptimizations:
    def _compiled(self, source, carat_opts=True):
        module = compile_source(source)
        from repro.transform.pass_manager import optimize_module

        optimize_module(module)
        table = inject_guards(module)
        total = table.total
        if carat_opts:
            stats = optimize_guards(module, table)
        else:
            from repro.carat.guard_opt import GuardOptStats

            stats = GuardOptStats(total=total, untouched=total)
        verify_module(module)
        return module, table, stats

    def test_opt2_merges_affine_loop_guard(self):
        src = """
        void main() {
          long *a = (long*)malloc(8 * 100);
          long i;
          for (i = 0; i < 100; i++) { a[i] = i; }
          free((char*)a);
        }
        """
        module, table, stats = self._compiled(src)
        assert stats.merged >= 1
        assert len(guard_calls(module, GUARD_RANGE)) >= 1
        # The in-loop store guard is gone.
        assert len(guard_calls(module, GUARD_STORE)) == 0

    def test_opt1_hoists_invariant_guard(self):
        src = """
        long g;
        void main() {
          long i;
          for (i = 0; i < 50; i++) { g = g + i; }
          print_long(g);
        }
        """
        module, table, stats = self._compiled(src)
        # @g is stored in the loop, so LICM cannot touch the load — but
        # the guard *addresses* are loop-invariant, so both the load and
        # store guards hoist to the preheader.
        assert stats.hoisted >= 1

    def test_opt3_removes_redundant_same_address(self):
        src = """
        void main() {
          long *p = (long*)malloc(8);
          *p = 1;
          *p = 2;
          *p = 3;
          free((char*)p);
        }
        """
        module, table, stats = self._compiled(src)
        assert stats.eliminated >= 2  # later identical store guards

    def test_opt3_call_guard_coverage(self):
        src = """
        long f(long x) { return x + 1; }
        void main() {
          long a = f(1);
          long b = f(a);
          print_long(a + b);
        }
        """
        module, table, stats = self._compiled(src)
        # Second (and later) call guards with frames <= the first are gone.
        call_guards = guard_calls(module, GUARD_CALL)
        by_fn = {}
        for g in call_guards:
            by_fn.setdefault(g.function.name, []).append(g)
        assert len(by_fn.get("main", [])) <= 2

    def test_fates_partition_total(self):
        module, table, stats = self._compiled(LINKED_LIST_SOURCE)
        assert (
            stats.untouched + stats.hoisted + stats.merged + stats.eliminated
            == stats.total
        )
        assert stats.remaining == stats.total - stats.eliminated
        row = stats.as_table1_row()
        assert abs(
            row["untouched"] + row["opt1_hoist"] + row["opt2_scev"]
            + row["opt3_redundancy"] - 1.0
        ) < 1e-9

    def test_without_carat_opts_all_untouched(self):
        module, table, stats = self._compiled(SUM_SOURCE, carat_opts=False)
        assert stats.untouched == stats.total


class TestTracking:
    def test_malloc_and_free_instrumented(self):
        module = compile_source(SUM_SOURCE)
        stats = inject_tracking(module)
        assert stats.alloc_callbacks == 1
        assert stats.free_callbacks == 1
        verify_module(module)

    def test_alloc_callback_follows_malloc(self):
        module = compile_source(
            "void main() { long *p = (long*)malloc(24); free((char*)p); }"
        )
        inject_tracking(module)
        main = module.get_function("main")
        insts = list(main.instructions())
        malloc_index = next(
            i for i, inst in enumerate(insts)
            if isinstance(inst, CallInst) and inst.callee_name == "malloc"
        )
        after = insts[malloc_index + 1]
        assert is_tracking_call(after)
        assert after.callee_name == TRACK_ALLOC
        assert after.args[0] is insts[malloc_index]

    def test_pointer_stores_get_escape_callbacks(self):
        module = compile_source(LINKED_LIST_SOURCE)
        stats = inject_tracking(module)
        # node->next = head, head = node, p = head, p = p->next ... at
        # least 3 distinct pointer stores before mem2reg.
        assert stats.escape_callbacks >= 3
        verify_module(module)

    def test_non_pointer_stores_not_escapes(self):
        module = compile_source(
            "void main() { long x; x = 5; print_long(x); }"
        )
        stats = inject_tracking(module)
        assert stats.escape_callbacks == 0

    def test_calloc_size_computed(self):
        module = compile_source(
            """
            void main() {
              long *p = (long*)calloc(10, 8);
              free((char*)p);
            }
            """
        )
        stats = inject_tracking(module)
        assert stats.alloc_callbacks == 1
        verify_module(module)


class TestRestrictionsIR:
    def test_clean_module(self):
        module = compile_source(SUM_SOURCE)
        assert find_violations(module) == []

    def test_constant_inttoptr_flagged(self, module):
        fn = Function("bad", FunctionType(VOID, []), module)
        b = IRBuilder(fn.add_block("entry"))
        p = b.inttoptr(b.i64(0xDEAD), ptr(I64))
        b.load(p)
        b.ret()
        violations = find_violations(module)
        assert any("fabricated" in v for v in violations)

    def test_pipeline_rejects_violation(self, module):
        fn = Function("main", FunctionType(VOID, []), module)
        b = IRBuilder(fn.add_block("entry"))
        p = b.inttoptr(b.i64(0x1000), ptr(I64))
        b.load(p)
        b.ret()
        with pytest.raises(RestrictionError):
            compile_carat(module)


class TestSigning:
    def test_sign_and_verify(self):
        module = compile_source(SUM_SOURCE)
        sig = sign_module(module, {"k": "v"})
        assert verify_signature(module, sig, {"k": "v"})

    def test_tampered_module_fails(self):
        module = compile_source(SUM_SOURCE)
        sig = sign_module(module)
        # Tamper: add a global after signing.
        from repro.ir import GlobalVariable, ConstantInt

        module.add_global(GlobalVariable("evil", I64, ConstantInt(I64, 666)))
        assert not verify_signature(module, sig)

    def test_tampered_metadata_fails(self):
        module = compile_source(SUM_SOURCE)
        sig = sign_module(module, {"guards": 10})
        assert not verify_signature(module, sig, {"guards": 0})

    def test_untrusted_toolchain_rejected(self):
        module = compile_source(SUM_SOURCE)
        sig = sign_module(module)
        assert not verify_signature(
            module, sig, trusted_toolchains={"someone-else"}
        )

    def test_unknown_toolchain_raises(self):
        from repro.carat.signing import Signature

        module = compile_source(SUM_SOURCE)
        with pytest.raises(SigningError):
            verify_signature(module, Signature("ghost-toolchain", "00"))

    def test_signature_json_roundtrip(self):
        from repro.carat.signing import Signature

        sig = Signature("tc", "abcd")
        assert Signature.from_json(sig.to_json()) == sig


class TestPipeline:
    def test_full_compile(self):
        binary = compile_carat(SUM_SOURCE, module_name="sum")
        assert binary.is_signed
        assert binary.guard_stats.total > 0
        assert binary.tracking_stats.total > 0
        verify_module(binary.module)

    def test_baseline_has_no_instrumentation(self):
        binary = compile_baseline(SUM_SOURCE)
        assert binary.guard_table.total == 0
        assert binary.tracking_stats.total == 0
        for fn in binary.module.defined_functions():
            for inst in fn.instructions():
                assert not is_guard_call(inst)
                assert not is_tracking_call(inst)

    def test_options_control_stages(self):
        binary = compile_carat(
            SUM_SOURCE,
            CompileOptions(guards=True, carat_guard_opts=False, tracking=False),
        )
        assert binary.guard_stats.untouched == binary.guard_stats.total
        assert binary.tracking_stats.total == 0

    def test_metadata_reflects_stats(self):
        binary = compile_carat(SUM_SOURCE)
        assert binary.metadata["guards_total"] == binary.guard_table.total
        assert binary.metadata["module"] == binary.module.name
