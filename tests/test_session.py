"""Tests for the session API: RunConfig round-trips, CaratSession, the
removed ``run_*`` tombstones, and the ``tests.support`` veneers."""

import argparse

import pytest

from repro.machine.executor import (
    run_carat,
    run_carat_baseline,
    run_traditional,
)
from repro.machine.session import CaratSession, RunConfig
from tests import support

from .conftest import LINKED_LIST_SOURCE, SUM_SOURCE


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------


class TestRunConfig:
    def test_dict_roundtrip_is_lossless(self):
        config = RunConfig(
            mode="traditional",
            engine="fast",
            max_steps=123,
            name="roundtrip",
            sanitize=True,
            inject_faults="copy-data:crash",
            max_retries=5,
            trace=True,
            trace_detail="fine",
            profile=True,
            trace_out="/tmp/t",
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunConfig fields"):
            RunConfig.from_dict({"mode": "carat", "warp_speed": True})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mode", "paging"),
            ("guard_mechanism", "segfault"),
            ("engine", "turbo"),
            ("trace_detail", "verbose"),
        ],
    )
    def test_validation_rejects_unknown_choices(self, field, value):
        with pytest.raises(ValueError):
            RunConfig(**{field: value})

    def test_from_args_maps_cli_namespace(self):
        # The exact shape `repro run` produces, including the --guard
        # alias for the guard_mechanism field.
        args = argparse.Namespace(
            mode="carat",
            guard="if_tree",
            engine="fast",
            max_steps=99,
            sanitize=True,
            inject_faults=None,
            fault_seed=7,
            max_retries=2,
            trace=True,
            trace_detail="normal",
            trace_out=None,
            profile=False,
            stats=True,  # ignored: not a config field
        )
        config = RunConfig.from_args(args, name="prog")
        assert config.guard_mechanism == "if_tree"
        assert config.engine == "fast"
        assert config.max_steps == 99
        assert config.max_retries == 2
        assert config.fault_seed == 7
        assert config.trace and not config.profile
        assert config.name == "prog"

    def test_from_args_overrides_win(self):
        args = argparse.Namespace(mode="both", engine="reference")
        config = RunConfig.from_args(args, mode="traditional")
        assert config.mode == "traditional"

    def test_replace_returns_new_frozen_config(self):
        config = RunConfig()
        other = config.replace(engine="fast")
        assert other.engine == "fast" and config.engine == "reference"
        with pytest.raises(Exception):
            config.engine = "fast"

    def test_derived_properties(self):
        assert not RunConfig().faulting
        assert RunConfig(max_retries=1).faulting
        assert RunConfig(inject_faults="random:1").faulting
        assert not RunConfig().tracing
        assert RunConfig(trace=True).tracing
        assert RunConfig(trace_out="x").tracing  # trace_out implies trace


#: Minimal argv per subcommand, plus the overrides its handler applies
#: before calling ``from_args`` (mirroring ``repro.cli._cmd_*``).
SUBCOMMAND_ARGV = {
    "run": (["run", "prog.c"], {"name": "prog"}),
    "bench": (["bench", "hpccg"], {"mode": "baseline", "name": "hpccg"}),
    "policy": (["policy", "hpccg"], {"mode": "carat", "name": "hpccg"}),
    "smp": (["smp", "hpccg"], {"mode": "carat", "name": "hpccg"}),
    "soak": (["soak"], {"mode": "carat", "name": "kvservice"}),
    "sanitize": (["sanitize"], {"mode": "carat"}),
    "trace": (["trace", "hpccg"], {"name": "hpccg", "trace": True}),
    "profile": (["profile", "hpccg"], {"name": "hpccg", "profile": True}),
}


class TestFromArgsAliasAudit:
    """Every subcommand's namespace must map onto RunConfig without
    drift: each namespace attribute naming a field (directly or via
    ``_ARG_ALIASES``) lands verbatim, and the result survives a
    ``to_dict``/``from_dict`` round trip losslessly."""

    @pytest.mark.parametrize("command", sorted(SUBCOMMAND_ARGV))
    def test_namespace_roundtrip_is_lossless(self, command):
        import dataclasses

        from repro.cli import _build_parser

        argv, overrides = SUBCOMMAND_ARGV[command]
        args = _build_parser().parse_args(argv)
        config = RunConfig.from_args(args, **overrides)
        assert RunConfig.from_dict(config.to_dict()) == config

        fields = {f.name for f in dataclasses.fields(RunConfig)}
        for attr, value in vars(args).items():
            field = RunConfig._ARG_ALIASES.get(attr, attr)
            if field not in fields or field in overrides:
                continue
            assert getattr(config, field) == value, (
                f"{command}: namespace attr {attr!r} drifted from "
                f"config field {field!r}"
            )

    def test_every_alias_names_a_real_field(self):
        import dataclasses

        fields = {f.name for f in dataclasses.fields(RunConfig)}
        for attr, field in RunConfig._ARG_ALIASES.items():
            assert field in fields, f"alias {attr!r} -> unknown {field!r}"
            assert attr not in fields, (
                f"alias {attr!r} shadows a field of the same name"
            )


# ---------------------------------------------------------------------------
# Session behavior
# ---------------------------------------------------------------------------


class TestCaratSession:
    def test_runs_all_three_modes(self):
        outputs = {}
        for mode in ("carat", "baseline", "traditional"):
            result = CaratSession(RunConfig(mode=mode)).run(SUM_SOURCE)
            assert result.exit_code == 0
            outputs[mode] = result.output
        assert outputs["carat"] == outputs["baseline"] == outputs["traditional"]

    def test_result_carries_config(self):
        config = RunConfig(engine="fast")
        result = CaratSession(config).run(SUM_SOURCE)
        assert result.config is config
        assert result.tracer is None and result.profile is None

    def test_session_is_reusable(self):
        session = CaratSession(RunConfig())
        first = session.run(SUM_SOURCE)
        second = session.run(SUM_SOURCE)
        assert first.fingerprint() == second.fingerprint()

    def test_faulting_config_wires_resilience(self):
        config = RunConfig(
            inject_faults="copy-data:crash", max_retries=2, fault_seed=9
        )
        result = CaratSession(config).run(SUM_SOURCE)
        kernel = result.kernel
        assert kernel.fault_injector is not None
        assert kernel.degradation is not None
        assert kernel.retry_policy.max_attempts == 2

    def test_sanitize_flag_attaches_sanitizer(self):
        result = CaratSession(RunConfig(sanitize=True)).run(SUM_SOURCE)
        assert result.sanitizer is not None
        assert result.sanitizer.ok
        assert result.sanitizer.checks_run > 0


# ---------------------------------------------------------------------------
# Removed legacy shims: the raise contract + the tests.support veneers
# ---------------------------------------------------------------------------


TOMBSTONES = {
    "carat": run_carat,
    "baseline": run_carat_baseline,
    "traditional": run_traditional,
}

SUPPORT = {
    "carat": support.run_carat,
    "baseline": support.run_carat_baseline,
    "traditional": support.run_traditional,
}


class TestRemovedShims:
    @pytest.mark.parametrize("mode", sorted(TOMBSTONES))
    def test_calling_removed_shim_raises_with_pointer(self, mode):
        with pytest.raises(RuntimeError, match="CaratSession"):
            TOMBSTONES[mode](SUM_SOURCE)
        with pytest.raises(RuntimeError, match=f"mode={mode!r}"):
            TOMBSTONES[mode]()

    @pytest.mark.parametrize("mode", sorted(SUPPORT))
    def test_support_veneer_matches_session_fingerprint(self, mode):
        veneer_result = SUPPORT[mode](LINKED_LIST_SOURCE)
        session_result = CaratSession(RunConfig(mode=mode)).run(
            LINKED_LIST_SOURCE
        )
        assert veneer_result.fingerprint() == session_result.fingerprint()

    def test_support_engine_kwarg_respected(self):
        result = support.run_carat(SUM_SOURCE, engine="fast")
        assert result.stats.compiled_blocks > 0

    def test_support_baseline_routes_caller_sanitizer(self):
        from repro.sanitizer import Sanitizer

        sanitizer = Sanitizer(raise_on_violation=False)
        result = support.run_carat_baseline(SUM_SOURCE, sanitizer=sanitizer)
        assert result.sanitizer is sanitizer
        assert sanitizer.checks_run > 0
        assert sanitizer.ok

    def test_support_carat_setup_hook_fires(self):
        seen = {}
        support.run_carat(
            SUM_SOURCE,
            setup=lambda interp: seen.setdefault("interp", interp),
        )
        assert "interp" in seen
