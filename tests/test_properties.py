"""Cross-cutting property tests.

* differential execution: randomly generated Mini-C arithmetic must
  compute exactly what a reference Python evaluator (with 64-bit wrap
  semantics) computes — this exercises lexer, parser, sema, lowering,
  every generic optimization, and the interpreter in one shot;
* CARAT transparency: for random list/array programs, the instrumented
  binary must produce the baseline's output with zero guard faults;
* region-set operations vs a page-permission reference model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.support import run_carat, run_carat_baseline
from repro.runtime.regions import (
    PERM_READ,
    PERM_RW,
    PERM_RWX,
    PERM_WRITE,
    Region,
    RegionSet,
)
from repro.sanitizer import region_geometry_problems

I64_MASK = (1 << 64) - 1


def wrap64(value: int) -> int:
    value &= I64_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


# --- random expression trees -------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.integers(min_value=-(2**31), max_value=2**31))
    op = draw(st.sampled_from(_BINOPS))
    lhs = draw(expr_trees(depth=depth + 1))
    rhs = draw(expr_trees(depth=depth + 1))
    return (op, lhs, rhs)


def render(tree) -> str:
    if isinstance(tree, int):
        return f"({tree})" if tree < 0 else str(tree)
    op, lhs, rhs = tree
    return f"({render(lhs)} {op} {render(rhs)})"


def evaluate(tree) -> int:
    if isinstance(tree, int):
        return wrap64(tree)
    op, lhs, rhs = tree
    a, b = evaluate(lhs), evaluate(rhs)
    if op == "+":
        return wrap64(a + b)
    if op == "-":
        return wrap64(a - b)
    if op == "*":
        return wrap64(a * b)
    if op == "&":
        return wrap64(a & b)
    if op == "|":
        return wrap64(a | b)
    if op == "^":
        return wrap64(a ^ b)
    raise AssertionError(op)


class TestDifferentialExecution:
    @given(expr_trees())
    @settings(max_examples=25, deadline=None)
    def test_expression_semantics(self, tree):
        source = f"void main() {{ print_long({render(tree)}); }}"
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(evaluate(tree))]

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20)
    )
    @settings(max_examples=20, deadline=None)
    def test_array_sum_matches(self, values):
        writes = "\n".join(
            f"  a[{i}] = {v};" for i, v in enumerate(values)
        )
        source = f"""
        void main() {{
          long *a = (long*)malloc(sizeof(long) * {len(values)});
          {writes}
          long s = 0;
          long i;
          for (i = 0; i < {len(values)}; i++) {{ s += a[i]; }}
          print_long(s);
          free((char*)a);
        }}
        """
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(sum(values))]

    @given(
        st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=15)
    )
    @settings(max_examples=15, deadline=None)
    def test_carat_is_transparent(self, values):
        """The full CARAT treatment never changes program behaviour."""
        pushes = "\n".join(
            f"""
            node = (struct N*)malloc(sizeof(struct N));
            node->v = {v}; node->next = head; head = node;
            """
            for v in values
        )
        source = f"""
        struct N {{ long v; struct N *next; }};
        struct N *head;
        struct N *node;
        void main() {{
          {pushes}
          long s = 0;
          struct N *p = head;
          while (p != null) {{ s += p->v; p = p->next; }}
          print_long(s);
        }}
        """
        base = run_carat_baseline(source, name="prop")
        carat = run_carat(source, name="prop")
        assert base.output == carat.output == [str(sum(values))]
        assert carat.process.runtime.stats.guard_faults == 0


class TestRegionSetModel:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "coalesce"]),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=25,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_page_permission_model(self, operations):
        """Model: a dict page -> covered?  The region set must agree after
        any sequence of adds / range removals / coalesces."""
        rs = RegionSet()
        model = set()
        page = 0x1000
        for op, start, length in operations:
            lo, hi = start * page, (start + length) * page
            if op == "add":
                if any(p in model for p in range(start, start + length)):
                    with pytest.raises(ValueError):
                        rs.add(Region(lo, hi - lo, PERM_RW))
                    continue
                rs.add(Region(lo, hi - lo, PERM_RW))
                model.update(range(start, start + length))
            elif op == "remove":
                rs.remove_range(lo, hi)
                model.difference_update(range(start, start + length))
            else:
                rs.coalesce()  # never changes coverage
        for p in range(0, 40):
            covered = rs.check(p * page, page, "read")
            assert covered == (p in model), f"page {p}"

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_coalesce_preserves_checks(self, spans):
        rs = RegionSet()
        for start, length in spans:
            try:
                rs.add(Region(start * 0x1000, length * 0x1000, PERM_RW))
            except ValueError:
                pass
        before = [rs.check(p * 0x1000, 8, "write") for p in range(30)]
        rs.coalesce()
        after = [rs.check(p * 0x1000, 8, "write") for p in range(30)]
        assert before == after


class TestRegionSetInvariants:
    """Sorted/disjoint geometry plus a unit-granular permission oracle,
    under arbitrary sequences of every mutating operation (including the
    once-unvalidated ``replace_all``)."""

    UNIT = 0x100

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["add", "remove", "replace_all", "remove_range",
                     "set_range_perms", "coalesce"]
                ),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=6),
                st.sampled_from([PERM_READ, PERM_RW, PERM_RWX]),
            ),
            max_size=30,
        ),
        st.lists(st.integers(min_value=-1, max_value=26 * 0x100), max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_geometry_and_find_oracle(self, operations, probes):
        rs = RegionSet()
        oracle = {}  # unit index -> perms
        for op, start, length, perms in operations:
            lo, hi = start * self.UNIT, (start + length) * self.UNIT
            units = range(start, start + length)
            if op == "add":
                if any(u in oracle for u in units):
                    with pytest.raises(ValueError):
                        rs.add(Region(lo, hi - lo, perms))
                else:
                    rs.add(Region(lo, hi - lo, perms))
                    oracle.update({u: perms for u in units})
            elif op == "remove":
                victim = next((r for r in rs.regions if r.base == lo), None)
                if victim is None:
                    with pytest.raises(KeyError):
                        rs.remove(lo)
                else:
                    rs.remove(lo)
                    for u in range(victim.base // self.UNIT,
                                   victim.end // self.UNIT):
                        oracle.pop(u, None)
            elif op == "replace_all":
                # Rebuild from the oracle plus one candidate region; the
                # candidate overlaps iff any of its units are taken.
                replacement = [
                    Region(s * self.UNIT, (e - s) * self.UNIT, oracle[s])
                    for s, e in _runs(oracle)
                ] + [Region(lo, hi - lo, perms)]
                if any(u in oracle for u in units):
                    before = rs.regions
                    with pytest.raises(ValueError):
                        rs.replace_all(replacement)
                    assert rs.regions == before  # failed install: no change
                else:
                    rs.replace_all(replacement)
                    oracle.update({u: perms for u in units})
            elif op == "remove_range":
                rs.remove_range(lo, hi)
                for u in units:
                    oracle.pop(u, None)
            elif op == "set_range_perms":
                if all(u in oracle for u in units):
                    rs.set_range_perms(lo, hi, perms)
                    oracle.update({u: perms for u in units})
                else:
                    with pytest.raises(ValueError):
                        rs.set_range_perms(lo, hi, perms)
            else:
                rs.coalesce()

            # Invariant: sorted, disjoint, positive lengths — the same
            # predicate the sanitizer's region-geometry rule enforces.
            assert region_geometry_problems(rs.regions) == []

        # find() agrees with a linear scan, for probes in and around the
        # occupied range (including the -1 miss).
        for probe in probes + [r.base for r in rs.regions]:
            linear = next(
                (r for r in rs.regions if r.base <= probe < r.end), None
            )
            assert rs.find(probe) is linear
        # And the oracle agrees unit-by-unit on coverage + write perms.
        for u in range(0, 27):
            address = u * self.UNIT
            expect = oracle.get(u)
            assert rs.check(address, 8, "read") == (
                expect is not None and bool(expect & PERM_READ)
            )
            assert rs.check(address, 8, "write") == (
                expect is not None and bool(expect & PERM_WRITE)
            )


def _runs(oracle):
    """Group the oracle's unit indices into maximal adjacent runs with
    identical perms -> (start, end) pairs."""
    runs = []
    for u in sorted(oracle):
        if runs and runs[-1][1] == u and oracle[runs[-1][0]] == oracle[u]:
            runs[-1][1] = u + 1
        else:
            runs.append([u, u + 1])
    return [(s, e) for s, e in runs]


class TestGlobalInitializerRoundtrip:
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_global_scalars_survive_loading(self, values):
        decls = "\n".join(f"long g{i} = {v};" for i, v in enumerate(values))
        prints = "\n".join(f"  print_long(g{i});" for i in range(len(values)))
        source = f"{decls}\nvoid main() {{\n{prints}\n}}"
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(v) for v in values]
