"""Cross-cutting property tests.

* differential execution: randomly generated Mini-C arithmetic must
  compute exactly what a reference Python evaluator (with 64-bit wrap
  semantics) computes — this exercises lexer, parser, sema, lowering,
  every generic optimization, and the interpreter in one shot;
* CARAT transparency: for random list/array programs, the instrumented
  binary must produce the baseline's output with zero guard faults;
* region-set operations vs a page-permission reference model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import run_carat, run_carat_baseline
from repro.runtime.regions import PERM_RW, Region, RegionSet

I64_MASK = (1 << 64) - 1


def wrap64(value: int) -> int:
    value &= I64_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


# --- random expression trees -------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.integers(min_value=-(2**31), max_value=2**31))
    op = draw(st.sampled_from(_BINOPS))
    lhs = draw(expr_trees(depth=depth + 1))
    rhs = draw(expr_trees(depth=depth + 1))
    return (op, lhs, rhs)


def render(tree) -> str:
    if isinstance(tree, int):
        return f"({tree})" if tree < 0 else str(tree)
    op, lhs, rhs = tree
    return f"({render(lhs)} {op} {render(rhs)})"


def evaluate(tree) -> int:
    if isinstance(tree, int):
        return wrap64(tree)
    op, lhs, rhs = tree
    a, b = evaluate(lhs), evaluate(rhs)
    if op == "+":
        return wrap64(a + b)
    if op == "-":
        return wrap64(a - b)
    if op == "*":
        return wrap64(a * b)
    if op == "&":
        return wrap64(a & b)
    if op == "|":
        return wrap64(a | b)
    if op == "^":
        return wrap64(a ^ b)
    raise AssertionError(op)


class TestDifferentialExecution:
    @given(expr_trees())
    @settings(max_examples=25, deadline=None)
    def test_expression_semantics(self, tree):
        source = f"void main() {{ print_long({render(tree)}); }}"
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(evaluate(tree))]

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20)
    )
    @settings(max_examples=20, deadline=None)
    def test_array_sum_matches(self, values):
        writes = "\n".join(
            f"  a[{i}] = {v};" for i, v in enumerate(values)
        )
        source = f"""
        void main() {{
          long *a = (long*)malloc(sizeof(long) * {len(values)});
          {writes}
          long s = 0;
          long i;
          for (i = 0; i < {len(values)}; i++) {{ s += a[i]; }}
          print_long(s);
          free((char*)a);
        }}
        """
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(sum(values))]

    @given(
        st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=15)
    )
    @settings(max_examples=15, deadline=None)
    def test_carat_is_transparent(self, values):
        """The full CARAT treatment never changes program behaviour."""
        pushes = "\n".join(
            f"""
            node = (struct N*)malloc(sizeof(struct N));
            node->v = {v}; node->next = head; head = node;
            """
            for v in values
        )
        source = f"""
        struct N {{ long v; struct N *next; }};
        struct N *head;
        struct N *node;
        void main() {{
          {pushes}
          long s = 0;
          struct N *p = head;
          while (p != null) {{ s += p->v; p = p->next; }}
          print_long(s);
        }}
        """
        base = run_carat_baseline(source, name="prop")
        carat = run_carat(source, name="prop")
        assert base.output == carat.output == [str(sum(values))]
        assert carat.process.runtime.stats.guard_faults == 0


class TestRegionSetModel:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "coalesce"]),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=25,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_page_permission_model(self, operations):
        """Model: a dict page -> covered?  The region set must agree after
        any sequence of adds / range removals / coalesces."""
        rs = RegionSet()
        model = set()
        page = 0x1000
        for op, start, length in operations:
            lo, hi = start * page, (start + length) * page
            if op == "add":
                if any(p in model for p in range(start, start + length)):
                    with pytest.raises(ValueError):
                        rs.add(Region(lo, hi - lo, PERM_RW))
                    continue
                rs.add(Region(lo, hi - lo, PERM_RW))
                model.update(range(start, start + length))
            elif op == "remove":
                rs.remove_range(lo, hi)
                model.difference_update(range(start, start + length))
            else:
                rs.coalesce()  # never changes coverage
        for p in range(0, 40):
            covered = rs.check(p * page, page, "read")
            assert covered == (p in model), f"page {p}"

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_coalesce_preserves_checks(self, spans):
        rs = RegionSet()
        for start, length in spans:
            try:
                rs.add(Region(start * 0x1000, length * 0x1000, PERM_RW))
            except ValueError:
                pass
        before = [rs.check(p * 0x1000, 8, "write") for p in range(30)]
        rs.coalesce()
        after = [rs.check(p * 0x1000, 8, "write") for p in range(30)]
        assert before == after


class TestGlobalInitializerRoundtrip:
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_global_scalars_survive_loading(self, values):
        decls = "\n".join(f"long g{i} = {v};" for i, v in enumerate(values))
        prints = "\n".join(f"  print_long(g{i});" for i in range(len(values)))
        source = f"{decls}\nvoid main() {{\n{prints}\n}}"
        result = run_carat_baseline(source, name="prop")
        assert result.output == [str(v) for v in values]
