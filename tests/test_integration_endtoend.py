"""End-to-end integration scenarios that cross every subsystem."""

import pytest

from repro.carat import CompileOptions, compile_carat
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from tests.support import run_carat, run_carat_baseline
from repro.machine.interp import Interpreter


MULTI_PHASE = """
// Three phases: array phase (affine guards), pointer phase (escapes),
// and free phase (table deletions) — the full CARAT surface in one run.
struct Cell { long v; struct Cell *next; };
struct Cell *list;
long grid[64];

long phase_array() {
  long i;
  long s = 0;
  for (i = 0; i < 64; i++) { grid[i] = i * 7 % 13; }
  for (i = 0; i < 64; i++) { s += grid[i]; }
  return s;
}

long phase_list(long n) {
  long i;
  for (i = 0; i < n; i++) {
    struct Cell *c = (struct Cell*)malloc(sizeof(struct Cell));
    c->v = i;
    c->next = list;
    list = c;
  }
  long s = 0;
  struct Cell *p = list;
  while (p != null) { s += p->v; p = p->next; }
  return s;
}

long phase_free() {
  long freed = 0;
  while (list != null) {
    struct Cell *next = list->next;
    free((char*)list);
    list = next;
    freed++;
  }
  return freed;
}

void main() {
  print_long(phase_array());
  print_long(phase_list(80));
  print_long(phase_free());
}
"""

EXPECTED = [
    str(sum(i * 7 % 13 for i in range(64))),
    str(sum(range(80))),
    "80",
]


class TestMultiPhase:
    def test_baseline_semantics(self):
        assert run_carat_baseline(MULTI_PHASE, name="mp").output == EXPECTED

    def test_full_carat_semantics_and_cleanup(self):
        result = run_carat(MULTI_PHASE, name="mp")
        assert result.output == EXPECTED
        rt = result.process.runtime
        # All 80 heap cells were freed; only statics remain live.
        live_kinds = {a.kind for a in rt.table}
        assert "heap" not in live_kinds
        assert rt.table.total_frees >= 80
        assert rt.stats.guard_faults == 0

    def test_repeated_moves_through_all_phases(self):
        binary = compile_carat(MULTI_PHASE, module_name="mp")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        interp.start("main")
        moves = 0
        while True:
            status = interp.run_steps(700)
            if status == "done":
                break
            victim = process.runtime.worst_case_allocation()
            if victim is None or victim.kind == "code":
                continue
            snaps = interp.register_snapshots()
            kernel.request_page_move(
                process,
                victim.address & ~(PAGE_SIZE - 1),
                register_snapshots=snaps,
            )
            interp.apply_snapshots(snaps)
            moves += 1
        assert interp.output == EXPECTED
        assert moves >= 3
        # The allocation table survived every relocation consistently.
        process.runtime.table.check_invariants()

    def test_moving_the_globals_page(self):
        """Moving the page holding @grid and @list mid-run must be
        transparent — globals are allocations like any other."""
        binary = compile_carat(MULTI_PHASE, module_name="mp")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(900)
        globals_page = process.globals_map["grid"] & ~(PAGE_SIZE - 1)
        snaps = interp.register_snapshots()
        plan, cost, _ = kernel.request_page_move(
            process, globals_page, register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        # The symbol map must have followed.
        assert process.globals_map["grid"] != globals_page or plan.lo != globals_page
        interp.run_steps(50_000_000)
        assert interp.output == EXPECTED

    def test_protection_change_between_phases(self):
        from repro.errors import ProtectionFault
        from repro.runtime.regions import PERM_RWX

        binary = compile_carat(MULTI_PHASE, module_name="mp")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        interp.start("main")
        # Run into the list phase so per-iteration (non-mergeable) guards
        # are active, then revoke all access to the first heap page.
        interp.run_steps(1200)
        process.runtime.flush_escapes()
        victim = next(a for a in process.runtime.table if a.kind == "heap")
        base = victim.address & ~(PAGE_SIZE - 1)
        kernel.request_protection_change(process, base, PAGE_SIZE, 0)
        with pytest.raises(ProtectionFault):
            interp.run_steps(50_000_000)
        kernel.request_protection_change(process, base, PAGE_SIZE, PERM_RWX)
        interp.run_steps(50_000_000)
        assert interp.output == EXPECTED


class TestGuardMechanismEquivalence:
    @pytest.mark.parametrize("mech", ["mpx", "binary_search", "if_tree"])
    def test_all_mechanisms_compute_same_answer(self, mech):
        result = run_carat(MULTI_PHASE, guard_mechanism=mech, name="mp")
        assert result.output == EXPECTED


class TestConfigurationsMatrix:
    @pytest.mark.parametrize(
        "options",
        [
            CompileOptions(guards=False, tracking=False),
            CompileOptions(guards=True, carat_guard_opts=False, tracking=False),
            CompileOptions(guards=True, carat_guard_opts=True, tracking=False),
            CompileOptions(guards=False, tracking=True),
            CompileOptions(),
        ],
        ids=["baseline", "guards-naive", "guards-opt", "tracking", "full"],
    )
    def test_every_configuration_is_transparent(self, options):
        binary = compile_carat(MULTI_PHASE, options, module_name="mp")
        result = run_carat(binary)
        assert result.output == EXPECTED

    def test_guard_opt_reduces_dynamic_guards(self):
        naive = run_carat(
            compile_carat(
                MULTI_PHASE,
                CompileOptions(carat_guard_opts=False, tracking=False),
                module_name="mp",
            )
        )
        optimized = run_carat(
            compile_carat(
                MULTI_PHASE,
                CompileOptions(carat_guard_opts=True, tracking=False),
                module_name="mp",
            )
        )
        assert (
            optimized.process.runtime.stats.guards_executed
            < naive.process.runtime.stats.guards_executed
        )
        assert optimized.cycles < naive.cycles
