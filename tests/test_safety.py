"""The ``--safety`` detection matrix and its zero-false-positive flank.

Safety mode (:mod:`repro.runtime.safety`) turns CARAT's allocation
table into a CryptSan-style liveness oracle behind every guard.  These
tests pin down both halves of its contract:

* **100% detection** — every planted adversarial bug (use-after-free,
  out-of-bounds into region-legal free space) raises
  :class:`~repro.errors.SafetyFault` with the right structured verdict,
  on all three execution engines.
* **Zero false positives** — every *registered* workload (which by
  construction contains no bug) runs bit-identically with safety on,
  paying only the extra check cycles.

The adversarial programs live outside the workload registry (see
:mod:`repro.workloads.adversarial`) precisely so the sweep here can
iterate ``all_workloads()`` without tripping over a planted bug.
"""

import pytest

from repro.errors import SafetyFault
from repro.runtime.safety import KIND_OOB, KIND_UAF
from repro.workloads import all_workloads
from repro.workloads.adversarial import (
    EXPECTED_KINDS,
    adversarial_names,
    adversarial_workload,
)
from tests.support import run_carat

ENGINES = ["reference", "fast", "trace"]

#: Engines beyond the reference one are exercised on a representative
#: subset of the registry; the full sweep runs on the reference engine.
SWEEP_SUBSET = ["hpccg", "dmastream", "kvburst", "mcf"]


# ---------------------------------------------------------------------------
# Detection matrix: every planted bug fires, on every engine
# ---------------------------------------------------------------------------


class TestDetectionMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(EXPECTED_KINDS))
    def test_planted_bug_is_detected(self, name, engine):
        workload = adversarial_workload(name, "tiny")
        with pytest.raises(SafetyFault) as fault:
            run_carat(workload.source, safety=True, engine=engine, name=name)
        violation = fault.value.violation
        assert violation.kind == EXPECTED_KINDS[name]
        assert violation.access == ("write" if name.endswith("write") else "read")
        assert violation.size >= 1
        assert violation.address > 0
        # The structured report round-trips and the prose names the kind.
        assert violation.to_dict()["kind"] == violation.kind
        assert violation.kind in fault.value.violation.describe()

    @pytest.mark.parametrize("name", ["uafread", "uafwrite"])
    def test_uaf_verdict_carries_hmac_provenance(self, name):
        workload = adversarial_workload(name, "tiny")
        with pytest.raises(SafetyFault) as fault:
            run_carat(workload.source, safety=True, name=name)
        violation = fault.value.violation
        # The freed allocation's ghost: range + signed provenance.
        assert violation.kind == KIND_UAF
        assert violation.allocation_base is not None
        assert violation.allocation_size > 0
        assert violation.allocation_kind == "heap"
        assert violation.seq is not None
        assert violation.tag is not None and len(violation.tag) == 16
        int(violation.tag, 16)  # hex HMAC prefix
        assert violation.tag in violation.describe()

    @pytest.mark.parametrize("name", ["oobread", "oobwrite"])
    def test_wild_oob_verdict_names_no_allocation(self, name):
        workload = adversarial_workload(name, "tiny")
        with pytest.raises(SafetyFault) as fault:
            run_carat(workload.source, safety=True, name=name)
        violation = fault.value.violation
        # The wild index lands in free heap space nobody owns.
        assert violation.kind == KIND_OOB
        assert violation.allocation_base is None
        assert "wild pointer" in violation.describe()

    def test_detection_is_engine_independent(self):
        """All three engines report the same verdict for the same bug —
        address, kind, and provenance tag included."""
        workload = adversarial_workload("uafread", "tiny")
        verdicts = []
        for engine in ENGINES:
            with pytest.raises(SafetyFault) as fault:
                run_carat(workload.source, safety=True, engine=engine)
            verdicts.append(fault.value.violation.to_dict())
        assert verdicts[0] == verdicts[1] == verdicts[2]


# ---------------------------------------------------------------------------
# The flank: no safety, no fault — and no false positives with it on
# ---------------------------------------------------------------------------


class TestAdversarialWithoutSafety:
    @pytest.mark.parametrize("name", sorted(EXPECTED_KINDS))
    def test_planted_bug_is_invisible_to_plain_guards(self, name):
        """Every access the adversarial programs make is region-legal,
        so without ``--safety`` they run to completion deterministically
        — which is exactly why the liveness check earns its keep."""
        workload = adversarial_workload(name, "tiny")
        first = run_carat(workload.source, name=name)
        second = run_carat(workload.source, name=name)
        assert first.exit_code == 0
        assert first.output == second.output
        assert first.fingerprint() == second.fingerprint()


class TestZeroFalsePositives:
    @pytest.mark.parametrize(
        "workload", all_workloads("tiny"), ids=lambda w: w.name
    )
    def test_registered_workload_runs_clean_under_safety(self, workload):
        baseline = run_carat(workload.source, name=workload.name)
        checked = run_carat(workload.source, safety=True, name=workload.name)
        assert checked.exit_code == 0
        assert checked.output == baseline.output
        safety = checked.process.runtime.safety
        assert safety is not None
        assert safety.checks > 0
        assert safety.violations == []
        # The oracle is not free: every checked access pays the probe.
        assert checked.cycles > baseline.cycles

    @pytest.mark.parametrize("engine", ["fast", "trace"])
    @pytest.mark.parametrize("name", SWEEP_SUBSET)
    def test_subset_runs_clean_on_compiled_engines(self, name, engine):
        workload = [w for w in all_workloads("tiny") if w.name == name][0]
        result = run_carat(
            workload.source, safety=True, engine=engine, name=name
        )
        assert result.exit_code == 0
        safety = result.process.runtime.safety
        assert safety.checks > 0 and safety.violations == []

    def test_safety_off_leaves_runs_bit_identical(self):
        """``safety=False`` must not change a single cycle: the guard
        paths consult the checker only when one is attached."""
        workload = adversarial_workload("oobread", "tiny")
        plain = run_carat(workload.source)
        explicit = run_carat(workload.source, safety=False)
        assert plain.process.runtime.safety is None
        assert plain.fingerprint() == explicit.fingerprint()

    def test_every_adversarial_name_has_an_expected_kind(self):
        assert sorted(EXPECTED_KINDS) == adversarial_names()
