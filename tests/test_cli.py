"""The command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import SUM_SOURCE


@pytest.fixture
def source_file(tmp_path):
    f = tmp_path / "prog.c"
    f.write_text(SUM_SOURCE)
    return str(f)


def test_compile_reports_stats(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "guards" in out
    assert "signed" in out


def test_compile_emit_ir(source_file, capsys):
    main(["compile", source_file, "--emit-ir"])
    out = capsys.readouterr().out
    assert "define" in out
    assert "carat.guard" in out


def test_compile_no_guards(source_file, capsys):
    main(["compile", source_file, "--no-guards", "--emit-ir"])
    out = capsys.readouterr().out
    assert "carat.guard" not in out


def test_run_carat_mode(source_file, capsys):
    code = main(["run", source_file, "--mode", "carat", "--stats"])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out.strip() == str(sum(range(64)))
    assert "guards" in captured.err


def test_run_all_modes_agree(source_file, capsys):
    outputs = []
    for mode in ("carat", "baseline", "traditional"):
        main(["run", source_file, "--mode", mode])
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == outputs[2]


def test_bench_command(capsys):
    assert main(["bench", "ep", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "carat" in out and "traditional" in out


def test_bench_without_name_lists_targets(capsys):
    assert main(["bench"]) == 0
    out = capsys.readouterr().out
    assert "hpccg" in out and "xz" in out and "behavior" in out


def test_policy_command(capsys):
    assert main(["policy", "ep", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "policy" in out
    assert "frag before" in out and "frag after" in out
    assert "tiering" in out  # tiered by default (--fast-kb 1024)


def test_policy_command_compaction_only(capsys):
    code = main(["policy", "ep", "--fast-kb", "0", "--scatter", "--no-tiering"])
    out = capsys.readouterr().out
    assert code == 0
    assert "compaction" in out
    assert "tiering" not in out


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "hpccg" in out and "xz" in out


def test_missing_file():
    with pytest.raises(SystemExit):
        main(["run", "/no/such/file.c"])
