"""Interpreter semantics and the three execution configurations."""

import pytest

from repro.carat import compile_baseline, compile_carat
from repro.errors import InterpError
from repro.kernel import Kernel
from tests.support import run_carat, run_carat_baseline, run_traditional
from repro.machine.interp import Interpreter
from tests.conftest import SUM_SOURCE


def outputs(source: str):
    return run_carat_baseline(source, name="t").output


class TestInterpreterCore:
    def test_exit_code_from_main(self):
        binary = compile_baseline("long main() { return 42; }")
        r = run_carat_baseline(binary)
        assert r.exit_code == 42

    def test_integer_wrapping(self):
        out = outputs(
            """
            void main() {
              char c = 127;
              c = c + 1;
              print_long((long)c);
            }
            """
        )
        assert out == ["-128"]

    def test_int_truncation(self):
        out = outputs(
            """
            void main() {
              int x = (int)5000000000;
              print_long((long)x);
            }
            """
        )
        assert out == [str(((5000000000 + 2**31) % 2**32) - 2**31)]

    def test_float_to_int(self):
        out = outputs("void main() { print_long((long)3.99); print_long((long)-3.99); }")
        assert out == ["3", "-3"]

    def test_division_by_zero_faults(self):
        binary = compile_baseline(
            "long zero; void main() { print_long(10 / zero); }"
        )
        with pytest.raises(InterpError, match="division"):
            run_carat_baseline(binary)

    def test_call_depth_limit(self):
        binary = compile_baseline(
            "long f(long n) { return f(n + 1); } void main() { f(0); }"
        )
        with pytest.raises(InterpError, match="depth"):
            run_carat_baseline(binary)

    def test_step_budget(self):
        binary = compile_baseline(
            "void main() { long i = 0; while (1) { i++; } }"
        )
        with pytest.raises(InterpError, match="budget"):
            kernel = Kernel()
            process = kernel.load_carat(binary)
            Interpreter(process, kernel).run(max_steps=10_000)

    def test_memory_persistence_across_calls(self):
        out = outputs(
            """
            void fill(long *p, long v) { *p = v; }
            void main() {
              long x = 0;
              fill(&x, 77);
              print_long(x);
            }
            """
        )
        assert out == ["77"]

    def test_calloc_zeroes(self):
        out = outputs(
            """
            void main() {
              long *p = (long*)calloc(8, 8);
              long s = 0; long i;
              for (i = 0; i < 8; i++) { s += p[i]; }
              print_long(s);
              free((char*)p);
            }
            """
        )
        assert out == ["0"]

    def test_realloc_preserves_prefix(self):
        # realloc is not a Mini-C builtin; exercise through IR directly.
        from repro.ir import parse_module

        text = """
declare i8* @malloc(i64)
declare i8* @realloc(i8*, i64)
declare void @print_long(i64)

define void @main() {
entry:
  %p = call i8* @malloc(i64 8)
  %pl = bitcast i8* %p to i64*
  store i64 123, i64* %pl
  %q = call i8* @realloc(i8* %p, i64 64)
  %ql = bitcast i8* %q to i64*
  %v = load i64* %ql
  call void @print_long(i64 %v)
  ret void
}
"""
        module = parse_module(text)
        r = run_carat_baseline(compile_baseline(module))
        assert r.output == ["123"]

    def test_stack_reuse_after_return(self):
        # Deep call chain then another: the stack pointer must recover.
        out = outputs(
            """
            long deep(long n) { long pad[16]; pad[0] = n; if (n == 0) return 0; return deep(n - 1) + pad[0]; }
            void main() { print_long(deep(20)); print_long(deep(20)); }
            """
        )
        assert out == [str(sum(range(1, 21)))] * 2

    def test_output_capture_order(self):
        out = outputs(
            "void main() { print_long(1); print_str(\"two\"); print_double(3.0); }"
        )
        assert out == ["1", "two", "3.0"]


class TestThreeConfigurations:
    def test_same_output_everywhere(self):
        base = run_carat_baseline(SUM_SOURCE, name="sum")
        carat = run_carat(SUM_SOURCE, name="sum")
        trad = run_traditional(SUM_SOURCE, name="sum")
        assert base.output == carat.output == trad.output == [str(sum(range(64)))]

    def test_carat_counts_guards(self):
        carat = run_carat(SUM_SOURCE, name="sum")
        rt = carat.process.runtime
        assert rt.stats.guards_executed > 0
        assert carat.stats.guard_cycles > 0
        assert rt.stats.guard_faults == 0

    def test_baseline_has_zero_guard_cycles(self):
        base = run_carat_baseline(SUM_SOURCE, name="sum")
        assert base.stats.guard_cycles == 0
        assert base.stats.tracking_cycles == 0

    def test_traditional_pays_translation(self):
        trad = run_traditional(SUM_SOURCE, name="sum")
        assert trad.stats.translation_cycles > 0
        assert trad.process.mmu.stats.pagewalks > 0
        assert trad.dtlb_mpki() > 0

    def test_carat_pays_no_translation(self):
        carat = run_carat(SUM_SOURCE, name="sum")
        assert carat.stats.translation_cycles == 0

    def test_tracking_follows_program_allocations(self):
        carat = run_carat(SUM_SOURCE, name="sum")
        rt = carat.process.runtime
        # The program malloc'd once and freed once (plus load-time statics).
        assert rt.table.total_allocs >= 4  # globals + stack + code + heap
        assert rt.table.total_frees == 1

    def test_demand_paging_counts(self):
        trad = run_traditional(SUM_SOURCE, name="sum")
        assert trad.process.demand_page_allocs >= 1  # heap first touch
        assert trad.kernel.notifier.page_allocs == trad.process.demand_page_allocs

    def test_guard_mechanisms_all_work(self):
        for mech in ("mpx", "binary_search", "if_tree"):
            r = run_carat(SUM_SOURCE, guard_mechanism=mech, name="sum")
            assert r.output == [str(sum(range(64)))]

    def test_mpx_cheapest_guard(self):
        mpx = run_carat(SUM_SOURCE, guard_mechanism="mpx", name="s")
        bsearch = run_carat(SUM_SOURCE, guard_mechanism="binary_search", name="s")
        assert mpx.stats.guard_cycles <= bsearch.stats.guard_cycles

    def test_shared_kernel_hosts_multiple_processes(self):
        kernel = Kernel()
        r1 = run_carat(SUM_SOURCE, kernel=kernel, name="a")
        r2 = run_carat(SUM_SOURCE, kernel=kernel, name="b")
        assert r1.output == r2.output
        assert r1.process.pid != r2.process.pid
        # Their capsules must not overlap.
        a, b = r1.process.layout, r2.process.layout
        a_end = a.heap_base + a.heap_size
        assert a_end <= b.stack_base or b.heap_base + b.heap_size <= a.stack_base
