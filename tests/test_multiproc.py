"""The multi-tenant kernel: scheduler, CoW sharing, fairness arbitration.

Four pillars:

* **isolation** — every tenant is a full per-PID capsule; a move (or CoW
  break) in tenant A never touches tenant B's region generation, stats,
  or pause log;
* **correctness under sharing** — identical images deduplicate to one
  physical copy, writes CoW-break out through the transactional move
  path, and every tenant computes exactly what it would alone;
* **determinism** — a schedule is a pure function of (specs, config):
  re-runs are fingerprint-identical, and with sharing off each tenant's
  fingerprint equals its solo run, under both engines (hypothesis);
* **sanitizer teeth** — the cross-process frame-ownership and shared-CoW
  rules flag injected corruption (a rule that never fires measures
  nothing).
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carat.pipeline import compile_carat
from repro.errors import ProtectionFault
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter
from repro.machine.session import CaratSession, RunConfig
from repro.machine.threads import ThreadGroup, ThreadSpec
from repro.multiproc import (
    FairnessArbiter,
    Scheduler,
    ShareManager,
    TenantSpec,
)
from repro.multiproc.scheduler import percentile
from repro.runtime.regions import PERM_RW, Region
from repro.sanitizer import FaultInjector, InvariantChecker
from repro.telemetry import validate_events
from tests.conftest import LINKED_LIST_SOURCE, SUM_SOURCE

#: Writes a global in a loop: under sharing, the globals page must
#: CoW-break on the first store and every tenant still prints 1275.
COUNTER_SOURCE = """
long counter;
void main() {
  long i;
  for (i = 1; i <= 50; i++) { counter = counter + i; }
  print_long(counter);
}
"""

#: Touches only locals — never stores a global, so under sharing its
#: image stays pristine and it performs zero moves.
PURE_SOURCE = """
void main() {
  long i;
  long s = 0;
  for (i = 1; i <= 50; i++) { s = s + i; }
  print_long(s);
}
"""

ENGINES = ["reference", "fast", "trace"]

#: Capsule sizes for direct ``load_carat`` calls (the kernel default is
#: an 8 MiB heap — far too big for multi-tenant unit fixtures).
SMALL = dict(heap_size=128 * 1024, stack_size=32 * 1024)


def _config(engine="reference", **overrides):
    base = dict(
        engine=engine,
        sanitize=True,
        quantum=123,
        heap_size=64 * 1024,
        stack_size=16 * 1024,
    )
    base.update(overrides)
    return RunConfig(**base)


def _schedule(specs, engine="reference", **kwargs):
    config = kwargs.pop("config", None) or _config(engine)
    return Scheduler(config, specs, **kwargs).run()


# ---------------------------------------------------------------------------
# Configuration plumbing (the quantum satellite)
# ---------------------------------------------------------------------------


class TestQuantumConfig:
    @pytest.mark.parametrize("bad", [0, -5, "400", 3.5])
    def test_quantum_validated(self, bad):
        with pytest.raises((ValueError, TypeError)):
            RunConfig(quantum=bad)

    def test_thread_group_takes_config_quantum(self):
        binary = compile_carat(SUM_SOURCE)
        kernel = Kernel(8 << 20)
        process = kernel.load_carat(binary, **SMALL)
        group = ThreadGroup.from_config(
            process,
            kernel,
            [ThreadSpec("main")],
            _config(quantum=77, sanitize=False),
        )
        assert group.quantum == 77

    def test_scheduler_quantum_bounds_run_steps(self):
        result = _schedule(
            [TenantSpec(SUM_SOURCE), TenantSpec(SUM_SOURCE)],
            config=_config(quantum=13),
        )
        # 13-instruction slices force many rounds.
        assert result.rounds > 10

    def test_tenant_weight_validated(self):
        with pytest.raises(ValueError):
            TenantSpec(SUM_SOURCE, weight=0)


# ---------------------------------------------------------------------------
# Scheduling and isolation
# ---------------------------------------------------------------------------


class TestScheduling:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_tenants_run_to_completion(self, engine):
        result = _schedule(
            [
                TenantSpec(SUM_SOURCE, name="sum"),
                TenantSpec(LINKED_LIST_SOURCE, name="list"),
                TenantSpec(COUNTER_SOURCE, name="counter"),
            ],
            engine=engine,
        )
        outputs = {r.process.name: r.output for r in result.tenants.values()}
        assert outputs == {
            "sum": ["2016"],
            "list": ["780"],
            "counter": ["1275"],
        }
        assert all(r.exit_code == 0 for r in result.tenants.values())
        assert result.machine_cycles == sum(
            r.stats.cycles for r in result.tenants.values()
        )

    def test_rerun_is_fingerprint_identical(self):
        specs = [
            TenantSpec(SUM_SOURCE),
            TenantSpec(LINKED_LIST_SOURCE),
            TenantSpec(COUNTER_SOURCE),
        ]
        first = _schedule(specs)
        second = _schedule(specs)
        assert first.fingerprints() == second.fingerprints()

    def test_per_tenant_stats_are_isolated(self):
        result = _schedule(
            [TenantSpec(PURE_SOURCE), TenantSpec(COUNTER_SOURCE)],
            share=True,
        )
        kernel = next(iter(result.tenants.values())).kernel
        # Only the counter tenant (pid 2) writes a globals page, so only
        # it attempts a move and pays a pause.
        assert kernel.tenant_stats[2].moves_attempted >= 1
        # The pure tenant never charged a stat, so it has no block at
        # all — the strongest form of "A's moves never land on B".
        assert kernel.stats_for(1).moves_attempted == 0
        assert 1 not in result.pauses and 2 in result.pauses

    def test_move_in_one_tenant_leaves_others_generation_alone(self):
        """The per-PID heart of the tentpole: a CoW break (a full
        transactional page move) in tenant A must not bump tenant B's
        region generation — B's guard caches and TLB stay warm."""
        kernel = Kernel(8 << 20)
        kernel.attach_shares(ShareManager(kernel))
        binary = compile_carat(COUNTER_SOURCE)
        a = kernel.load_carat(binary, share=True, **SMALL)
        b = kernel.load_carat(binary, share=True, **SMALL)
        interp = Interpreter(a, kernel)
        interp.start("main", ())
        b_version = b.regions.version
        a_version = a.regions.version
        with pytest.raises(ProtectionFault) as exc:
            interp.run_steps(10_000_000)
        serviced = kernel.shares.service_write_fault(a, interp, exc.value)
        assert serviced is not None and serviced > 0
        assert a.regions.version > a_version  # A's caches invalidate...
        assert b.regions.version == b_version  # ...B's never notice.
        assert interp.run_steps(10_000_000) == "done"
        assert interp.exit_code == 0
        assert interp.output == ["1275"]


# ---------------------------------------------------------------------------
# CoW sharing
# ---------------------------------------------------------------------------


class TestCowSharing:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_write_isolation_and_dedup(self, engine):
        result = _schedule(
            [TenantSpec(COUNTER_SOURCE, name=f"t{i}") for i in range(3)],
            engine=engine,
            share=True,
        )
        assert [r.output for r in result.tenants.values()] == [["1275"]] * 3
        dedup = result.dedup
        assert dedup["cow_breaks"] == 3  # one globals-page break each
        # The code page never breaks: three members, one physical copy.
        assert dedup["saved_pages"] >= 2
        assert all(len(result.pauses[pid]) >= 1 for pid in result.tenants)

    def test_sharing_preserves_solo_output(self):
        config = _config()
        solo = CaratSession(config).run(COUNTER_SOURCE)
        shared = _schedule(
            [TenantSpec(COUNTER_SOURCE) for _ in range(4)],
            config=config,
            share=True,
        )
        for tenant in shared.tenants.values():
            assert tenant.output == solo.output
            assert tenant.exit_code == solo.exit_code

    def test_distinct_programs_never_share(self):
        result = _schedule(
            [TenantSpec(PURE_SOURCE), TenantSpec(LINKED_LIST_SOURCE)],
            share=True,
        )
        # Two different images: each tenant has its own group, so no
        # page is ever held by more than one member.
        assert result.dedup["saved_pages"] == 0
        outputs = sorted(r.output[0] for r in result.tenants.values())
        assert outputs == ["1275", "780"]

    def test_detach_reattach_roundtrip(self):
        kernel = Kernel(4 << 20)
        shares = ShareManager(kernel)
        kernel.attach_shares(shares)
        base = kernel.frames.alloc_address(2)
        group = shares.register("img", base, 2)
        shares.attach(group, 1)
        shares.attach(group, 2)

        holder = []
        shares.detach_range(1, base, 1, holder)
        assert group.members[1] == {1}  # page 0 detached, page 1 kept
        assert shares.range_shared(1, base, base + PAGE_SIZE) is False
        shares.reattach_range(1, base, 1, holder)
        assert group.members[1] == {0, 1}
        assert shares.range_shared(1, base, base + PAGE_SIZE) is True

        # Full collapse: the last member detaching frees the run...
        holder_a, holder_b = [], []
        shares.detach_range(1, base, 2, holder_a)
        shares.detach_range(2, base, 2, holder_b)
        assert shares.lookup("img") is None
        assert kernel.frames.frame_is_free(base // PAGE_SIZE)
        # ...and rollback re-claims the frames and re-registers the group.
        shares.reattach_range(2, base, 2, holder_b)
        assert shares.lookup("img") is group
        assert not kernel.frames.frame_is_free(base // PAGE_SIZE)


# ---------------------------------------------------------------------------
# Sanitizer: cross-process rules and their teeth
# ---------------------------------------------------------------------------


def _shared_pair():
    kernel = Kernel(8 << 20)
    kernel.attach_shares(ShareManager(kernel))
    binary = compile_carat(COUNTER_SOURCE)
    a = kernel.load_carat(binary, share=True, **SMALL)
    b = kernel.load_carat(binary, share=True, **SMALL)
    return kernel, a, b


class TestCrossProcessSanitizer:
    def test_registered_sharing_is_clean(self):
        kernel, _, _ = _shared_pair()
        assert InvariantChecker().check_kernel(kernel).ok

    def test_corrupt_cow_share_detected(self):
        kernel, a, _ = _shared_pair()
        checker = InvariantChecker()
        assert checker.check_kernel(kernel).ok
        FaultInjector(kernel).corrupt_cow_share(a)
        report = checker.check_kernel(kernel)
        assert not report.ok
        assert report.by_rule("shared-cow")

    def test_unregistered_double_claim_detected(self):
        """Two PIDs mapping one frame outside the share table is exactly
        the corruption the cross-process ownership rule exists for."""
        kernel, a, b = _shared_pair()
        private = next(r for r in a.regions if r.allows("write"))
        b.regions.add(Region(private.base, PAGE_SIZE, PERM_RW))
        report = InvariantChecker().check_kernel(kernel)
        assert not report.ok
        assert any(
            "claimed by both" in v.message
            for v in report.by_rule("frame-ownership")
        )

    def test_canonical_hold_is_not_a_leak(self):
        """Frames a group holds after every member CoW-broke away are
        deliberate (late attachers find pristine pages), not leaks."""
        kernel, a, b = _shared_pair()
        for process in (a, b):
            interp = Interpreter(process, kernel)
            interp.start("main", ())
            with pytest.raises(ProtectionFault) as exc:
                interp.run_steps(10_000_000)
            assert kernel.shares.service_write_fault(
                process, interp, exc.value
            )
            assert interp.run_steps(10_000_000) == "done"
            assert interp.output == ["1275"]
        group = next(iter(kernel.shares.groups.values()))
        assert group.refcount(0) == 0  # both members broke the page...
        report = InvariantChecker().check_kernel(kernel)
        assert report.ok  # ...yet its canonical frame is not "leaked".

    def test_scheduled_run_passes_sanitizer_end_to_end(self):
        result = _schedule(
            [TenantSpec(COUNTER_SOURCE) for _ in range(3)],
            share=True,
        )
        # Sanitizer raises on violation, so completion means clean; the
        # assertion documents that checks actually ran.
        assert all(r.exit_code == 0 for r in result.tenants.values())


# ---------------------------------------------------------------------------
# Fairness arbitration
# ---------------------------------------------------------------------------


class TestArbiter:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            FairnessArbiter(epoch_cycles=0)
        with pytest.raises(ValueError):
            FairnessArbiter(demote_pressure=0.0)

    def test_epochs_run_and_budgets_respected(self):
        arbiter = FairnessArbiter(epoch_cycles=500, budget_cycles=4000)
        result = _schedule(
            [
                TenantSpec(COUNTER_SOURCE, weight=1),
                TenantSpec(COUNTER_SOURCE, weight=3),
            ],
            share=True,
            arbiter=arbiter,
        )
        summary = result.arbitration
        assert summary["epochs_run"] > 0
        assert summary["budgets_respected"] is True
        weights = {
            info["weight"] for info in summary["tenants"].values()
        }
        assert weights == {1, 3}
        assert all(r.exit_code == 0 for r in result.tenants.values())

    def test_weighted_shares_wired_and_audited(self):
        """Regression: ``wire()`` used to hand every tenant the whole-
        machine budget as its contract, so ``budgets_respected()``
        audited spend against a limit no tenant was actually given.
        The wired contract must be the weighted share ``on_round``
        enforces — here 1000/3000 of a 4000-cycle budget."""
        arbiter = FairnessArbiter(epoch_cycles=500, budget_cycles=4000)
        result = _schedule(
            [
                TenantSpec(COUNTER_SOURCE, weight=1),
                TenantSpec(COUNTER_SOURCE, weight=3),
            ],
            share=True,
            arbiter=arbiter,
        )
        shares = {
            state.tenant.spec.weight: state.stats.budget_cycles
            for state in arbiter.states.values()
        }
        assert shares == {1: 1000, 3: 3000}
        # Every per-epoch spend (pressure demotions included — they book
        # into the same ledger) stayed within the *corrected* share.
        for state in arbiter.states.values():
            assert all(
                spent <= state.stats.budget_cycles
                for spent in state.stats.epoch_move_cycles
            )
        assert arbiter.budgets_respected()
        assert result.arbitration["budgets_respected"] is True


# ---------------------------------------------------------------------------
# Percentile math (the p99 the scheduler reports)
# ---------------------------------------------------------------------------


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0

    def test_float_boundary_cases_exact(self):
        """Regression: rank was ``ceil(n * fraction)`` in *float*
        arithmetic, and binary rounding pushes products like
        ``20 * 0.35`` to 7.000000000000001 — ceil'd to rank 8 instead
        of 7.  Same story for ``100 * 0.99``."""
        assert percentile(list(range(1, 21)), 0.35) == 7
        assert percentile(list(range(1, 101)), 0.99) == 99
        assert percentile([5], 1.0) == 5
        assert percentile([3, 1, 2], 0.5) == 2  # sorts its input

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=1,
            max_size=200,
        ),
        fraction=st.floats(
            min_value=0.001, max_value=1.0, allow_nan=False
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_exact_nearest_rank_reference(self, values, fraction):
        """Nearest-rank percentile against a naive reference computed in
        exact rational arithmetic over the same float input."""
        n = len(values)
        rank = min(n, max(1, math.ceil(Fraction(fraction) * n)))
        assert percentile(values, fraction) == sorted(values)[rank - 1]


# ---------------------------------------------------------------------------
# Per-tenant telemetry
# ---------------------------------------------------------------------------


class TestTenantTelemetry:
    def test_trace_lanes_and_pause_events(self):
        config = _config(trace=True)
        scheduler = Scheduler(
            config,
            [TenantSpec(COUNTER_SOURCE) for _ in range(3)],
            share=True,
        )
        result = scheduler.run()
        events = [e.to_dict() for e in scheduler.tracer.events]
        assert validate_events(events) == []
        pids = {e["pid"] for e in events}
        assert pids >= set(result.tenants)  # every tenant owns a lane
        pauses = [e for e in events if e["name"] == "tenant.pause"]
        breaks = [e for e in events if e["name"] == "cow.break"]
        assert {e["pid"] for e in pauses} == set(result.tenants)
        assert len(breaks) == result.dedup["cow_breaks"]
        # The machine clock never runs backwards across tenant switches.
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)


# ---------------------------------------------------------------------------
# The determinism property (hypothesis)
# ---------------------------------------------------------------------------


class TestScheduleDeterminism:
    @given(
        programs=st.lists(
            st.sampled_from([SUM_SOURCE, LINKED_LIST_SOURCE, COUNTER_SOURCE]),
            min_size=2,
            max_size=4,
        ),
        quantum=st.integers(min_value=7, max_value=500),
        engine=st.sampled_from(ENGINES),
    )
    @settings(max_examples=10, deadline=None)
    def test_seeded_schedule_deterministic_and_solo_equivalent(
        self, programs, quantum, engine
    ):
        """Two identical N-tenant schedules are bit-identical, and with
        sharing and policy off each tenant fingerprints exactly as its
        solo run — time-slicing is observationally free."""
        config = _config(engine, quantum=quantum)
        specs = [TenantSpec(p, name=f"t{i}") for i, p in enumerate(programs)]
        first = Scheduler(config, specs).run()
        second = Scheduler(config, specs).run()
        assert first.fingerprints() == second.fingerprints()
        solo = {
            program: CaratSession(config).run(program).fingerprint()
            for program in set(programs)
        }
        for spec, (_, fingerprint) in zip(
            specs, sorted(first.fingerprints().items())
        ):
            assert fingerprint == solo[spec.program]
