"""Kernel substrate: physical memory, frames, heap, page table, TLB, MMU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.kernel.heap import HeapAllocator, HeapError
from repro.kernel.mmu import MMU, PageFault
from repro.kernel.pagetable import (
    PAGE_SIZE,
    PTE_EXEC,
    PTE_PRESENT,
    PTE_WRITE,
    PageTable,
    split_vpn,
)
from repro.kernel.physmem import FrameAllocator, PhysicalMemory, PhysicalMemoryError
from repro.kernel.tlb import TLB, intel_l1_dtlb, intel_stlb

MB = 1024 * 1024


class TestPhysicalMemory:
    def test_typed_roundtrips(self):
        m = PhysicalMemory(MB)
        m.write_u64(0x100, 0xDEADBEEF)
        assert m.read_u64(0x100) == 0xDEADBEEF
        m.write_int(0x200, -42, 8)
        assert m.read_int(0x200, 8) == -42
        m.write_f64(0x300, 3.25)
        assert m.read_f64(0x300) == 3.25
        m.write_uint(0x400, 0x1FF, 1)
        assert m.read_uint(0x400, 1) == 0xFF  # truncated to a byte

    def test_bounds_checked(self):
        m = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(PhysicalMemoryError):
            m.read_bytes(PAGE_SIZE - 4, 8)
        with pytest.raises(PhysicalMemoryError):
            m.write_bytes(-1, b"x")

    def test_copy_and_fill(self):
        m = PhysicalMemory(MB)
        m.write_bytes(0x100, b"hello")
        m.copy(0x100, 0x2000, 5)
        assert m.read_bytes(0x2000, 5) == b"hello"
        m.fill(0x2000, 5, 0)
        assert m.read_bytes(0x2000, 5) == b"\0" * 5

    def test_cstring(self):
        m = PhysicalMemory(MB)
        m.write_bytes(0x10, b"abc\0def")
        assert m.read_cstring(0x10) == b"abc"

    def test_invalid_size(self):
        with pytest.raises(PhysicalMemoryError):
            PhysicalMemory(100)


class TestFrameAllocator:
    def test_alloc_free(self):
        fa = FrameAllocator(MB, reserve_low=4)
        f1 = fa.alloc()
        f2 = fa.alloc()
        assert f1 != f2
        assert f1 >= 4
        fa.free(f1)
        with pytest.raises(PhysicalMemoryError):
            fa.free(f1)  # double free

    def test_contiguous_runs(self):
        fa = FrameAllocator(MB, reserve_low=0)
        start = fa.alloc(16)
        for i in range(16):
            assert not fa.frame_is_free(start + i)
        fa.free(start, 16)
        assert fa.free_frames == MB // PAGE_SIZE

    def test_exhaustion(self):
        fa = FrameAllocator(16 * PAGE_SIZE, reserve_low=0)
        fa.alloc(16)
        with pytest.raises(OutOfMemoryError):
            fa.alloc(1)

    def test_wraps_cursor(self):
        fa = FrameAllocator(8 * PAGE_SIZE, reserve_low=0)
        a = fa.alloc(6)
        fa.free(a, 6)
        b = fa.alloc(6)  # must find the freed run again
        assert b == a

    def test_alloc_address(self):
        fa = FrameAllocator(MB, reserve_low=1)
        address = fa.alloc_address(2)
        assert address % PAGE_SIZE == 0


class TestHeap:
    def test_malloc_free_reuse(self):
        h = HeapAllocator(0x10000, 0x10000)
        a = h.malloc(100)
        b = h.malloc(100)
        assert a != b
        h.free(a)
        c = h.malloc(50)
        assert c == a  # first fit reuses the hole

    def test_alignment(self):
        h = HeapAllocator(0x10000, 0x10000)
        for size in (1, 7, 17, 100):
            assert h.malloc(size) % 16 == 0

    def test_free_unknown_raises(self):
        h = HeapAllocator(0x10000, 0x1000)
        with pytest.raises(HeapError):
            h.free(0x10008)

    def test_exhaustion(self):
        h = HeapAllocator(0x10000, 256)
        h.malloc(200)
        with pytest.raises(HeapError):
            h.malloc(200)

    def test_coalescing(self):
        h = HeapAllocator(0x10000, 0x1000)
        a = h.malloc(256)
        b = h.malloc(256)
        c = h.malloc(256)
        h.free(a)
        h.free(c)
        h.free(b)  # middle free must merge all three
        h.check_invariants()
        big = h.malloc(0x1000 - 16)
        assert big == 0x10000

    def test_stats(self):
        h = HeapAllocator(0x10000, 0x1000)
        a = h.malloc(100)
        assert h.live_bytes > 0
        peak = h.peak_bytes
        h.free(a)
        assert h.live_bytes == 0
        assert h.peak_bytes == peak

    def test_rebase_range(self):
        h = HeapAllocator(0x10000, 0x3000)
        a = h.malloc(64)
        assert 0x10000 <= a < 0x11000
        h.rebase_range(0x10000, 0x11000, 0x40000)
        # The allocated block follows the move; freeing at the new address
        # works, at the old it does not.
        with pytest.raises(HeapError):
            h.free(a)
        h.free(a + 0x40000)
        h.check_invariants()

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_property_no_overlap(self, sizes):
        h = HeapAllocator(0x10000, 0x40000)
        live = {}
        for i, size in enumerate(sizes):
            address = h.malloc(size)
            for other, osize in live.items():
                assert address + size <= other or other + osize <= address
            live[address] = size
            if i % 3 == 2:
                victim = next(iter(live))
                h.free(victim)
                del live[victim]
            h.check_invariants()


class TestPageTable:
    def test_split_vpn(self):
        vpn = (1 << 27) | (2 << 18) | (3 << 9) | 4
        assert split_vpn(vpn) == (1, 2, 3, 4)

    def test_map_walk_unmap(self):
        pt = PageTable()
        pt.map(0x1234, 0x99)
        pte, levels = pt.walk(0x1234)
        assert pte is not None
        assert pte.pfn == 0x99
        assert levels == 4
        assert pt.mapped_pages == 1
        pt.unmap(0x1234)
        pte, _ = pt.walk(0x1234)
        assert pte is None

    def test_double_map_rejected(self):
        from repro.errors import KernelError

        pt = PageTable()
        pt.map(1, 2)
        with pytest.raises(KernelError):
            pt.map(1, 3)

    def test_walk_depth_short_circuits(self):
        pt = PageTable()
        pt.map(0, 1)
        _, levels = pt.walk(1 << 27)  # different PML4 slot entirely
        assert levels == 1

    def test_remap(self):
        pt = PageTable()
        pt.map(7, 100)
        old, pte = pt.remap(7, 200)
        assert old == 100
        assert pt.lookup(7).pfn == 200

    def test_protect(self):
        pt = PageTable()
        pt.map(7, 100, PTE_PRESENT | PTE_WRITE)
        pt.protect(7, PTE_PRESENT)  # read-only now
        assert not pt.lookup(7).writable

    def test_entries_iteration(self):
        pt = PageTable()
        for vpn in (5, 1, 9):
            pt.map(vpn, vpn * 10)
        assert [v for v, _ in pt.entries()] == [1, 5, 9]


class TestTLB:
    def test_hit_miss(self):
        from repro.kernel.pagetable import PTE

        tlb = TLB(entries=8, ways=2)
        assert tlb.lookup(5) is None
        tlb.insert(5, PTE(50))
        assert tlb.lookup(5).pfn == 50
        assert tlb.stats.lookups == 2
        assert tlb.stats.hits == 1

    def test_lru_eviction(self):
        from repro.kernel.pagetable import PTE

        tlb = TLB(entries=2, ways=2)  # one set, two ways
        tlb.insert(0, PTE(0))
        tlb.insert(2, PTE(2))
        tlb.lookup(0)  # 0 becomes MRU
        tlb.insert(4, PTE(4))  # evicts 2 (LRU)
        assert tlb.lookup(0) is not None
        assert tlb.lookup(2) is None

    def test_capacity_thrash(self):
        from repro.kernel.pagetable import PTE

        tlb = intel_l1_dtlb()
        for vpn in range(1000):
            tlb.insert(vpn, PTE(vpn))
        assert tlb.occupancy() <= tlb.capacity

    def test_invalidate(self):
        from repro.kernel.pagetable import PTE

        tlb = TLB(entries=8, ways=2)
        tlb.insert(3, PTE(3))
        assert tlb.invalidate(3)
        assert not tlb.invalidate(3)
        tlb.insert(4, PTE(4))
        tlb.insert(5, PTE(5))
        assert tlb.invalidate_range(4, 6) == 2


class TestMMU:
    def _mmu(self):
        pt = PageTable()
        return MMU(pt), pt

    def test_translation_and_caching(self):
        mmu, pt = self._mmu()
        pt.map(0x10, 0x99)
        paddr, cycles = mmu.translate((0x10 << 12) | 0x123)
        assert paddr == (0x99 << 12) | 0x123
        assert cycles >= mmu.costs.pagewalk  # first access walks
        _, cycles2 = mmu.translate((0x10 << 12) | 0x456)
        assert cycles2 == 0  # DTLB hit is free
        assert mmu.stats.dtlb_misses == 1
        assert mmu.stats.pagewalks == 1

    def test_fault_on_unmapped(self):
        mmu, _ = self._mmu()
        with pytest.raises(PageFault) as info:
            mmu.translate(0x5000)
        assert not info.value.present

    def test_fault_on_protection(self):
        mmu, pt = self._mmu()
        pt.map(1, 2, PTE_PRESENT)  # read-only
        mmu.translate(1 << 12, "read")
        with pytest.raises(PageFault) as info:
            mmu.translate(1 << 12, "write")
        assert info.value.present

    def test_stlb_catches_dtlb_evictions(self):
        mmu, pt = self._mmu()
        # Touch more pages than the 64-entry DTLB holds but fewer than the
        # STLB: second sweep must hit the STLB, not walk.
        for vpn in range(128):
            pt.map(vpn, vpn + 1000)
        for vpn in range(128):
            mmu.translate(vpn << 12)
        walks_after_first_sweep = mmu.stats.pagewalks
        for vpn in range(128):
            mmu.translate(vpn << 12)
        assert mmu.stats.pagewalks == walks_after_first_sweep

    def test_dirty_bit_set_on_write(self):
        from repro.kernel.pagetable import PTE_DIRTY

        mmu, pt = self._mmu()
        pt.map(3, 4)
        mmu.translate(3 << 12, "write")
        assert pt.lookup(3).flags & PTE_DIRTY

    def test_invalidate_forces_rewalk(self):
        mmu, pt = self._mmu()
        pt.map(7, 8)
        mmu.translate(7 << 12)
        mmu.invalidate_page(7)
        mmu.translate(7 << 12)
        assert mmu.stats.pagewalks == 2

    def test_mpki_metric(self):
        mmu, pt = self._mmu()
        pt.map(1, 1)
        mmu.translate(1 << 12)
        assert mmu.stats.dtlb_mpki(1000) == 1.0
