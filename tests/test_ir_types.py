"""Type system: construction, equality, data layout."""

import pytest

from repro.errors import IRTypeError
from repro.ir.types import (
    ArrayType,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    VOID,
    align_of,
    ptr,
    size_of,
    stride_of,
    struct_field_offset,
)


class TestIntTypes:
    def test_interning(self):
        assert IntType(64) is I64
        assert IntType(32) is I32

    def test_equality_and_hash(self):
        assert IntType(64) == I64
        assert hash(IntType(8)) == hash(I8)
        assert I8 != I16

    def test_invalid_width_rejected(self):
        with pytest.raises(IRTypeError):
            IntType(0)
        with pytest.raises(IRTypeError):
            IntType(256)

    def test_signed_bounds(self):
        assert I8.min_signed == -128
        assert I8.max_signed == 127
        assert I8.max_unsigned == 255

    def test_wrap_signed(self):
        assert I8.wrap(130) == -126
        assert I8.wrap(-130) == 126
        assert I64.wrap(2**63) == -(2**63)

    def test_wrap_unsigned(self):
        assert I8.wrap_unsigned(-1) == 255
        assert I16.wrap_unsigned(65536) == 0

    def test_predicates(self):
        assert I64.is_integer
        assert not I64.is_float
        assert I64.is_first_class


class TestFloatAndVoid:
    def test_float_str(self):
        assert str(F64) == "f64"
        assert str(FloatType(32)) == "f32"

    def test_invalid_float(self):
        with pytest.raises(IRTypeError):
            FloatType(16)

    def test_void(self):
        assert VOID.is_void
        assert not VOID.is_first_class
        assert VOID == VOID


class TestPointerArrayStruct:
    def test_pointer(self):
        p = ptr(I64)
        assert p.pointee == I64
        assert str(p) == "i64*"
        assert ptr(I64) == ptr(I64)
        assert ptr(I64) != ptr(I32)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(IRTypeError):
            PointerType(VOID)

    def test_array(self):
        a = ArrayType(I32, 10)
        assert str(a) == "[10 x i32]"
        assert a == ArrayType(I32, 10)
        assert a != ArrayType(I32, 11)

    def test_negative_array_rejected(self):
        with pytest.raises(IRTypeError):
            ArrayType(I32, -1)

    def test_named_struct_equality_by_name(self):
        a = StructType([I64], name="node")
        b = StructType([I64, I64], name="node")
        assert a == b  # name wins

    def test_literal_struct_structural_equality(self):
        assert StructType([I64, F64]) == StructType([I64, F64])
        assert StructType([I64]) != StructType([I32])

    def test_field_index(self):
        s = StructType([I64, F64], field_names=["a", "b"])
        assert s.field_index("b") == 1
        with pytest.raises(IRTypeError):
            s.field_index("zzz")

    def test_function_type(self):
        ft = FunctionType(I64, [ptr(I8), I64])
        assert str(ft) == "i64 (i8*, i64)"
        assert ft == FunctionType(I64, [ptr(I8), I64])
        assert ft != FunctionType(I64, [ptr(I8), I64], vararg=True)


class TestLayout:
    def test_scalar_sizes(self):
        assert size_of(I1) == 1
        assert size_of(I8) == 1
        assert size_of(I16) == 2
        assert size_of(I32) == 4
        assert size_of(I64) == 8
        assert size_of(F64) == 8
        assert size_of(ptr(I8)) == 8

    def test_array_size(self):
        assert size_of(ArrayType(I32, 10)) == 40
        assert size_of(ArrayType(ptr(I8), 3)) == 24

    def test_struct_padding(self):
        # {i8, i64} pads the i8 to 8 bytes.
        s = StructType([I8, I64])
        assert size_of(s) == 16
        assert struct_field_offset(s, 0) == 0
        assert struct_field_offset(s, 1) == 8

    def test_struct_tail_padding(self):
        # {i64, i8} is 16 bytes (tail padded to alignment 8).
        s = StructType([I64, I8])
        assert size_of(s) == 16

    def test_align(self):
        assert align_of(I8) == 1
        assert align_of(I64) == 8
        assert align_of(StructType([I8, I32])) == 4

    def test_stride(self):
        s = StructType([I32, I8])  # size 5+pad -> 8 stride
        assert stride_of(s) == 8

    def test_nested_aggregate(self):
        inner = StructType([I64, I8])
        outer = StructType([I8, inner, I32])
        assert struct_field_offset(outer, 1) == 8
        assert struct_field_offset(outer, 2) == 24

    def test_offset_out_of_range(self):
        s = StructType([I64])
        with pytest.raises(IRTypeError):
            struct_field_offset(s, 5)
