"""Multi-threaded execution and multi-thread world stops."""

import pytest

from repro.carat import compile_carat
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.threads import ThreadGroup, ThreadSpec

PARALLEL_SUM = """
// Three workers sum disjoint slices of a shared heap array into
// per-worker globals; main() is unused (threads drive the work).
long results[4];
long *shared;

void setup(long n) {
  shared = (long*)malloc(sizeof(long) * n);
  long i;
  for (i = 0; i < n; i++) { shared[i] = i; }
}

void worker(long tid, long lo, long hi) {
  long s = 0;
  long i;
  for (i = lo; i < hi; i++) { s += shared[i]; }
  results[tid] = s;
}

void main() { }
"""

LIST_WORKERS = """
struct Node { long value; struct Node *next; };
struct Node *lists[4];
long sums[4];

void builder(long tid, long n) {
  long i;
  for (i = 0; i < n; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = tid * 1000 + i;
    node->next = lists[tid];
    lists[tid] = node;
  }
  long s = 0;
  struct Node *p = lists[tid];
  while (p != null) { s += p->value; p = p->next; }
  sums[tid] = s;
}

void main() { }
"""


def _group(source, specs, quantum=300):
    binary = compile_carat(source, module_name="mt")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    group = ThreadGroup(process, kernel, specs, quantum=quantum)
    return kernel, process, group


class TestScheduling:
    def test_three_workers_share_memory(self):
        n = 120
        kernel, process, group = _group(
            PARALLEL_SUM,
            [
                ThreadSpec("setup", (n,)),
                # Workers read `shared` only after setup writes it; give
                # setup a head start by scheduling it as thread 0 with a
                # quantum large enough to finish its init loop first.
                ThreadSpec("worker", (1, 0, 40)),
                ThreadSpec("worker", (2, 40, 80)),
                ThreadSpec("worker", (3, 80, 120)),
            ],
            quantum=5_000,
        )
        group.run_to_completion()
        mem = kernel.memory
        results_base = process.globals_map["results"]
        totals = [mem.read_int(results_base + 8 * i, 8) for i in range(4)]
        assert totals[1] == sum(range(0, 40))
        assert totals[2] == sum(range(40, 80))
        assert totals[3] == sum(range(80, 120))

    def test_each_thread_has_its_own_stack(self):
        kernel, process, group = _group(
            LIST_WORKERS,
            [ThreadSpec("builder", (i, 20)) for i in range(3)],
        )
        bases = {t.stack_base for t in group.threads}
        assert len(bases) == 3  # distinct stacks
        # Extra-thread stacks live in the heap region and are tracked.
        for thread in group.threads[1:]:
            allocation = process.runtime.table.find_containing(
                thread.stack_top - 8
            )
            assert allocation is not None
            assert allocation.kind == "stack"

    def test_round_robin_interleaves(self):
        kernel, process, group = _group(
            LIST_WORKERS,
            [ThreadSpec("builder", (i, 30)) for i in range(2)],
            quantum=100,
        )
        rounds = 0
        while group.run_round():
            rounds += 1
            # After any round, both threads have made progress.
            if rounds == 2:
                progress = [t.stats.instructions for t in group.threads]
                assert all(p > 0 for p in progress)
        assert rounds > 2  # genuinely interleaved, not run-to-completion


class TestMultiThreadWorldStop:
    def test_concurrent_builders_survive_page_moves(self):
        kernel, process, group = _group(
            LIST_WORKERS,
            [ThreadSpec("builder", (i, 40)) for i in range(4)],
            quantum=250,
        )
        moves = 0
        while group.run_round():
            victim = process.runtime.worst_case_allocation()
            if victim is None or victim.kind == "code":
                continue
            snaps = group.stop_the_world()
            kernel.request_page_move(
                process,
                victim.address & ~(PAGE_SIZE - 1),
                register_snapshots=snaps,
                thread_count=len(group.threads),
            )
            group.resume_after()
            moves += 1
        assert moves >= 3
        mem = kernel.memory
        sums_base = process.globals_map["sums"]
        for tid in range(4):
            expected = sum(tid * 1000 + i for i in range(40))
            assert mem.read_int(sums_base + 8 * tid, 8) == expected

    def test_stop_collects_snapshot_per_thread(self):
        kernel, process, group = _group(
            LIST_WORKERS,
            [ThreadSpec("builder", (i, 30)) for i in range(3)],
        )
        group.run_round()
        snaps = group.stop_the_world()
        assert process.runtime.is_stopped
        # At least one snapshot per live thread (one per frame).
        assert len(snaps) >= len(group.alive)
        group.resume_after()
        assert not process.runtime.is_stopped

    def test_resume_requires_stop(self):
        from repro.errors import InterpError

        kernel, process, group = _group(
            LIST_WORKERS, [ThreadSpec("builder", (0, 5))]
        )
        with pytest.raises(InterpError):
            group.resume_after()

    def test_stop_cost_scales_with_threads(self):
        kernel, process, group = _group(
            LIST_WORKERS,
            [ThreadSpec("builder", (i, 10)) for i in range(4)],
        )
        group.run_round()
        cycles = process.runtime.world_stop(thread_count=4)
        process.runtime.resume()
        single = process.runtime.world_stop(thread_count=1)
        process.runtime.resume()
        assert cycles == 4 * single
