"""The memory-policy engine (``repro.policy``) and its substrate:
tiered physical memory, frame-allocator introspection, heat tracking,
fragmentation scoring, the compaction daemon, the tiering balancer, and
the ``PolicyEngine`` epoch loop wired through ``Kernel.advance_clock``.
"""

import pytest

from repro.carat.pipeline import compile_carat
from repro.errors import OutOfMemoryError, ReproError
from repro.kernel.kernel import Kernel
from repro.kernel.mmu_notifier import EventKind
from repro.kernel.pagetable import PAGE_SHIFT, PAGE_SIZE
from repro.kernel.physmem import FrameAllocator, PhysicalMemory
from repro.machine.costs import CostModel
from tests.support import run_carat
from repro.machine.interp import Interpreter
from repro.policy import (
    CompactionDaemon,
    EpochBudget,
    HeatTracker,
    PolicyEngine,
    TieringBalancer,
    assess_fragmentation,
    scatter_capsule,
)
from repro.policy.moves import estimate_move_cycles
from repro.runtime.allocation_table import AllocationTable
from tests.conftest import SUM_SOURCE

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# FrameAllocator occupancy / fragmentation counters
# ---------------------------------------------------------------------------


class TestFrameAllocatorIntrospection:
    def test_occupancy_tracks_alloc_and_free(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4)
        assert frames.occupancy() == 0.0
        assert frames.usable_frames == 60
        start = frames.alloc(10)
        assert frames.allocated_frames == 10
        assert frames.occupancy() == pytest.approx(10 / 60)
        assert frames.free_frames == 50
        frames.free(start, 10)
        assert frames.occupancy() == 0.0

    def test_free_runs_reflect_holes(self):
        frames = FrameAllocator(32 * PAGE_SIZE, reserve_low=4)
        base = frames.alloc(28)  # fill everything usable
        assert base == 4
        assert frames.free_runs() == []
        frames.free(6, 2)
        frames.free(12, 5)
        frames.free(30, 2)
        assert frames.free_runs() == [(6, 2), (12, 5), (30, 2)]
        assert frames.largest_free_run() == 5

    def test_largest_free_run_fresh_allocator(self):
        frames = FrameAllocator(32 * PAGE_SIZE, reserve_low=4)
        assert frames.free_runs() == [(4, 28)]
        assert frames.largest_free_run() == 28

    def test_tiered_alloc_respects_bounds(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4, fast_frames=16)
        assert frames.tiered
        assert frames.tier_bounds("fast") == (4, 16)
        assert frames.tier_bounds("slow") == (16, 64)
        fast = frames.alloc(4, tier="fast")
        slow = frames.alloc(4, tier="slow")
        assert 4 <= fast and fast + 4 <= 16
        assert 16 <= slow
        assert frames.tier_of_frame(fast) == "fast"
        assert frames.tier_of_frame(slow) == "slow"
        assert frames.free_frames_in("fast") == 12 - 4

    def test_tier_exhaustion_raises(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4, fast_frames=16)
        frames.alloc(12, tier="fast")
        with pytest.raises(OutOfMemoryError):
            frames.alloc(1, tier="fast")
        # The slow tier is unaffected.
        frames.alloc(40, tier="slow")

    def test_untiered_allocator_rejects_tier_requests(self):
        frames = FrameAllocator(64 * PAGE_SIZE)
        with pytest.raises(ReproError):
            frames.alloc(1, tier="fast")

    def test_bad_fast_frames_rejected(self):
        with pytest.raises(ReproError):
            FrameAllocator(64 * PAGE_SIZE, reserve_low=16, fast_frames=8)
        with pytest.raises(ReproError):
            FrameAllocator(64 * PAGE_SIZE, reserve_low=16, fast_frames=64)


class TestPhysicalMemoryTiers:
    def test_tier_of_address(self):
        memory = PhysicalMemory(64 * PAGE_SIZE, fast_size=16 * PAGE_SIZE)
        assert memory.tiered
        assert memory.tier_of(0) == "fast"
        assert memory.tier_of(16 * PAGE_SIZE - 1) == "fast"
        assert memory.tier_of(16 * PAGE_SIZE) == "slow"

    def test_untiered_memory(self):
        memory = PhysicalMemory(64 * PAGE_SIZE)
        assert not memory.tiered
        assert memory.tier_of(0) is None

    def test_unaligned_fast_size_rejected(self):
        with pytest.raises(ReproError):
            PhysicalMemory(64 * PAGE_SIZE, fast_size=PAGE_SIZE + 1)


# ---------------------------------------------------------------------------
# Fragmentation scoring
# ---------------------------------------------------------------------------


class TestFragmentation:
    def test_single_run_scores_zero(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4)
        report = assess_fragmentation(frames)
        assert report.external_fragmentation == 0.0
        assert report.free_run_count == 1
        assert report.largest_free_run == 60

    def test_shattered_memory_scores_high(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4)
        frames.alloc(60)
        # Punch 15 single-frame holes: every free run has length 1.
        for frame in range(4, 64, 4):
            frames.free(frame, 1)
        report = assess_fragmentation(frames)
        assert report.free_frames == 15
        assert report.largest_free_run == 1
        assert report.external_fragmentation == pytest.approx(1 - 1 / 15)
        assert report.run_histogram == {1: 15}

    def test_full_memory_scores_zero(self):
        frames = FrameAllocator(32 * PAGE_SIZE, reserve_low=4)
        frames.alloc(28)
        report = assess_fragmentation(frames)
        assert report.free_frames == 0
        assert report.external_fragmentation == 0.0

    def test_tier_scoped_assessment(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4, fast_frames=16)
        frames.alloc(10, tier="slow")
        fast = assess_fragmentation(frames, "fast")
        slow = assess_fragmentation(frames, "slow")
        assert fast.total_frames == 12 and fast.free_frames == 12
        assert slow.total_frames == 48 and slow.free_frames == 38

    def test_describe_mentions_efi(self):
        frames = FrameAllocator(64 * PAGE_SIZE, reserve_low=4)
        assert "EFI" in assess_fragmentation(frames).describe()


# ---------------------------------------------------------------------------
# Heat tracking
# ---------------------------------------------------------------------------


class TestHeatTracker:
    def test_sampling_period(self):
        heat = HeatTracker(sample_period=4)
        for _ in range(8):
            heat.observe(0x1000, 8, "read")
        assert heat.accesses_seen == 8
        assert heat.samples_taken == 2

    def test_scores_decay_and_prune(self):
        heat = HeatTracker(decay=0.5)
        heat.observe(4 * PAGE_SIZE, 8, "write")
        heat.end_epoch()
        page = 4
        assert heat.score(page) == 1.0
        heat.end_epoch()
        assert heat.score(page) == 0.5
        for _ in range(20):  # 0.5 * 0.5^20 is far below the prune floor
            heat.end_epoch()
        assert heat.score(page) == 0.0
        assert page not in heat.scores

    def test_live_window_counts_before_epoch_end(self):
        heat = HeatTracker()
        heat.observe(0, 8, "read")
        assert heat.score(0) == 1

    def test_ranked_hottest_first_deterministic_ties(self):
        heat = HeatTracker()
        for _ in range(3):
            heat.observe(7 * PAGE_SIZE, 8, "read")
        heat.observe(2 * PAGE_SIZE, 8, "read")
        heat.observe(9 * PAGE_SIZE, 8, "read")
        assert heat.ranked() == [(7, 3), (2, 1), (9, 1)]
        assert heat.hottest(1) == [(7, 3)]

    def test_install_chains_existing_probe(self):
        calls = []

        class FakeInterp:
            access_probe = None

        interp = FakeInterp()
        interp.access_probe = lambda a, s, k: calls.append((a, s, k))
        heat = HeatTracker()
        heat.install(interp)
        interp.access_probe(0x2000, 8, "read")
        assert calls == [(0x2000, 8, "read")]
        assert heat.accesses_seen == 1

    def test_allocation_heat_aggregates_pages(self):
        table = AllocationTable()
        cold = table.add(1 * PAGE_SIZE, 64)
        hot = table.add(2 * PAGE_SIZE, 2 * PAGE_SIZE)  # spans pages 2-3
        heat = HeatTracker()
        heat.observe(1 * PAGE_SIZE, 8, "read")
        for _ in range(2):
            heat.observe(2 * PAGE_SIZE, 8, "read")
        for _ in range(2):
            heat.observe(3 * PAGE_SIZE + 8, 8, "write")
        ranked = heat.allocation_heat(table)
        assert ranked == [(hot, 4.0), (cold, 1.0)]

    def test_allocation_heat_skips_untracked_pages(self):
        table = AllocationTable()
        heat = HeatTracker()
        heat.observe(5 * PAGE_SIZE, 8, "read")
        assert heat.allocation_heat(table) == []


# ---------------------------------------------------------------------------
# Tier cost accounting (CostModel + Interpreter)
# ---------------------------------------------------------------------------


class TestTierCosts:
    def test_cost_model_tier_access_extra(self):
        costs = CostModel()
        assert costs.tier_access_extra("fast") == costs.fast_tier_access
        assert costs.tier_access_extra("slow") == costs.slow_tier_access
        with pytest.raises(ValueError):
            costs.tier_access_extra("lukewarm")

    def test_interpreter_charges_slow_tier(self):
        kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
        result = run_carat(SUM_SOURCE, kernel=kernel, heap_size=256 * 1024,
                           stack_size=64 * 1024)
        assert result.exit_code == 0
        stats = result.stats
        # The capsule is placed in the slow (capacity) tier.
        assert stats.slow_tier_accesses > 0
        assert stats.fast_tier_accesses == 0
        assert stats.tier_cycles == (
            stats.fast_tier_accesses * kernel.costs.fast_tier_access
            + stats.slow_tier_accesses * kernel.costs.slow_tier_access
        )
        assert stats.hot_tier_share() == 0.0

    def test_untiered_kernel_charges_nothing(self):
        result = run_carat(SUM_SOURCE)
        assert result.stats.tier_cycles == 0
        assert result.stats.slow_tier_accesses == 0

    def test_tier_premium_shows_up_in_cycles(self):
        plain = run_carat(SUM_SOURCE)
        tiered = run_carat(
            SUM_SOURCE,
            kernel=Kernel(memory_size=16 * MB, fast_memory=1 * MB),
            heap_size=256 * 1024,
            stack_size=64 * 1024,
        )
        assert tiered.output == plain.output
        assert tiered.cycles == plain.cycles + tiered.stats.tier_cycles


# ---------------------------------------------------------------------------
# Budgets and cost estimation
# ---------------------------------------------------------------------------


class TestEpochBudget:
    def test_budget_arithmetic(self):
        budget = EpochBudget(1000)
        assert budget.can_afford(1000)
        assert not budget.can_afford(1001)
        budget.charge(400)
        assert budget.remaining == 600
        assert budget.can_afford(600)
        assert not budget.can_afford(601)

    def test_estimate_is_upper_bound_of_real_move(self):
        kernel = Kernel(memory_size=16 * MB)
        binary = compile_carat(SUM_SOURCE)
        process = kernel.load_carat(
            binary, heap_size=256 * 1024, stack_size=64 * 1024
        )
        runtime = process.runtime
        lo = min(r.base for r in process.regions)
        plan = runtime.patcher.plan_move(lo, lo + 4 * PAGE_SIZE)
        estimate = estimate_move_cycles(kernel, runtime, plan)
        _, _, actual = kernel.request_page_move(process, plan.lo, plan.page_count)
        assert 0 < actual <= estimate


# ---------------------------------------------------------------------------
# Compaction daemon
# ---------------------------------------------------------------------------


def _load_sum(kernel):
    binary = compile_carat(SUM_SOURCE)
    return kernel.load_carat(binary, heap_size=256 * 1024, stack_size=64 * 1024)


class TestCompactionDaemon:
    def test_scatter_then_pack_restores_contiguity(self):
        kernel = Kernel(memory_size=16 * MB)
        process = _load_sum(kernel)
        scatter_capsule(kernel, process)
        before = assess_fragmentation(kernel.frames)
        assert before.external_fragmentation > 0.5

        daemon = CompactionDaemon(kernel, process, target_fragmentation=0.05)
        moves = daemon.run_epoch(EpochBudget(10_000_000))
        after = assess_fragmentation(kernel.frames)
        assert moves > 0
        assert after.external_fragmentation <= 0.05
        assert after.free_frames == before.free_frames  # nothing leaked

        # The program still runs correctly on its relocated capsule.
        interp = Interpreter(process, kernel)
        interp.resync_stack_pointer()
        assert interp.run("main") == 0
        assert interp.output[-1] == str(sum(range(64)))

    def test_insufficient_budget_skips_and_spends_nothing(self):
        kernel = Kernel(memory_size=16 * MB)
        process = _load_sum(kernel)
        scatter_capsule(kernel, process)
        daemon = CompactionDaemon(kernel, process, target_fragmentation=0.05)
        budget = EpochBudget(10)
        assert daemon.run_epoch(budget) == 0
        assert budget.spent == 0
        assert budget.skipped == 1

    def test_rejects_non_carat_process(self):
        kernel = Kernel(memory_size=16 * MB)
        binary = compile_carat(
            SUM_SOURCE, options=None, module_name="prog"
        )
        from repro.carat.pipeline import compile_baseline

        trad = kernel.load_traditional(compile_baseline(SUM_SOURCE))
        with pytest.raises(ValueError):
            CompactionDaemon(kernel, trad)


# ---------------------------------------------------------------------------
# Tiering balancer
# ---------------------------------------------------------------------------


class TestTieringBalancer:
    def _tiered_setup(self, fast_frames=48):
        kernel = Kernel(
            memory_size=16 * MB, fast_memory=fast_frames * PAGE_SIZE
        )
        process = _load_sum(kernel)
        heat = HeatTracker()
        balancer = TieringBalancer(
            kernel, process, heat, max_allocation_pages=20
        )
        return kernel, process, heat, balancer

    def _heat_up(self, heat, allocation, amount=100):
        for page in range(
            allocation.address >> PAGE_SHIFT,
            ((allocation.end - 1) >> PAGE_SHIFT) + 1,
        ):
            heat.scores[page] = float(amount)

    def test_promotes_hot_slow_allocation(self):
        kernel, process, heat, balancer = self._tiered_setup()
        table = process.runtime.table
        victim = next(a for a in table if a.kind == "global")
        assert kernel.memory.tier_of(victim.address) == "slow"
        self._heat_up(heat, victim)
        moves = balancer.run_epoch(EpochBudget(10_000_000))
        assert moves >= 1
        assert balancer.promotions >= 1
        assert kernel.memory.tier_of(victim.address) == "fast"

    def test_no_promotion_without_heat(self):
        _, _, _, balancer = self._tiered_setup()
        assert balancer.run_epoch(EpochBudget(10_000_000)) == 0
        assert balancer.promotions == 0

    def test_demotes_under_pressure_only(self):
        kernel, process, heat, balancer = self._tiered_setup(fast_frames=20)
        # Usable fast tier: frames 16..20 (reserve_low is 16) = 4 frames.
        table = process.runtime.table
        globals_alloc = next(a for a in table if a.kind == "global")
        code_alloc = next(a for a in table if a.kind == "code")
        self._heat_up(heat, globals_alloc)
        balancer.run_epoch(EpochBudget(10_000_000))
        assert kernel.memory.tier_of(globals_alloc.address) == "fast"
        fast_free = kernel.frames.free_frames_in("fast")
        # Fill whatever fast space is left so the next promotion needs
        # an eviction.
        if fast_free:
            kernel.frames.alloc(fast_free, tier="fast")

        # Next epoch: globals went cold, code is now the hot thing.
        heat.scores.clear()
        self._heat_up(heat, code_alloc)
        balancer.run_epoch(EpochBudget(10_000_000))
        assert balancer.demotions == 1
        assert kernel.memory.tier_of(globals_alloc.address) == "slow"
        assert kernel.memory.tier_of(code_alloc.address) == "fast"

    def test_never_demotes_something_hotter_than_incoming(self):
        kernel, process, heat, balancer = self._tiered_setup(fast_frames=20)
        table = process.runtime.table
        globals_alloc = next(a for a in table if a.kind == "global")
        code_alloc = next(a for a in table if a.kind == "code")
        self._heat_up(heat, globals_alloc, amount=100)
        balancer.run_epoch(EpochBudget(10_000_000))
        fast_free = kernel.frames.free_frames_in("fast")
        if fast_free:
            kernel.frames.alloc(fast_free, tier="fast")
        # code is warm but cooler than the resident: no eviction happens.
        self._heat_up(heat, code_alloc, amount=10)
        balancer.run_epoch(EpochBudget(10_000_000))
        assert balancer.demotions == 0
        assert kernel.memory.tier_of(code_alloc.address) == "slow"

    def test_requires_tiered_kernel(self):
        kernel = Kernel(memory_size=16 * MB)
        process = _load_sum(kernel)
        with pytest.raises(ValueError):
            TieringBalancer(kernel, process, HeatTracker())


# ---------------------------------------------------------------------------
# PolicyEngine + Kernel.advance_clock + MMU-notifier interplay
# ---------------------------------------------------------------------------


class TestAdvanceClock:
    def test_advance_clock_accumulates_and_notifies_policy(self):
        kernel = Kernel(memory_size=16 * MB)
        seen = []

        class Probe:
            def on_clock(self, k):
                seen.append(k.clock_cycles)

        kernel.attach_policy(Probe())
        kernel.advance_clock(100)
        kernel.advance_clock(50)
        assert kernel.clock_cycles == 150
        assert seen == [100, 150]

    def test_advance_clock_without_policy(self):
        kernel = Kernel(memory_size=16 * MB)
        kernel.advance_clock(75)
        assert kernel.clock_cycles == 75


class TestPolicyEngineIntegration:
    def _run_with_engine(self, **engine_kw):
        kernel = Kernel(
            memory_size=16 * MB,
            fast_memory=1 * MB,
            keep_notifier_events=True,
        )
        engine = None

        def setup(interpreter):
            nonlocal engine
            # SUM is a short program (~6k cycles); tick and epoch often
            # enough to see several policy epochs within it.
            interpreter.set_tick_interval(100)
            process = interpreter.process
            scatter_capsule(kernel, process, interpreter=interpreter)
            heat = HeatTracker()
            engine = PolicyEngine(
                kernel,
                process,
                epoch_cycles=1_000,
                budget_cycles=200_000,
                heat=heat,
                compaction=CompactionDaemon(kernel, process),
                tiering=TieringBalancer(
                    kernel, process, heat, max_allocation_pages=40
                ),
                **engine_kw,
            )
            engine.attach(interpreter)

        result = run_carat(
            SUM_SOURCE,
            kernel=kernel,
            heap_size=256 * 1024,
            stack_size=64 * 1024,
            setup=setup,
        )
        return kernel, engine, result

    def test_epochs_fire_and_budgets_hold(self):
        kernel, engine, result = self._run_with_engine()
        assert result.exit_code == 0
        stats = engine.stats
        assert stats.epochs > 0
        assert stats.total_moves > 0
        assert stats.budgets_respected
        assert len(stats.epoch_move_cycles) == stats.epochs
        assert len(stats.frag_history) == stats.epochs
        assert kernel.clock_cycles > 0

    def test_policy_moves_appear_in_notifier_trace(self):
        kernel, engine, result = self._run_with_engine()
        stats = engine.stats
        events = kernel.notifier.events
        by_reason = {}
        for event in events:
            by_reason.setdefault(event.detail, []).append(event)
        for reason, counter in (
            ("policy-compaction", stats.compaction_moves),
            ("policy-promote", stats.promotions),
            ("policy-demote", stats.demotions),
        ):
            assert len(by_reason.get(reason, [])) == counter
            assert all(
                e.kind is EventKind.PTE_CHANGE for e in by_reason.get(reason, [])
            )
        # The policy performed at least one labelled move of each family
        # the scenario exercises.
        assert stats.compaction_moves > 0
        assert stats.promotions > 0

    def test_stats_describe_is_printable(self):
        _, engine, _ = self._run_with_engine()
        text = engine.stats.describe()
        assert "epoch" in text and "respected" in text
