"""The kernel facade: loading (both models), faults, page moves,
protection changes, the notifier trace, and swapping."""

import pytest

from repro.carat import CompileOptions, compile_baseline, compile_carat
from repro.errors import ProtectionFault, SegmentationFault, SigningError
from repro.kernel import Kernel, PAGE_SIZE
from repro.kernel.loader import constant_to_bytes, static_footprint_pages
from repro.kernel.mmu import PageFault
from repro.kernel.mmu_notifier import EventKind
from repro.kernel.swap import NONCANONICAL_BASE, SwapManager, is_noncanonical
from repro.machine.interp import Interpreter
from repro.runtime.regions import PERM_READ, PERM_RW, PERM_RWX
from tests.conftest import LINKED_LIST_SOURCE, SUM_SOURCE


@pytest.fixture(scope="module")
def sum_binary():
    return compile_carat(SUM_SOURCE, module_name="sum")


@pytest.fixture(scope="module")
def baseline_binary():
    return compile_baseline(SUM_SOURCE, module_name="sum")


class TestLoaderSerialization:
    def test_constant_to_bytes_int(self):
        from repro.ir import ConstantInt
        from repro.ir.types import I32, I64

        assert constant_to_bytes(ConstantInt(I64, -1), I64) == b"\xff" * 8
        assert constant_to_bytes(ConstantInt(I32, 0x1234), I32) == b"\x34\x12\x00\x00"

    def test_constant_to_bytes_float(self):
        import struct

        from repro.ir import ConstantFloat
        from repro.ir.types import F64

        assert constant_to_bytes(ConstantFloat(F64, 1.5), F64) == struct.pack("<d", 1.5)

    def test_constant_to_bytes_aggregates(self):
        from repro.ir import ConstantArray, ConstantInt, ConstantZero
        from repro.ir.types import ArrayType, I16

        ty = ArrayType(I16, 3)
        arr = ConstantArray(ty, [ConstantInt(I16, 1), ConstantInt(I16, 2), ConstantInt(I16, 3)])
        assert constant_to_bytes(arr, ty) == b"\x01\x00\x02\x00\x03\x00"
        assert constant_to_bytes(ConstantZero(ty), ty) == b"\x00" * 6

    def test_struct_with_padding(self):
        from repro.ir import ConstantInt, ConstantStruct
        from repro.ir.types import I8, I64, StructType

        ty = StructType([I8, I64])
        c = ConstantStruct(ty, [ConstantInt(I8, 0xAB), ConstantInt(I64, 1)])
        blob = constant_to_bytes(c, ty)
        assert len(blob) == 16
        assert blob[0] == 0xAB
        assert blob[8] == 1

    def test_static_footprint(self, sum_binary):
        pages = static_footprint_pages(sum_binary)
        assert pages >= 2  # at least one code + one globals page


class TestCaratLoading:
    def test_load_layout_contiguous(self, sum_binary):
        kernel = Kernel()
        process = kernel.load_carat(sum_binary)
        layout = process.layout
        # Dark capsule: stack < globals < code < heap, all contiguous.
        assert layout.stack_base < layout.globals_base < layout.code_base < layout.heap_base
        assert layout.globals_base == layout.stack_base + layout.stack_size
        assert len(process.regions) == 1  # single optimal region

    def test_static_allocations_recorded(self, sum_binary):
        kernel = Kernel()
        process = kernel.load_carat(sum_binary)
        table = process.runtime.table
        kinds = {a.kind for a in table}
        assert "global" in kinds and "stack" in kinds and "code" in kinds
        # Both globals (@N, @total) present.
        assert table.find_containing(process.globals_map["N"]) is not None

    def test_global_initializers_written(self, sum_binary):
        kernel = Kernel()
        process = kernel.load_carat(sum_binary)
        assert kernel.memory.read_u64(process.globals_map["N"]) == 64
        assert kernel.memory.read_u64(process.globals_map["total"]) == 0

    def test_unsigned_binary_rejected(self):
        binary = compile_carat(SUM_SOURCE, CompileOptions(sign=False))
        kernel = Kernel()
        with pytest.raises(SigningError):
            kernel.load_carat(binary)

    def test_untrusted_toolchain_rejected(self, sum_binary):
        kernel = Kernel(trusted_toolchains={"other-compiler"})
        with pytest.raises(SigningError):
            kernel.load_carat(sum_binary)

    def test_tampered_binary_rejected(self, baseline_binary):
        import copy

        from repro.ir import ConstantInt, GlobalVariable
        from repro.ir.types import I64

        binary = compile_carat(SUM_SOURCE)
        binary.module.add_global(GlobalVariable("sneak", I64, ConstantInt(I64, 1)))
        kernel = Kernel()
        with pytest.raises(SigningError):
            kernel.load_carat(binary)


class TestTraditionalLoading:
    def test_virtual_layout(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        assert process.page_table is not None
        assert process.mmu is not None
        assert process.initial_pages > 0
        # Code and globals are mapped; the heap is not.
        assert process.page_table.is_mapped(process.layout.code_base >> 12)
        assert not process.page_table.is_mapped(process.layout.heap_base >> 12)

    def test_globals_written_through_page_table(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        vaddr = process.globals_map["N"]
        pte = process.page_table.lookup(vaddr >> 12)
        paddr = (pte.pfn << 12) | (vaddr & 0xFFF)
        assert kernel.memory.read_u64(paddr) == 64


class TestDemandPaging:
    def test_fault_in_heap_allocates(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        heap_vaddr = process.layout.heap_base + 0x2000
        fault = PageFault(heap_vaddr, "write", present=False)
        cycles = kernel.handle_page_fault(process, fault)
        assert cycles > 0
        assert process.page_table.is_mapped(heap_vaddr >> 12)
        assert process.demand_page_allocs == 1
        assert kernel.notifier.page_allocs == 1

    def test_fault_outside_segments_is_segfault(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        with pytest.raises(SegmentationFault):
            kernel.handle_page_fault(
                process, PageFault(0xDEAD00000000, "read", present=False)
            )

    def test_stack_grows_on_demand(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        deep = process.layout.stack_top - 16 * PAGE_SIZE
        kernel.handle_page_fault(process, PageFault(deep, "write", present=False))
        assert process.page_table.is_mapped(deep >> 12)


class TestTraditionalMoves:
    def test_move_page(self, baseline_binary):
        kernel = Kernel()
        process = kernel.load_traditional(baseline_binary)
        vaddr = process.globals_map["N"]
        vpn = vaddr >> 12
        old_pfn = process.page_table.lookup(vpn).pfn
        kernel.move_page_traditional(process, vaddr)
        new_pfn = process.page_table.lookup(vpn).pfn
        assert new_pfn != old_pfn
        # Contents preserved at the new frame.
        paddr = (new_pfn << 12) | (vaddr & 0xFFF)
        assert kernel.memory.read_u64(paddr) == 64
        assert kernel.notifier.page_moves == 1
        assert kernel.notifier.counts[EventKind.INVALIDATE_RANGE] == 1


class TestCaratChanges:
    def _loaded(self):
        binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        return kernel, process, interp

    def test_page_move_midrun_preserves_semantics(self):
        kernel, process, interp = self._loaded()
        interp.start("main")
        interp.run_steps(1200)
        victim = process.runtime.worst_case_allocation()
        snaps = interp.register_snapshots()
        plan, cost, cycles = kernel.request_page_move(
            process, victim.address & ~(PAGE_SIZE - 1), register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        assert cost.total > 0
        assert cycles > cost.total  # includes the world stop
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_move_updates_regions_and_frames(self):
        kernel, process, interp = self._loaded()
        interp.start("main")
        interp.run_steps(1200)
        victim = process.runtime.worst_case_allocation()
        page = victim.address & ~(PAGE_SIZE - 1)
        free_before = kernel.frames.free_frames
        plan, _, _ = kernel.request_page_move(process, page)
        # Old pages freed, new allocated: net change zero.
        assert kernel.frames.free_frames == free_before
        # The moved-out range is no longer permitted.
        assert process.regions.find(plan.lo) is None or not process.regions.find(
            plan.lo
        ).covers(plan.lo, plan.length)

    def test_protection_change(self):
        kernel, process, interp = self._loaded()
        base = process.layout.stack_base
        cycles = kernel.request_protection_change(
            process, base, PAGE_SIZE, PERM_READ
        )
        assert cycles > 0
        assert not process.regions.check(base, 8, "write")
        assert process.regions.check(base, 8, "read")
        # Restore and verify coalescing brings us back to one region.
        kernel.request_protection_change(process, base, PAGE_SIZE, PERM_RWX)
        assert len(process.regions) == 1


class TestSwap:
    def test_swap_out_and_in_roundtrip(self):
        binary = compile_carat(LINKED_LIST_SOURCE, module_name="list")
        kernel = Kernel()
        process = kernel.load_carat(binary)
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(600)  # mid build loop: nodes exist, traversal ahead

        swap = SwapManager(kernel)
        process.runtime.flush_escapes()
        victim = next(a for a in process.runtime.table if a.kind == "heap")
        page = victim.address & ~(PAGE_SIZE - 1)
        snaps = interp.register_snapshots()
        record = swap.swap_out(process, page, register_snapshots=snaps)
        interp.apply_snapshots(snaps)
        assert swap.swap_outs == 1
        # The allocation table now holds the block at an encoded address.
        assert process.runtime.table.at(victim.address) is victim
        assert is_noncanonical(victim.address)

        # Running on must fault on the first touch of swapped memory...
        with pytest.raises(ProtectionFault) as info:
            interp.run_steps(10_000_000)
        assert is_noncanonical(info.value.address)

        # ...and the fault handler swaps it back in.
        snaps = interp.register_snapshots()
        new_addr = swap.handle_fault(process, info.value, snaps)
        interp.apply_snapshots(snaps)
        assert not is_noncanonical(new_addr)
        assert swap.swap_ins == 1

        # Execution resumes and completes with the correct answer.
        interp.run_steps(10_000_000)
        assert interp.output == [str(sum(range(40)))]

    def test_unrelated_fault_reraised(self):
        binary = compile_carat(SUM_SOURCE)
        kernel = Kernel()
        process = kernel.load_carat(binary)
        swap = SwapManager(kernel)
        fault = ProtectionFault(0x123456, 8, "read")
        with pytest.raises(ProtectionFault):
            swap.handle_fault(process, fault)
