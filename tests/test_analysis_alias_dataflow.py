"""Alias analyses, points-to, dataflow framework, value ranges, PDG."""

import pytest

from repro.analysis.alias import (
    AliasResult,
    BasicAliasAnalysis,
    ChainedAliasAnalysis,
    PointsToAliasAnalysis,
    TypeBasedAliasAnalysis,
    underlying_object,
)
from repro.analysis.dataflow import AvailableValues, LivenessAnalysis
from repro.analysis.loops import LoopInfo
from repro.analysis.pdg import ProgramDependenceGraph
from repro.analysis.range_analysis import Interval, ValueRangeAnalysis
from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
)
from repro.ir.types import F64, I8, I64, ptr
from tests.conftest import build_count_loop

NO = AliasResult.NO_ALIAS
MAY = AliasResult.MAY_ALIAS
MUST = AliasResult.MUST_ALIAS


@pytest.fixture
def fn(module):
    f = Function(
        "aa", FunctionType(I64, [ptr(I64), ptr(I64)]), module, ["p", "q"]
    )
    f.add_block("entry")
    return f


class TestBasicAA:
    def test_identical_values_must_alias(self, fn):
        aa = BasicAliasAnalysis()
        assert aa.alias(fn.args[0], fn.args[0]) is MUST

    def test_distinct_allocas_no_alias(self, fn):
        b = IRBuilder(fn.entry)
        a1 = b.alloca(I64)
        a2 = b.alloca(I64)
        assert BasicAliasAnalysis().alias(a1, a2) is NO

    def test_arguments_may_alias(self, fn):
        assert BasicAliasAnalysis().alias(fn.args[0], fn.args[1]) is MAY

    def test_gep_same_base_same_offset(self, fn):
        b = IRBuilder(fn.entry)
        g1 = b.gep(fn.args[0], [b.i64(2)])
        g2 = b.gep(fn.args[0], [b.i64(2)])
        assert BasicAliasAnalysis().alias(g1, g2) is MUST

    def test_gep_same_base_disjoint_offsets(self, fn):
        b = IRBuilder(fn.entry)
        g1 = b.gep(fn.args[0], [b.i64(0)])
        g2 = b.gep(fn.args[0], [b.i64(1)])
        assert BasicAliasAnalysis().alias(g1, g2) is NO

    def test_private_alloca_vs_argument(self, fn):
        b = IRBuilder(fn.entry)
        local = b.alloca(I64)
        b.store(b.i64(1), local)  # store through, not of — no escape
        assert BasicAliasAnalysis().alias(local, fn.args[0]) is NO

    def test_escaped_alloca_vs_argument(self, fn, module):
        b = IRBuilder(fn.entry)
        local = b.alloca(I64)
        slot = b.alloca(ptr(I64))
        b.store(local, slot)  # address escapes
        assert BasicAliasAnalysis().alias(local, fn.args[0]) is MAY

    def test_underlying_object_strips_geps_and_casts(self, fn):
        b = IRBuilder(fn.entry)
        g = b.gep(fn.args[0], [b.i64(3)])
        c = b.bitcast(g, ptr(I8))
        assert underlying_object(c) is fn.args[0]


class TestTBAA:
    def test_distinct_scalar_types(self, module):
        f = Function("t", FunctionType(I64, [ptr(I64), ptr(F64)]), module)
        assert TypeBasedAliasAnalysis().alias(f.args[0], f.args[1]) is NO

    def test_char_pointer_aliases_everything(self, module):
        f = Function("t2", FunctionType(I64, [ptr(I64), ptr(I8)]), module)
        assert TypeBasedAliasAnalysis().alias(f.args[0], f.args[1]) is MAY

    def test_same_type_may_alias(self, module):
        f = Function("t3", FunctionType(I64, [ptr(I64), ptr(I64)]), module)
        assert TypeBasedAliasAnalysis().alias(f.args[0], f.args[1]) is MAY


class TestSteensgaard:
    def test_separate_allocations(self, module):
        malloc = Function("malloc", FunctionType(ptr(I8), [I64]), module)
        f = Function("s", FunctionType(I64, []), module)
        b = IRBuilder(f.add_block("entry"))
        m1 = b.call(malloc, [b.i64(8)])
        m2 = b.call(malloc, [b.i64(8)])
        b.ret(b.i64(0))
        aa = PointsToAliasAnalysis(f)
        # Distinct malloc results: may_alias must not merge them.
        assert aa.alias(m1, m2) in (NO, MAY)  # sound either way
        assert aa.alias(m1, m1) is MUST

    def test_store_load_flow(self, module):
        f = Function("s2", FunctionType(I64, [ptr(I64)]), module, ["p"])
        b = IRBuilder(f.add_block("entry"))
        slot = b.alloca(ptr(I64))
        b.store(f.args[0], slot)
        loaded = b.load(slot)
        b.ret(b.i64(0))
        aa = PointsToAliasAnalysis(f)
        # loaded points where p points — they must be allowed to alias.
        assert aa.alias(loaded, f.args[0]) is not NO


class TestChained:
    def test_first_definite_answer_wins(self, module):
        f = Function("c", FunctionType(I64, [ptr(I64), ptr(F64)]), module)
        f.add_block("entry")
        chain = ChainedAliasAnalysis.standard(f)
        # BasicAA says MAY for two args; TBAA then refines to NO.
        assert chain.alias(f.args[0], f.args[1]) is NO

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            ChainedAliasAnalysis([])


class TestLiveness:
    def test_loop_liveness(self, module):
        fn, parts = build_count_loop(module)
        analysis = LivenessAnalysis(fn)
        facts = analysis.solve()
        # The loop bound and base pointer stay live around the back edge.
        assert fn.args[1] in facts[parts["body"]].out_set  # %n
        assert fn.args[0] in facts[parts["loop"]].in_set  # %arr
        # The loaded value is consumed immediately; dead at loop entry.
        assert parts["v"] not in facts[parts["loop"]].in_set
        # %i_next is upward-exposed in the body's gen set via the phi edge.
        assert parts["i"] in facts[parts["loop"]].out_set


class TestAvailableValues:
    def test_intersection_at_join(self, module):
        fn = Function("av", FunctionType(I64, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", fn.args[0], b.i64(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        b.br(join)
        b.position_at_end(right)
        b.br(join)
        b.position_at_end(join)
        b.ret(fn.args[0])

        # "generate" the token only on the left path.
        def generates(inst):
            return ["tok"] if inst.parent is left else []

        problem = AvailableValues(fn, generates, lambda inst: False)
        facts = problem.solve()
        assert "tok" in facts[left].out_set
        assert "tok" not in facts[join].in_set  # not on every path

    def test_generated_on_both_paths_is_available(self, module):
        fn = Function("av2", FunctionType(I64, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", fn.args[0], b.i64(0))
        b.cond_br(cond, left, right)
        for blk in (left, right):
            b.position_at_end(blk)
            b.br(join)
        b.position_at_end(join)
        b.ret(fn.args[0])

        problem = AvailableValues(
            fn, lambda i: ["tok"] if i.parent in (left, right) else [], lambda i: False
        )
        facts = problem.solve()
        assert "tok" in facts[join].in_set


class TestValueRange:
    def test_constant(self, module):
        fn, parts = build_count_loop(module)
        vra = ValueRangeAnalysis(fn)
        assert vra.range_of(ConstantInt(I64, 42)) == Interval(42, 42)

    def test_loop_counter_lower_bound(self, module):
        fn, parts = build_count_loop(module)
        vra = ValueRangeAnalysis(fn)
        r = vra.range_of(parts["i"])
        assert r.lo >= 0  # starts at 0, increments

    def test_interval_ops(self):
        a = Interval(1, 5)
        c = Interval(-2, 3)
        assert a.add(c) == Interval(-1, 8)
        assert a.sub(c) == Interval(-2, 7)
        assert a.mul(Interval(2, 2)) == Interval(2, 10)
        assert a.join(c) == Interval(-2, 5)
        assert a.meet(c) == Interval(1, 3)
        assert Interval(5, 6).meet(Interval(7, 8)) is None
        assert a.widen(Interval(1, 10)).hi == float("inf")
        assert a.widen(Interval(1, 5)) == a


class TestPDG:
    def test_control_dependence(self, module):
        fn = Function("cd", FunctionType(I64, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", fn.args[0], b.i64(0))
        b.cond_br(cond, then, join)
        b.position_at_end(then)
        b.br(join)
        b.position_at_end(join)
        b.ret(fn.args[0])
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        assert entry in pdg.control_dependences(then)
        assert entry not in pdg.control_dependences(join)

    def test_load_invariance_in_loop(self, module):
        # A load from an argument pointer with no stores in the loop is
        # invariant; with an aliasing store, it is not.
        fn, parts = build_count_loop(module)
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        li = LoopInfo.compute(fn)
        loop = li.loops[0]
        load = parts["v"]
        # The load's address (gep of i) varies per iteration: not invariant.
        assert not pdg.load_is_invariant_in_loop(load, loop)

    def test_writers_in_loop(self, module):
        fn, parts = build_count_loop(module)
        b = IRBuilder(parts["body"])
        b.position_before(parts["i_next"])
        b.store(parts["v"], parts["p"])
        li = LoopInfo.compute(fn)
        pdg = ProgramDependenceGraph(fn, ChainedAliasAnalysis.standard(fn))
        writers = pdg.writers_in_loop(li.loops[0], parts["p"], 8)
        assert len(writers) == 1
