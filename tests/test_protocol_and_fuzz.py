"""The Figure 8 protocol trace, plus builder->printer->parser fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carat import compile_carat
from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.types import F64, I1, I64, ptr
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter
from tests.conftest import LINKED_LIST_SOURCE


class TestProtocolTrace:
    def test_move_emits_figure8_steps_in_order(self):
        kernel = Kernel()
        kernel.trace_protocol = True
        process = kernel.load_carat(compile_carat(LINKED_LIST_SOURCE))
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(1000)
        victim = process.runtime.worst_case_allocation()
        snaps = interp.register_snapshots()
        kernel.request_page_move(
            process, victim.address & ~(PAGE_SIZE - 1), register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        steps = [int(line.split(":")[0].split()[1]) for line in kernel.protocol_trace]
        assert steps == sorted(steps)
        assert steps[0] == 1
        assert steps[-1] == 12
        assert len(set(steps)) == 12
        joined = "\n".join(kernel.protocol_trace)
        assert "dump registers" in joined
        assert "escapes patched" in joined
        assert "threads resume" in joined

    def test_trace_off_by_default(self):
        kernel = Kernel()
        process = kernel.load_carat(compile_carat(LINKED_LIST_SOURCE))
        interp = Interpreter(process, kernel)
        interp.start("main")
        interp.run_steps(1000)
        victim = process.runtime.worst_case_allocation()
        kernel.request_page_move(process, victim.address & ~(PAGE_SIZE - 1))
        assert kernel.protocol_trace == []


# ---------------------------------------------------------------------------
# Builder -> printer -> parser fuzzing: random straight-line functions must
# survive a full round trip bit-identically and re-verify.
# ---------------------------------------------------------------------------

_INT_OPS = ["add", "sub", "mul", "and", "or", "xor"]
_FLOAT_OPS = ["fadd", "fsub", "fmul"]
_PREDS = ["eq", "ne", "slt", "sle", "sgt", "sge"]


@st.composite
def straightline_programs(draw):
    """A recipe: a list of op codes the builder turns into a function."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("int"), st.sampled_from(_INT_OPS)),
                st.tuples(st.just("float"), st.sampled_from(_FLOAT_OPS)),
                st.tuples(st.just("icmp"), st.sampled_from(_PREDS)),
                st.tuples(st.just("const"), st.integers(-(2**31), 2**31)),
                st.tuples(st.just("gep"), st.integers(0, 7)),
                st.tuples(st.just("loadstore"), st.integers(0, 7)),
            ),
            min_size=1,
            max_size=25,
        )
    )


def _build(recipe) -> Module:
    module = Module("fuzz")
    fn = Function(
        "f", FunctionType(I64, [I64, F64, ptr(I64)]), module, ["x", "y", "p"]
    )
    b = IRBuilder(fn.add_block("entry"))
    ints = [fn.args[0]]
    floats = [fn.args[1]]
    for kind, payload in recipe:
        if kind == "int":
            ints.append(b.binop(payload, ints[-1], ints[len(ints) // 2]))
        elif kind == "float":
            floats.append(b.binop(payload, floats[-1], floats[len(floats) // 2]))
        elif kind == "icmp":
            flag = b.icmp(payload, ints[-1], ints[0])
            ints.append(b.zext(flag, I64))
        elif kind == "const":
            ints.append(b.add(ints[-1], b.i64(payload)))
        elif kind == "gep":
            g = b.gep(fn.args[2], [b.i64(payload)])
            ints.append(b.load(g))
        elif kind == "loadstore":
            g = b.gep(fn.args[2], [b.i64(payload)])
            b.store(ints[-1], g)
            ints.append(b.load(g))
    b.ret(ints[-1])
    return module


class TestRoundTripFuzz:
    @given(straightline_programs())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_fixpoint(self, recipe):
        module = _build(recipe)
        verify_module(module)
        text = print_module(module)
        parsed = parse_module(text)
        verify_module(parsed)
        assert print_module(parsed) == text

    @given(straightline_programs())
    @settings(max_examples=25, deadline=None)
    def test_parsed_module_executes_identically(self, recipe):
        """The parsed module must compute the same result as the original
        when run with fixed inputs through a driver."""
        from repro.carat import compile_baseline
        from repro.ir import GlobalVariable, ConstantZero
        from repro.ir.types import ArrayType
        from tests.support import run_carat_baseline

        def with_driver(module: Module) -> Module:
            from repro.ir.types import VOID
            from repro.ir.values import ConstantFloat, ConstantInt

            buf = module.add_global(
                GlobalVariable(
                    "buf", ArrayType(I64, 8), ConstantZero(ArrayType(I64, 8))
                )
            )
            printer = module.get_or_declare("print_long", FunctionType(VOID, [I64]))
            main = Function("main", FunctionType(VOID, []), module)
            b = IRBuilder(main.add_block("entry"))
            base = b.gep(buf, [b.i64(0), b.i64(0)])
            value = b.call(
                module.get_function("f"),
                [ConstantInt(I64, 37), ConstantFloat(F64, 1.5), base],
            )
            b.call(printer, [value])
            b.ret()
            return module

        original = with_driver(_build(recipe))
        text = print_module(original)
        reparsed = parse_module(text)
        out1 = run_carat_baseline(compile_baseline(original)).output
        out2 = run_carat_baseline(compile_baseline(reparsed)).output
        assert out1 == out2
