"""Allocation Table, escape map, regions, guard mechanisms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtectionFault
from repro.runtime import (
    Allocation,
    AllocationTable,
    AllocationToEscapeMap,
    BinarySearchGuard,
    IfTreeGuard,
    MPXGuard,
    PERM_READ,
    PERM_RW,
    PERM_RWX,
    Region,
    RegionSet,
    make_guard,
)
from repro.runtime.allocation_table import AllocationError


class TestAllocationTable:
    def test_add_and_query(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        assert len(t) == 1
        assert t.at(0x1000) is a
        assert t.find_containing(0x1000) is a
        assert t.find_containing(0x103F) is a
        assert t.find_containing(0x1040) is None

    def test_overlap_rejected(self):
        t = AllocationTable()
        t.add(0x1000, 64)
        with pytest.raises(AllocationError):
            t.add(0x1020, 8)
        with pytest.raises(AllocationError):
            t.add(0x0FF8, 16)

    def test_zero_size_rejected(self):
        t = AllocationTable()
        with pytest.raises(AllocationError):
            t.add(0x1000, 0)

    def test_remove(self):
        t = AllocationTable()
        t.add(0x1000, 64)
        removed = t.remove(0x1000)
        assert not removed.live
        assert len(t) == 0
        with pytest.raises(AllocationError):
            t.remove(0x1000)
        assert t.remove_if_present(0x1000) is None

    def test_overlapping_range_query(self):
        t = AllocationTable()
        a = t.add(0x1000, 0x100)
        b = t.add(0x2000, 0x100)
        c = t.add(0x2F80, 0x100)  # straddles 0x3000
        found = t.overlapping(0x2000, 0x3000)
        assert found == [b, c]
        # Predecessor reaching in from below:
        found = t.overlapping(0x1080, 0x1100)
        assert found == [a]

    def test_rebase(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        t.rebase(a, 0x9000)
        assert t.at(0x9000) is a
        assert t.at(0x1000) is None
        assert a.address == 0x9000
        t.check_invariants()

    def test_stats(self):
        t = AllocationTable()
        t.add(0x1000, 8)
        t.add(0x2000, 8)
        t.remove(0x1000)
        assert t.total_allocs == 2
        assert t.total_frees == 1
        assert t.peak_count == 2
        assert t.live_bytes() == 8

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_find_containing_matches_scan(self, blocks):
        t = AllocationTable()
        placed = []
        for slot, size in blocks:
            address = slot * 16
            try:
                placed.append(t.add(address, size))
            except AllocationError:
                pass
        for probe in range(0, 101 * 16, 7):
            expected = next(
                (a for a in placed if a.contains(probe)), None
            )
            assert t.find_containing(probe) is expected


class TestEscapeMap:
    def _memory(self, contents):
        return lambda address: contents.get(address, 0)

    def test_record_and_flush(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        m = AllocationToEscapeMap()
        m.record(0x5000)  # cell 0x5000 holds a pointer to 0x1010
        memory = self._memory({0x5000: 0x1010})
        assert m.pending_count == 1
        resolved = m.flush(t, memory)
        assert resolved == 1
        assert m.escapes_of(a) == {0x5000}
        assert m.pending_count == 0

    def test_stale_records_dropped(self):
        t = AllocationTable()
        t.add(0x1000, 64)
        m = AllocationToEscapeMap()
        m.record(0x5000)
        memory = self._memory({0x5000: 0xDEAD0000})  # points nowhere tracked
        assert m.flush(t, memory) == 0
        assert m.stats.stale_dropped == 1

    def test_batching_threshold(self):
        m = AllocationToEscapeMap(batch_limit=3)
        m.record(1)
        m.record(2)
        assert not m.needs_flush()
        m.record(3)
        assert m.needs_flush()

    def test_histogram(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        b = t.add(0x2000, 64)
        m = AllocationToEscapeMap()
        contents = {0x5000: 0x1000, 0x5008: 0x1008, 0x5010: 0x2000}
        for cell in contents:
            m.record(cell)
        m.flush(t, self._memory(contents))
        hist = m.histogram()
        assert hist == {2: 1, 1: 1}

    def test_rekey_follows_move(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        m = AllocationToEscapeMap()
        m.record(0x5000)
        m.flush(t, self._memory({0x5000: 0x1000}))
        t.rebase(a, 0x8000)
        m.rekey(0x1000, 0x8000)
        assert m.escapes_of(a) == {0x5000}

    def test_rewrite_range(self):
        t = AllocationTable()
        a = t.add(0x1000, 64)
        m = AllocationToEscapeMap()
        m.record(0x1020)  # escape cell inside the soon-to-move range
        m.flush(t, self._memory({0x1020: 0x1000}))
        rewritten = m.rewrite_range(0x1000, 0x2000, 0x7000)
        assert rewritten == 1
        assert m.escapes_of(a) == {0x8020}
        # The counter feeds the stats report (and the bench harness).
        assert m.stats.rewritten == 1
        m.rewrite_range(0x8000, 0x9000, -0x1000)
        assert m.stats.rewritten == 2

    def test_memory_footprint_grows_with_escapes(self):
        t = AllocationTable()
        t.add(0x1000, 4096)
        m = AllocationToEscapeMap()
        baseline = m.memory_footprint_bytes()
        contents = {0x5000 + 8 * i: 0x1000 + i for i in range(100)}
        for cell in contents:
            m.record(cell)
        m.flush(t, self._memory(contents))
        assert m.memory_footprint_bytes() > baseline


class TestRegions:
    def test_add_sorted_and_find(self):
        rs = RegionSet()
        rs.add(Region(0x2000, 0x1000))
        rs.add(Region(0x0000, 0x1000))
        assert [r.base for r in rs] == [0x0000, 0x2000]
        assert rs.find(0x2800).base == 0x2000
        assert rs.find(0x1800) is None

    def test_overlap_rejected(self):
        rs = RegionSet([Region(0x1000, 0x1000)])
        with pytest.raises(ValueError):
            rs.add(Region(0x1800, 0x1000))

    def test_check_permissions(self):
        rs = RegionSet([Region(0x1000, 0x1000, PERM_READ)])
        assert rs.check(0x1000, 8, "read")
        assert not rs.check(0x1000, 8, "write")
        assert not rs.check(0x1FFC, 8, "read")  # spans the end

    def test_version_ticks(self):
        rs = RegionSet()
        v0 = rs.version
        rs.add(Region(0, 0x1000))
        assert rs.version > v0

    def test_remove_range_splits(self):
        rs = RegionSet([Region(0x0000, 0x3000, PERM_RW)])
        rs.remove_range(0x1000, 0x2000)
        assert len(rs) == 2
        assert rs.find(0x0800) is not None
        assert rs.find(0x1800) is None
        assert rs.find(0x2800) is not None

    def test_coalesce(self):
        rs = RegionSet([Region(0x0000, 0x1000, PERM_RW), Region(0x1000, 0x1000, PERM_RW)])
        merged = rs.coalesce()
        assert merged == 1
        assert len(rs) == 1
        assert rs.regions[0].length == 0x2000

    # Regression: replace_all used to install the list verbatim, skipping
    # the overlap/length validation that add() performs.
    def test_replace_all_rejects_overlap(self):
        rs = RegionSet([Region(0x0000, 0x1000)])
        before = rs.regions
        v0 = rs.version
        with pytest.raises(ValueError):
            rs.replace_all([Region(0x1000, 0x1000), Region(0x1800, 0x1000)])
        # Failed replacement leaves the set (and version) untouched.
        assert rs.regions == before
        assert rs.version == v0

    def test_replace_all_rejects_nonpositive_length(self):
        rs = RegionSet()
        with pytest.raises(ValueError):
            rs.replace_all([Region(0x1000, 0)])

    def test_replace_all_sorts_valid_input(self):
        rs = RegionSet()
        rs.replace_all([Region(0x2000, 0x1000), Region(0x0000, 0x1000)])
        assert [r.base for r in rs] == [0x0000, 0x2000]

    def test_coalesce_respects_perms(self):
        rs = RegionSet(
            [Region(0x0000, 0x1000, PERM_RW), Region(0x1000, 0x1000, PERM_RWX)]
        )
        assert rs.coalesce() == 0
        assert len(rs) == 2

    def test_set_range_perms(self):
        rs = RegionSet([Region(0x0000, 0x3000, PERM_RWX)])
        rs.set_range_perms(0x1000, 0x2000, PERM_READ)
        assert len(rs) == 3
        assert rs.find(0x1800).perms == PERM_READ
        assert rs.find(0x0800).perms == PERM_RWX

    def test_set_range_perms_requires_coverage(self):
        rs = RegionSet([Region(0x0000, 0x1000, PERM_RW)])
        with pytest.raises(ValueError):
            rs.set_range_perms(0x0800, 0x1800, PERM_READ)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=10,
        ),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_remove_range_never_leaves_overlap(self, spans, rm_start, rm_len):
        rs = RegionSet()
        for start, length in spans:
            try:
                rs.add(Region(start * 0x1000, length * 0x1000))
            except ValueError:
                pass
        rs.remove_range(rm_start * 0x1000, (rm_start + rm_len) * 0x1000)
        regions = rs.regions
        for i in range(1, len(regions)):
            assert regions[i - 1].end <= regions[i].base
        for r in regions:
            assert not (rm_start * 0x1000 <= r.base < (rm_start + rm_len) * 0x1000)


class TestGuardMechanisms:
    def _regions(self, n):
        return RegionSet(
            [Region(i * 0x10000, 0x8000, PERM_RW) for i in range(n)]
        )

    @pytest.mark.parametrize("name", ["mpx", "binary_search", "if_tree"])
    def test_allows_valid_access(self, name):
        rs = self._regions(4)
        guard = make_guard(name)
        outcome = guard.check(rs, 0x10010, 8, "read")
        assert outcome.allowed
        assert outcome.cycles >= 1

    @pytest.mark.parametrize("name", ["mpx", "binary_search", "if_tree"])
    def test_rejects_hole(self, name):
        rs = self._regions(4)
        guard = make_guard(name)
        outcome = guard.check(rs, 0x9000, 8, "read")  # inside the gap
        assert not outcome.allowed

    def test_mpx_single_cycle_on_repeat(self):
        rs = self._regions(4)
        guard = MPXGuard()
        first = guard.check(rs, 0x10010, 8, "read")
        second = guard.check(rs, 0x10020, 8, "read")
        assert second.cycles == 1
        assert second.cycles <= first.cycles

    def test_mpx_invalidated_by_region_change(self):
        rs = self._regions(2)
        guard = MPXGuard()
        guard.check(rs, 0x10, 8, "read")
        rs.add(Region(0x90000, 0x1000))
        outcome = guard.check(rs, 0x10, 8, "read")
        assert outcome.cycles > 1  # bound register reloaded

    def test_binary_search_cost_grows_with_regions(self):
        small = BinarySearchGuard().check(self._regions(2), 0x10, 8, "read")
        large = BinarySearchGuard().check(self._regions(1024), 0x10, 8, "read")
        assert large.cycles > small.cycles

    def test_if_tree_strided_cheaper_than_random(self):
        rs = self._regions(64)
        strided = IfTreeGuard(stride_hint=True)
        random = IfTreeGuard(stride_hint=False)
        s = strided.check(rs, 0x10, 8, "read")
        # Random guard alternating between far regions defeats prediction.
        random.check(rs, 0x10, 8, "read")
        r = random.check(rs, 0x3F0000, 8, "read")
        assert s.cycles < r.cycles

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            make_guard("quantum")
