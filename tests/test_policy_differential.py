"""Differential correctness: the policy engine must be semantically
invisible.

CARAT's core safety claim is that moves preserve program semantics —
every pointer (escape, register, tracked base) is patched before the
program can observe the new layout.  The policy engine stacks dozens of
*unsolicited* moves (scatter, compaction, promotion, demotion) on top of
normal execution, so we check the end-to-end version of the claim: for
escape-heavy workloads, a run under an aggressive policy engine on a
tiered, pre-fragmented machine produces bit-identical output to a plain
CARAT run, while actually performing policy moves.
"""

import pytest

from repro.kernel.kernel import Kernel
from tests.support import run_carat
from repro.policy import (
    CompactionDaemon,
    HeatTracker,
    PolicyEngine,
    TieringBalancer,
    scatter_capsule,
)
from repro.workloads import get_workload

MB = 1024 * 1024

#: Pointer-heavy / escape-heavy workloads: linked structures and index
#: arrays make these the most move-sensitive programs in the suite.
WORKLOADS = ["canneal", "mcf", "nab"]


def _plain_run(workload):
    return run_carat(
        workload.source,
        name=workload.name,
        heap_size=512 * 1024,
        stack_size=128 * 1024,
        sanitize=True,
    )


def _policy_run(workload):
    kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
    engine = None

    def setup(interpreter):
        nonlocal engine
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        heat = HeatTracker()
        engine = PolicyEngine(
            kernel,
            process,
            epoch_cycles=5_000,
            budget_cycles=500_000,
            heat=heat,
            compaction=CompactionDaemon(
                kernel, process, target_fragmentation=0.05
            ),
            tiering=TieringBalancer(
                kernel, process, heat, max_allocation_pages=40
            ),
        )
        engine.attach(interpreter)

    result = run_carat(
        workload.source,
        kernel=kernel,
        name=workload.name,
        heap_size=512 * 1024,
        stack_size=128 * 1024,
        setup=setup,
        sanitize=True,
    )
    return result, engine


@pytest.mark.parametrize("name", WORKLOADS)
def test_policy_engine_preserves_semantics(name):
    workload = get_workload(name, "tiny")
    plain = _plain_run(workload)
    moved, engine = _policy_run(workload)

    assert moved.exit_code == plain.exit_code == 0
    assert moved.output == plain.output  # bit-identical program output
    if workload.checksum is not None:
        assert moved.output[-1] == str(workload.checksum)

    # The run was genuinely disturbed, not a vacuous pass: the engine
    # performed policy moves and stayed within every epoch budget.
    assert engine.stats.total_moves > 0
    assert engine.stats.epochs > 0
    assert engine.stats.budgets_respected

    # And the instrumented program did the same amount of program work.
    assert moved.instructions == plain.instructions

    # Both runs executed under the cross-layer invariant checker: every
    # policy move was audited at the change request that made it.
    assert plain.sanitizer.ok
    assert moved.sanitizer.ok and moved.sanitizer.checks_run > 0
