"""Tests for the telemetry layer: tracer, schema, metrics, profiler.

Unit coverage of each primitive plus end-to-end checks that a traced /
profiled session emits a schema-valid event stream and an exactly
reconciling cycle profile on both engines.  (The per-workload
reconciliation sweep lives in ``benchmarks/test_telemetry_overhead.py``;
here we keep to the small conftest programs.)
"""

import json

import pytest

from repro.machine.session import CaratSession, RunConfig
from repro.telemetry import (
    PROFILE_CATEGORIES,
    Counter,
    CycleProfiler,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    run_snapshot,
    validate_events,
    validate_jsonl,
)

from .conftest import LINKED_LIST_SOURCE, SUM_SOURCE


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_balances_and_attaches_end_args(self):
        tracer = Tracer()
        with tracer.span("pass.dce", "compiler", {"before": 10}) as end_args:
            end_args["after"] = 7
        assert [e.ph for e in tracer.events] == ["B", "E"]
        assert tracer.events[0].args == {"before": 10}
        assert tracer.events[1].args == {"after": 7}
        assert validate_events([e.to_dict() for e in tracer.events]) == []

    def test_span_ends_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s", "session"):
                raise RuntimeError("boom")
        assert [e.ph for e in tracer.events] == ["B", "E"]

    def test_instant_marks_thread_scope(self):
        tracer = Tracer()
        tracer.instant("guard.fault", "guard", {"address": 64})
        record = tracer.events[0].to_dict()
        assert record["ph"] == "i"
        assert record["s"] == "t"

    def test_clock_handoff_stays_monotonic(self):
        # Compile-time events run on the logical sequence; attaching the
        # machine clock (which restarts at 0) must not move time backwards.
        tracer = Tracer()
        for _ in range(5):
            tracer.instant("compile", "compiler")
        cycles = {"now": 0}
        tracer.set_clock(lambda: cycles["now"])
        tracer.instant("run", "session")
        cycles["now"] = 100
        tracer.instant("later", "session")
        stamps = [e.ts for e in tracer.events]
        assert stamps == sorted(stamps)
        assert validate_events([e.to_dict() for e in tracer.events]) == []

    def test_buffer_cap_counts_drops(self):
        tracer = Tracer(max_events=3)
        for i in range(10):
            tracer.instant(f"e{i}", "session")
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert tracer.summary()["dropped"] == 7

    def test_bad_detail_rejected(self):
        with pytest.raises(ValueError):
            Tracer(detail="verbose")

    def test_jsonl_roundtrip_validates(self, tmp_path):
        tracer = Tracer()
        with tracer.span("session.run", "session"):
            tracer.instant("fig8.step01", "protocol", {"detail": "freeze"})
            tracer.counter("interp", {"cycles": 42})
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert validate_jsonl(path) == []
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert all(json.loads(line) for line in lines)

    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer()
        tracer.instant("x", "kernel")
        doc = tracer.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["traceEvents"][0]["name"] == "x"
        path = tmp_path / "trace.chrome.json"
        tracer.write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_summary_counts_by_category(self):
        tracer = Tracer()
        tracer.instant("a", "guard")
        tracer.instant("b", "guard")
        tracer.instant("c", "policy")
        summary = tracer.summary()
        assert summary["guard"] == 2
        assert summary["policy"] == 1
        assert summary["total"] == 3


class TestSchemaValidation:
    def test_flags_missing_required_key(self):
        errors = validate_events([{"name": "x", "cat": "guard", "ph": "i"}])
        assert any("missing" in e for e in errors)

    def test_flags_unknown_phase_and_category(self):
        event = {"name": "x", "cat": "nope", "ph": "Z", "ts": 0,
                 "pid": 0, "tid": 0}
        errors = validate_events([event])
        assert any("cat" in e for e in errors)
        assert any("ph" in e for e in errors)

    def test_flags_unbalanced_span(self):
        events = [
            {"name": "s", "cat": "session", "ph": "B", "ts": 0,
             "pid": 0, "tid": 0},
        ]
        assert any("unclosed" in e for e in validate_events(events))

    def test_flags_nonmonotonic_timestamps(self):
        events = [
            {"name": "a", "cat": "session", "ph": "i", "ts": 5,
             "pid": 0, "tid": 0, "s": "t"},
            {"name": "b", "cat": "session", "ph": "i", "ts": 3,
             "pid": 0, "tid": 0, "s": "t"},
        ]
        assert any("precedes" in e for e in validate_events(events))


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = Counter("moves")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("heat")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.snapshot() == 7

    def test_histogram_buckets_by_bit_length(self):
        hist = Histogram("move_cycles")
        for value in (0, 1, 1, 5, 300):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0 and snap["max"] == 300
        assert snap["buckets"][0] == 1  # the zero
        assert snap["buckets"][1] == 2  # the ones
        assert snap["buckets"][3] == 1  # 5 has bit_length 3
        assert snap["buckets"][9] == 1  # 300 has bit_length 9
        with pytest.raises(ValueError):
            hist.observe(-1)

    def test_registry_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_registry_absorbs_stats_and_flattens(self):
        registry = MetricsRegistry()
        registry.absorb("kernel", {"moves": 3, "cost": {"copy": 7}})
        registry.counter("epochs").inc(2)
        nested = registry.to_dict()
        assert nested["kernel"]["moves"] == 3
        assert nested["metrics"]["epochs"] == 2
        flat = registry.snapshot()
        assert flat["kernel.moves"] == 3
        assert flat["kernel.cost.copy"] == 7
        assert flat["metrics.epochs"] == 2

    def test_run_snapshot_document(self):
        config = RunConfig(mode="carat", profile=True)
        result = CaratSession(config).run(SUM_SOURCE)
        document = run_snapshot(result)
        assert document["schema"] == "carat.run.v1"
        assert document["exit_code"] == 0
        assert document["interp"]["cycles"] == result.cycles
        assert document["runtime"]["guards_executed"] >= 1
        assert document["profile"]["schema"] == "carat.profile.v1"
        assert document["config"]["mode"] == "carat"
        # The document is plain data end to end.
        json.dumps(document)

    def test_run_snapshot_traditional_has_mmu_sections(self):
        result = CaratSession(RunConfig(mode="traditional")).run(SUM_SOURCE)
        document = run_snapshot(result)
        assert "mmu" in document and "dtlb" in document and "stlb" in document
        assert "runtime" not in document


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class _FakeStats:
    def __init__(self):
        self.cycles = 0
        self.guard_cycles = 0
        self.tracking_cycles = 0
        self.translation_cycles = 0
        self.page_fault_cycles = 0
        self.tier_cycles = 0


class TestProfilerUnits:
    def test_delta_capture_splits_app_from_overheads(self):
        profiler = CycleProfiler()
        stats = _FakeStats()
        before = profiler.snap(stats)
        stats.cycles += 10
        stats.guard_cycles += 3
        profiler.account("main", stats, before)
        assert profiler.buckets["app"] == 7
        assert profiler.buckets["guard"] == 3
        row = profiler.functions()["main"]
        assert row["cycles"] == 10 and row["instructions"] == 1

    def test_finish_sweeps_remainder_into_patching(self):
        profiler = CycleProfiler()
        stats = _FakeStats()
        stats.cycles = 50
        profiler.attribute_external("policy", 20)
        profiler.finish(stats)
        assert profiler.buckets["policy"] == 20
        assert profiler.buckets["patching"] == 30
        profiler.assert_reconciles(stats)
        profiler.finish(stats)  # idempotent
        assert profiler.buckets["patching"] == 30

    def test_external_attribution_restricted(self):
        with pytest.raises(ValueError):
            CycleProfiler().attribute_external("guard", 1)

    def test_assert_reconciles_raises_on_drift(self):
        profiler = CycleProfiler()
        stats = _FakeStats()
        stats.cycles = 9
        with pytest.raises(AssertionError):
            profiler.assert_reconciles(stats)


@pytest.mark.parametrize("engine", ["reference", "fast"])
class TestTelemetryEndToEnd:
    def test_trace_is_schema_valid_and_costs_nothing(self, engine):
        plain = CaratSession(RunConfig(engine=engine)).run(SUM_SOURCE)
        config = RunConfig(engine=engine, trace=True, trace_detail="fine")
        traced = CaratSession(config).run(SUM_SOURCE)
        # The tracer must never charge a cycle.
        assert traced.fingerprint() == plain.fingerprint()
        events = [e.to_dict() for e in traced.tracer.events]
        assert validate_events(events) == []
        names = {e["name"] for e in events}
        assert "session.run" in names
        assert any(name.startswith("pass.") for name in names)
        assert any(name.startswith("phase.") for name in names)
        # Fine detail narrates individual guard checks.
        assert traced.tracer.summary()["guard"] >= 1

    def test_profile_reconciles_and_costs_nothing(self, engine):
        plain = CaratSession(RunConfig(engine=engine)).run(LINKED_LIST_SOURCE)
        config = RunConfig(engine=engine, profile=True)
        profiled = CaratSession(config).run(LINKED_LIST_SOURCE)
        assert profiled.fingerprint() == plain.fingerprint()
        profile = profiled.profile
        profile.assert_reconciles(profiled.stats)
        assert sum(profile.buckets.values()) == profiled.cycles
        # No moves happen in a plain run: nothing external to attribute.
        assert profile.buckets["policy"] == 0
        assert profile.buckets["patching"] == 0
        assert profile.buckets["guard"] == profiled.stats.guard_cycles
        assert profile.buckets["tracking"] == profiled.stats.tracking_cycles
        assert set(profile.buckets) == set(PROFILE_CATEGORIES)
        # Heap allocations in main get a named site.
        assert any(
            label.startswith("main:heap") for label in profile.sites()
        )
        report = profile.report()
        assert "bucket" in report and "@main" in report

    def test_both_engines_attribute_identically(self, engine):
        # Each engine's profile must equal the reference attribution —
        # parameterized so a failure names the engine that drifted.
        reference = CaratSession(
            RunConfig(engine="reference", profile=True)
        ).run(LINKED_LIST_SOURCE)
        this = CaratSession(RunConfig(engine=engine, profile=True)).run(
            LINKED_LIST_SOURCE
        )
        assert this.profile.buckets == reference.profile.buckets
        assert this.profile.functions() == reference.profile.functions()


def test_trace_export_files(tmp_path):
    prefix = tmp_path / "run"
    config = RunConfig(trace_out=str(prefix), profile=True)
    result = CaratSession(config).run(SUM_SOURCE)
    assert result.exit_code == 0
    assert validate_jsonl(f"{prefix}.jsonl") == []
    chrome = json.loads((tmp_path / "run.chrome.json").read_text())
    assert chrome["otherData"]["clock"] == "simulated-cycles"
    assert len(chrome["traceEvents"]) == len(result.tracer.events)


def test_policy_epochs_attributed_to_policy_bucket():
    # A policy-driven run charges move cycles at epoch safepoints —
    # outside any instruction, invisible to delta capture.  The policy
    # engine claims them for the `policy` bucket and reconciliation
    # still holds exactly.
    from repro.kernel.kernel import Kernel
    from repro.policy import (
        CompactionDaemon,
        HeatTracker,
        PolicyEngine,
        scatter_capsule,
    )
    from repro.workloads import get_workload

    source = get_workload("hpccg", "tiny").source
    kernel = Kernel()
    engine_box = {}

    def setup(interpreter):
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        heat = HeatTracker(sample_period=1, decay=0.5)
        engine = PolicyEngine(
            kernel,
            process,
            epoch_cycles=5_000,
            budget_cycles=100_000,
            heat=heat,
            compaction=CompactionDaemon(kernel, process),
        )
        engine.attach(interpreter)
        engine_box["engine"] = engine

    config = RunConfig(
        profile=True, trace=True,
        heap_size=512 * 1024, stack_size=128 * 1024,
    )
    session = CaratSession(config, kernel=kernel, setup=setup)
    result = session.run(source)
    assert result.exit_code == 0
    profile = result.profile
    profile.assert_reconciles(result.stats)
    moved = sum(engine_box["engine"].stats.epoch_move_cycles)
    assert moved > 0  # the scattered capsule forces compaction moves
    assert profile.buckets["policy"] == moved
    names = {e.name for e in result.tracer.events}
    assert "policy.epoch" in names
    assert any(name.startswith("fig8.step") for name in names)
