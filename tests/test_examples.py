"""The shipped examples must run clean (they are executable docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "identical in all modes" in out
    assert "guards injected" in out


def test_protection_demo():
    out = _run("protection_demo.py")
    assert "guard caught it" in out
    assert "inline asm" in out
    assert "unsigned" in out


def test_page_migration():
    out = _run("page_migration.py")
    assert "pages moved mid-run" in out
    assert "never observed" in out


def test_swap_demo():
    out = _run("swap_demo.py")
    assert "swapped out" in out
    assert "swap-ins: " in out


def test_multithreaded_migration():
    out = _run("multithreaded_migration.py")
    assert "right answer" in out
    assert "page moves" in out


def test_soak_demo():
    out = _run("soak_demo.py")
    assert "steady state  : held" in out
    assert "fingerprint" in out
    assert "fired" in out


def test_guard_optimization_tour():
    out = _run("guard_optimization_tour.py")
    assert "carat.guard.range" in out
    assert "dynamic:" in out
