"""CFG orderings, dominators, dominance frontiers, post-dominators."""

import pytest

from repro.analysis.cfg import (
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_post_order,
    split_critical_edges,
)
from repro.analysis.dominators import DominatorTree
from repro.analysis.pdg import PostDominatorTree
from repro.ir import Function, FunctionType, IRBuilder, Module, verify_function
from repro.ir.types import I64, VOID
from tests.conftest import build_count_loop


def diamond(module, name="diamond"):
    """entry -> (left|right) -> join -> ret"""
    fn = Function(name, FunctionType(I64, [I64]), module, ["x"])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    join = fn.add_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("slt", fn.args[0], b.i64(0))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    lv = b.add(fn.args[0], b.i64(1))
    b.br(join)
    b.position_at_end(right)
    rv = b.add(fn.args[0], b.i64(2))
    b.br(join)
    b.position_at_end(join)
    phi = b.phi(I64, "merged")
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    b.ret(phi)
    return fn, entry, left, right, join


class TestOrderings:
    def test_rpo_starts_at_entry(self, module):
        fn, parts = build_count_loop(module)
        order = reverse_post_order(fn)
        assert order[0] is parts["entry"]
        assert set(order) == set(fn.blocks)

    def test_rpo_visits_before_successors_except_backedges(self, module):
        fn, _, left, right, join = diamond(module)
        order = reverse_post_order(fn)
        assert order.index(join) > order.index(left)
        assert order.index(join) > order.index(right)

    def test_unreachable_excluded(self, module):
        fn, parts = build_count_loop(module)
        orphan = fn.add_block("orphan")
        IRBuilder(orphan).ret(IRBuilder(orphan).i64(0))
        assert orphan not in reachable_blocks(fn)

    def test_remove_unreachable(self, module):
        fn, parts = build_count_loop(module)
        orphan = fn.add_block("orphan")
        b = IRBuilder(orphan)
        b.br(parts["loop"])  # adds a bogus predecessor to the loop header
        parts["i"].add_incoming(b.i64(99), orphan)
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        verify_function(fn)  # phi entry for orphan must be gone too


class TestDominators:
    def test_diamond(self, module):
        fn, entry, left, right, join = diamond(module)
        dt = DominatorTree.compute(fn)
        assert dt.dominates(entry, join)
        assert dt.dominates(entry, left)
        assert not dt.dominates(left, join)
        assert dt.idom(join) is entry
        assert dt.idom(left) is entry
        assert dt.dominates(join, join)

    def test_loop(self, module):
        fn, parts = build_count_loop(module)
        dt = DominatorTree.compute(fn)
        assert dt.idom(parts["loop"]) is parts["entry"]
        assert dt.idom(parts["body"]) is parts["loop"]
        assert dt.idom(parts["exit"]) is parts["loop"]
        assert dt.strictly_dominates(parts["loop"], parts["body"])
        assert not dt.strictly_dominates(parts["loop"], parts["loop"])

    def test_frontiers_diamond(self, module):
        fn, entry, left, right, join = diamond(module)
        df = DominatorTree.compute(fn).dominance_frontier()
        assert df[left] == {join}
        assert df[right] == {join}
        assert df[entry] == set()

    def test_frontier_loop_header(self, module):
        fn, parts = build_count_loop(module)
        df = DominatorTree.compute(fn).dominance_frontier()
        # The body's frontier is the loop header (back edge target).
        assert parts["loop"] in df[parts["body"]]

    def test_children_preorder(self, module):
        fn, entry, left, right, join = diamond(module)
        dt = DominatorTree.compute(fn)
        pre = dt.blocks_preorder()
        assert pre[0] is entry
        assert set(dt.children(entry)) == {left, right, join}


class TestPostDominators:
    def test_diamond_postdom(self, module):
        fn, entry, left, right, join = diamond(module)
        pdt = PostDominatorTree(fn)
        assert pdt.post_dominates(join, entry)
        assert pdt.post_dominates(join, left)
        assert not pdt.post_dominates(left, entry)

    def test_loop_postdom(self, module):
        fn, parts = build_count_loop(module)
        pdt = PostDominatorTree(fn)
        assert pdt.post_dominates(parts["exit"], parts["entry"])
        assert pdt.post_dominates(parts["loop"], parts["body"])


class TestCriticalEdges:
    def test_split(self, module):
        # entry conditionally branches to a shared join (critical edge) and
        # to its own block.
        fn = Function("crit", FunctionType(VOID, [I64]), module, ["x"])
        entry = fn.add_block("entry")
        middle = fn.add_block("middle")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("eq", fn.args[0], b.i64(0))
        b.cond_br(cond, join, middle)
        b.position_at_end(middle)
        b.br(join)
        b.position_at_end(join)
        b.ret()
        before = len(fn.blocks)
        split = split_critical_edges(fn)
        assert split == 1
        assert len(fn.blocks) == before + 1
        verify_function(fn)
        assert len(join.predecessors()) == 2
