"""Opt2 soundness: merged range guards must never over-claim.

A merged guard asserts the program will touch [low, low+len).  If the
loop can exit early (break), the canonical trip count over-approximates
and a range guard could fault on memory the program never touches —
e.g. a search loop over a buffer whose permitted region ends exactly
where the data does, where the break always fires before the end.
"""

import pytest

from repro.analysis.loops import LoopInfo
from repro.analysis.scev import ScalarEvolution
from repro.carat import CompileOptions, compile_carat
from repro.carat.intrinsics import GUARD_RANGE
from repro.frontend import compile_source
from tests.support import run_carat
from repro.transform.pass_manager import optimize_module

SEARCH_WITH_BREAK = """
long find(long *a, long n, long needle) {
  long i;
  for (i = 0; i < n; i++) {
    if (a[i] == needle) { break; }
  }
  return i;
}
void main() {
  long *a = (long*)malloc(sizeof(long) * 16);
  long i;
  for (i = 0; i < 16; i++) { a[i] = i * 10; }
  print_long(find(a, 1000000, 30));
  free((char*)a);
}
"""


def test_break_loop_not_merged():
    """find() claims n=1000000 but always breaks by i=3; merging its guard
    would check a megabyte the program never touches."""
    module = compile_source(SEARCH_WITH_BREAK)
    optimize_module(module)
    fn = module.get_function("find")
    li = LoopInfo.compute(fn)
    se = ScalarEvolution(fn, li)
    for loop in li.loops:
        if len(loop.exiting_blocks()) > 1:
            for block in loop.blocks:
                for inst in block.instructions:
                    from repro.ir.instructions import LoadInst

                    if isinstance(inst, LoadInst):
                        assert se.affine_range(inst.pointer, loop) is None


def test_break_program_runs_clean_under_carat():
    """End to end: the search program must not fault even though its loop
    bound reaches far past the allocation."""
    binary = compile_carat(
        SEARCH_WITH_BREAK, CompileOptions(tracking=False), module_name="search"
    )
    result = run_carat(binary)
    assert result.output == ["3"]
    assert result.process.runtime.stats.guard_faults == 0


def test_single_exit_loops_still_merge():
    source = """
    void main() {
      long *a = (long*)malloc(sizeof(long) * 64);
      long i;
      for (i = 0; i < 64; i++) { a[i] = i; }
      free((char*)a);
    }
    """
    binary = compile_carat(source, CompileOptions(tracking=False))
    assert binary.guard_stats.merged >= 1
    names = [
        inst.callee_name
        for fn in binary.module.defined_functions()
        for inst in fn.instructions()
        if getattr(inst, "callee_name", None) == GUARD_RANGE
    ]
    assert names
