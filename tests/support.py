"""Shared test helpers: the legacy ``run_*`` signatures over the session API.

The deprecated ``repro.machine.executor`` shims are gone (they raise
now); tests that want the compact call shape — positional program,
``kernel=``/``setup=``/``engine=`` keywords — import these instead.
Each helper is an explicit, warning-free veneer over
:class:`~repro.machine.session.CaratSession`, so every test exercises
the real run path.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.carat.pipeline import CaratBinary, CompileOptions
from repro.kernel.kernel import DEFAULT_HEAP, DEFAULT_STACK, Kernel
from repro.machine.executor import RunResult
from repro.machine.session import CaratSession, RunConfig
from repro.sanitizer import Sanitizer


def _run(
    mode: str,
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel],
    options: Optional[CompileOptions],
    setup: Optional[Callable],
    sanitizer: Optional[Sanitizer],
    **config_fields,
) -> RunResult:
    config = RunConfig(mode=mode, **config_fields)
    session = CaratSession(
        config, kernel=kernel, sanitizer=sanitizer, setup=setup
    )
    return session.run(program, options=options)


def run_carat(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    guard_mechanism: str = "mpx",
    options: Optional[CompileOptions] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    setup: Optional[Callable] = None,
    sanitize: bool = False,
    sanitizer: Optional[Sanitizer] = None,
    engine: str = "reference",
    safety: bool = False,
    agents: int = 0,
) -> RunResult:
    """Full CARAT treatment on physical addressing."""
    return _run(
        "carat", program, kernel, options, setup, sanitizer,
        guard_mechanism=guard_mechanism, entry=entry, max_steps=max_steps,
        heap_size=heap_size, stack_size=stack_size, name=name,
        sanitize=sanitize, engine=engine, safety=safety, agents=agents,
    )


def run_carat_baseline(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    sanitize: bool = False,
    sanitizer: Optional[Sanitizer] = None,
    engine: str = "reference",
) -> RunResult:
    """The uninstrumented program on physical addressing."""
    return _run(
        "baseline", program, kernel, None, None, sanitizer,
        entry=entry, max_steps=max_steps, heap_size=heap_size,
        stack_size=stack_size, name=name, sanitize=sanitize, engine=engine,
    )


def run_traditional(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    sanitize: bool = False,
    sanitizer: Optional[Sanitizer] = None,
    engine: str = "reference",
) -> RunResult:
    """The paging model: uninstrumented binary, MMU on every access."""
    return _run(
        "traditional", program, kernel, None, None, sanitizer,
        entry=entry, max_steps=max_steps, heap_size=heap_size,
        stack_size=stack_size, name=name, sanitize=sanitize, engine=engine,
    )
