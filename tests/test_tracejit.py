"""Targeted tests for the trace tier (:mod:`repro.machine.tracejit`).

The differential suite (``test_fastexec_differential``,
``test_fault_campaign``, ``test_multiproc``) proves the trace engine is
observably the reference engine; this file tests the tier's own
machinery — promotion thresholds, side exits, recording aborts and the
blacklist, guard respecialization on region-generation bumps, the new
counters, and per-interpreter isolation of compiled traces.
"""

import pytest

from repro.carat.pipeline import CompileOptions, compile_carat
from repro.kernel import PAGE_SIZE, Kernel
from tests.support import run_carat
from repro.machine.session import RunConfig
from repro.telemetry.metrics import run_snapshot

#: A nested hot loop over heap memory — the bread-and-butter promotion
#: case: the inner loop's back-edge target gets hot and its body (loads,
#: arithmetic, compare, branch) compiles into one superblock.  The
#: permuted index ``(i * 7) % 64`` defeats the static affine-range
#: merge (guard_opt Opt2), so the load guard stays inside the loop and
#: exercises per-site specialization; the permutation sums the same
#: elements, keeping the expected output easy to state.
HOT_SOURCE = """
void main() {
  long *a = (long*)malloc(64 * 8);
  long i;
  long r;
  long acc;
  acc = 0;
  for (i = 0; i < 64; i++) { a[i] = i * 3; }
  for (r = 0; r < 30; r++) {
    for (i = 0; i < 64; i++) { acc = acc + a[(i * 7) % 64]; }
  }
  print_long(acc);
  free(a);
}
"""
HOT_OUTPUT = [str(3 * (63 * 64 // 2) * 30)]

#: A loop whose uncommon arm (every 10th iteration) is off-trace: the
#: superblock records the common arm, so one side exit per multiple of
#: ten re-enters the block tier mid-loop.
BRANCHY_SOURCE = """
void main() {
  long i;
  long acc;
  acc = 0;
  for (i = 0; i < 400; i++) {
    if (i % 10 == 0) { acc = acc + 100; } else { acc = acc + 1; }
  }
  print_long(acc);
}
"""
BRANCHY_OUTPUT = [str(40 * 100 + 360)]

#: A hot loop whose body calls a defined function: the superblock spans
#: the call — the block tier's call op pushes the real frame and the
#: callee's body inlines right behind it on the trace.
CALLY_SOURCE = """
long helper(long x) { return x + 1; }
void main() {
  long i;
  long acc;
  acc = 0;
  for (i = 0; i < 100; i++) { acc = helper(acc); }
  print_long(acc);
}
"""
CALLY_OUTPUT = ["100"]

#: Deep recursion in the loop body: recording hits the inline depth cap
#: on every attempt, so no trace compiles and the anchors blacklist.
RECURSIVE_SOURCE = """
long down(long n) {
  long r;
  if (n <= 0) { return 0; }
  r = down(n - 1);
  return r + 1;
}
void main() {
  long i;
  long acc;
  acc = 0;
  for (i = 0; i < 50; i++) { acc = acc + down(40); }
  print_long(acc);
}
"""
RECURSIVE_OUTPUT = ["2000"]


def _run(source, engine="trace", threshold=2, max_blocks=24, **kwargs):
    def setup(interpreter):
        if hasattr(interpreter, "set_trace_tuning"):
            interpreter.set_trace_tuning(
                threshold=threshold, max_blocks=max_blocks
            )

    return run_carat(source, setup=setup, engine=engine, **kwargs)


# ---------------------------------------------------------------------------
# Promotion
# ---------------------------------------------------------------------------


class TestPromotion:
    def test_hot_loop_promotes_and_elides(self):
        result = _run(HOT_SOURCE)
        assert result.output == HOT_OUTPUT
        assert result.exit_code == 0
        assert result.stats.traces_compiled > 0
        # Specialized per-site guard checks served on the fast path.
        assert result.stats.guard_checks_elided > 0
        # Every compiled trace with specialized guards respecializes its
        # cells at least once (gen starts at -1, the first execution
        # resolves it against the live region map).
        assert result.stats.trace_respecializations > 0

    def test_trace_output_matches_reference(self):
        reference = run_carat(HOT_SOURCE, engine="reference")
        trace = _run(HOT_SOURCE)
        assert trace.output == reference.output
        assert trace.stats.cycles == reference.stats.cycles
        assert trace.stats.instructions == reference.stats.instructions

    def test_cold_threshold_never_promotes(self):
        result = _run(HOT_SOURCE, threshold=10**9)
        assert result.output == HOT_OUTPUT
        assert result.stats.traces_compiled == 0
        assert result.stats.trace_exits == 0
        assert result.stats.guard_checks_elided == 0

    def test_fast_engine_keeps_trace_counters_zero(self):
        result = _run(HOT_SOURCE, engine="fast")
        assert result.output == HOT_OUTPUT
        assert result.stats.traces_compiled == 0
        assert result.stats.trace_exits == 0
        assert result.stats.trace_respecializations == 0
        assert result.stats.guard_checks_elided == 0

    def test_max_blocks_caps_recording(self):
        # A one-block loop still fits in a one-block superblock; the cap
        # only rejects longer chains, so output and parity are unchanged.
        capped = _run(BRANCHY_SOURCE, max_blocks=1)
        roomy = _run(BRANCHY_SOURCE, max_blocks=24)
        assert capped.output == BRANCHY_OUTPUT
        assert roomy.output == BRANCHY_OUTPUT
        assert capped.stats.cycles == roomy.stats.cycles


# ---------------------------------------------------------------------------
# Side exits
# ---------------------------------------------------------------------------


class TestSideExits:
    def test_uncommon_arm_side_exits(self):
        result = _run(BRANCHY_SOURCE)
        assert result.output == BRANCHY_OUTPUT
        assert result.stats.traces_compiled > 0
        # ~40 of 400 iterations take the off-trace arm.
        assert result.stats.trace_exits > 0

    def test_side_exits_preserve_semantics(self):
        reference = run_carat(BRANCHY_SOURCE, engine="reference")
        trace = _run(BRANCHY_SOURCE)
        assert trace.output == reference.output
        assert trace.stats.cycles == reference.stats.cycles

    def test_hot_exit_path_compiles_linear_side_trace(self):
        # The uncommon arm runs 40 times — far past the threshold — so
        # its block promotes *via side exits* (the dispatch loop never
        # notifies for exit landings) and the recording finishes as a
        # linear side trace when it re-reaches the already-traced loop
        # header: at least the loop trace plus one side trace compile.
        result = _run(BRANCHY_SOURCE)
        assert result.output == BRANCHY_OUTPUT
        assert result.stats.traces_compiled >= 2


# ---------------------------------------------------------------------------
# Recording aborts and the blacklist
# ---------------------------------------------------------------------------


class TestAbortsAndBlacklist:
    def test_deep_recursion_aborts_and_blacklists(self):
        result = _run(RECURSIVE_SOURCE)
        assert result.output == RECURSIVE_OUTPUT
        # Every recording attempt blows the inline depth cap: no trace
        # ever compiles and after repeated aborts the anchors stop being
        # recorded.
        assert result.stats.traces_compiled == 0
        assert len(result.interpreter._trace_blacklist) > 0

    def test_recursion_keeps_parity(self):
        reference = run_carat(RECURSIVE_SOURCE, engine="reference")
        trace = _run(RECURSIVE_SOURCE)
        assert trace.output == reference.output
        assert trace.stats.cycles == reference.stats.cycles
        assert trace.stats.instructions == reference.stats.instructions


# ---------------------------------------------------------------------------
# Frame-spanning traces (call inlining)
# ---------------------------------------------------------------------------


class TestCallInlining:
    def test_call_in_loop_traces_through_the_frame(self):
        result = _run(CALLY_SOURCE)
        assert result.output == CALLY_OUTPUT
        assert result.stats.traces_compiled > 0
        assert len(result.interpreter._trace_blacklist) == 0

    def test_inlined_call_keeps_parity(self):
        reference = run_carat(CALLY_SOURCE, engine="reference")
        trace = _run(CALLY_SOURCE)
        assert trace.output == reference.output
        assert trace.stats.cycles == reference.stats.cycles
        assert trace.stats.instructions == reference.stats.instructions
        assert trace.stats.calls == reference.stats.calls


# ---------------------------------------------------------------------------
# Respecialization on region-generation bumps
# ---------------------------------------------------------------------------


class TestRespecialization:
    def _moving_run(self, engine, move):
        kernel = Kernel()
        moved = []

        def setup(interpreter):
            interpreter.set_tick_interval(200)
            if hasattr(interpreter, "set_trace_tuning"):
                interpreter.set_trace_tuning(threshold=2)
            if not move:
                return

            def hook(interp):
                if moved or interp.stats.instructions < 2_000:
                    return
                moved.append(True)
                process = interp.process
                victim = process.runtime.worst_case_allocation()
                snaps = interp.register_snapshots()
                kernel.request_page_move(
                    process,
                    victim.address & ~(PAGE_SIZE - 1),
                    register_snapshots=snaps,
                )
                interp.apply_snapshots(snaps)

            interpreter.tick_hook = hook

        return run_carat(HOT_SOURCE, kernel=kernel, setup=setup, engine=engine)

    def test_mid_run_move_respecializes(self):
        still = self._moving_run("trace", move=False)
        moved = self._moving_run("trace", move=True)
        assert still.output == HOT_OUTPUT
        assert moved.output == HOT_OUTPUT
        assert moved.stats.traces_compiled > 0
        # The generation bump forces the live trace's guard cells back
        # through the generic path, which re-bakes them — strictly more
        # respecializations than the undisturbed run.
        assert (
            moved.stats.trace_respecializations
            > still.stats.trace_respecializations
        )

    def test_mid_run_move_keeps_parity(self):
        reference = self._moving_run("reference", move=True)
        trace = self._moving_run("trace", move=True)
        assert trace.output == reference.output
        assert trace.exit_code == reference.exit_code
        assert trace.stats.cycles == reference.stats.cycles
        assert trace.stats.instructions == reference.stats.instructions
        assert bytes(trace.kernel.memory._data) == bytes(
            reference.kernel.memory._data
        )


# ---------------------------------------------------------------------------
# Tuning validation
# ---------------------------------------------------------------------------


class TestTuningValidation:
    def test_interpreter_rejects_bad_tuning(self):
        result = _run(HOT_SOURCE)
        interp = result.interpreter
        with pytest.raises(ValueError):
            interp.set_trace_tuning(threshold=0)
        with pytest.raises(ValueError):
            interp.set_trace_tuning(max_blocks=0)

    @pytest.mark.parametrize(
        "field", ["trace_threshold", "trace_max_blocks"]
    )
    def test_config_rejects_bad_tuning(self, field):
        with pytest.raises(ValueError, match=field):
            RunConfig(**{field: 0})


# ---------------------------------------------------------------------------
# Counters in the telemetry snapshot
# ---------------------------------------------------------------------------


class TestCountersSurface:
    def test_run_snapshot_carries_trace_counters(self):
        result = _run(HOT_SOURCE)
        document = run_snapshot(result)
        interp = document["interp"]
        assert interp["traces_compiled"] == result.stats.traces_compiled > 0
        assert interp["trace_exits"] == result.stats.trace_exits
        assert (
            interp["trace_respecializations"]
            == result.stats.trace_respecializations
        )
        assert (
            interp["guard_checks_elided"]
            == result.stats.guard_checks_elided
            > 0
        )

    def test_to_dict_carries_trace_counters(self):
        result = _run(HOT_SOURCE)
        stats = result.stats.to_dict()
        for key in (
            "traces_compiled",
            "trace_exits",
            "trace_respecializations",
            "guard_checks_elided",
        ):
            assert key in stats


# ---------------------------------------------------------------------------
# Per-interpreter isolation (shared trace-code cache, private closures)
# ---------------------------------------------------------------------------


class TestIsolation:
    def test_trace_code_cached_but_counted_per_run(self):
        binary = compile_carat(
            HOT_SOURCE, CompileOptions(), module_name="hot"
        )
        first = _run(binary)
        second = _run(binary)
        # The second run reuses the module's compiled trace sources but
        # still instantiates and counts its own traces — stats never
        # leak between interpreters.
        assert first.stats.traces_compiled > 0
        assert second.stats.traces_compiled == first.stats.traces_compiled
        assert first.output == second.output == HOT_OUTPUT
        key_count = len(first.interpreter._code.trace_codes)
        assert len(second.interpreter._code.trace_codes) == key_count
