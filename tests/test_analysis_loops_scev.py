"""Natural loops, preheaders, scalar evolution, trip counts."""

import pytest

from repro.analysis.loops import LoopInfo
from repro.analysis.scev import (
    SCEVAddRec,
    SCEVConstant,
    SCEVExpander,
    SCEVUnknown,
    ScalarEvolution,
)
from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    verify_function,
)
from repro.ir.types import I64, VOID, ptr
from tests.conftest import build_count_loop


class TestLoopDetection:
    def test_single_loop(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header is parts["loop"]
        assert parts["body"] in loop.blocks
        assert parts["exit"] not in loop.blocks
        assert loop.latches == [parts["body"]]
        assert loop.depth == 1

    def test_loop_queries(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        loop = li.loops[0]
        assert li.loop_for(parts["body"]) is loop
        assert li.loop_for(parts["exit"]) is None
        assert li.loop_depth(parts["body"]) == 1
        assert loop.exits() == [parts["exit"]]
        assert loop.exiting_blocks() == [parts["loop"]]

    def test_nested_loops(self, module):
        fn = Function("nest", FunctionType(VOID, [I64]), module, ["n"])
        entry = fn.add_block("entry")
        outer = fn.add_block("outer")
        inner = fn.add_block("inner")
        inner_latch = fn.add_block("inner.latch")
        outer_latch = fn.add_block("outer.latch")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        b.br(outer)
        b.position_at_end(outer)
        i = b.phi(I64, "i")
        ci = b.icmp("slt", i, fn.args[0])
        b.cond_br(ci, inner, done)
        b.position_at_end(inner)
        j = b.phi(I64, "j")
        cj = b.icmp("slt", j, fn.args[0])
        b.cond_br(cj, inner_latch, outer_latch)
        b.position_at_end(inner_latch)
        j2 = b.add(j, b.i64(1))
        b.br(inner)
        b.position_at_end(outer_latch)
        i2 = b.add(i, b.i64(1))
        b.br(outer)
        b.position_at_end(done)
        b.ret()
        i.add_incoming(b.i64(0), entry)
        i.add_incoming(i2, outer_latch)
        j.add_incoming(b.i64(0), outer)
        j.add_incoming(j2, inner_latch)
        verify_function(fn)

        li = LoopInfo.compute(fn)
        assert len(li.loops) == 2
        inner_loop = li.loop_for(inner_latch)
        outer_loop = li.loop_for(outer_latch)
        assert inner_loop is not outer_loop
        assert inner_loop.parent is outer_loop
        assert inner_loop.depth == 2
        assert li.loop_for(inner) is inner_loop

    def test_preheader_detection_and_creation(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        loop = li.loops[0]
        # entry is a valid preheader already (single outside pred, single succ).
        assert loop.preheader() is parts["entry"]
        pre = li.ensure_preheader(loop)
        assert pre is parts["entry"]

    def test_preheader_created_when_missing(self, module):
        # Two outside predecessors of the header force a new preheader.
        fn = Function("p", FunctionType(VOID, [I64]), module, ["n"])
        a = fn.add_block("a")
        c = fn.add_block("c")
        header = fn.add_block("header")
        body = fn.add_block("body")
        out = fn.add_block("out")
        b = IRBuilder(a)
        cond = b.icmp("slt", fn.args[0], b.i64(0))
        b.cond_br(cond, c, header)
        b.position_at_end(c)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I64, "i")
        hc = b.icmp("slt", i, fn.args[0])
        b.cond_br(hc, body, out)
        b.position_at_end(body)
        i2 = b.add(i, b.i64(1))
        b.br(header)
        b.position_at_end(out)
        b.ret()
        i.add_incoming(b.i64(0), a)
        i.add_incoming(b.i64(5), c)
        i.add_incoming(i2, body)
        verify_function(fn)

        li = LoopInfo.compute(fn)
        loop = li.loops[0]
        assert loop.preheader() is None
        pre = li.ensure_preheader(loop)
        assert pre is not None
        verify_function(fn)
        assert loop.preheader() is pre
        # Header phi now has exactly two incoming: preheader + latch.
        assert len(i.incoming) == 2


class TestScalarEvolution:
    def test_induction_variable(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        scev = se.analyze(parts["i"])
        assert isinstance(scev, SCEVAddRec)
        assert scev.start == SCEVConstant(0)
        assert scev.step == SCEVConstant(1)

    def test_gep_address_evolution(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        scev = se.analyze(parts["p"])
        assert isinstance(scev, SCEVAddRec)
        assert scev.step == SCEVConstant(8)
        assert scev.start == SCEVUnknown(fn.args[0])

    def test_derived_expression(self, module):
        fn, parts = build_count_loop(module)
        b = IRBuilder(parts["body"])
        b.position_before(parts["i_next"])
        scaled = b.mul(parts["i"], b.i64(4))
        shifted = b.add(scaled, b.i64(100))
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        scev = se.analyze(shifted)
        assert isinstance(scev, SCEVAddRec)
        assert scev.start == SCEVConstant(100)
        assert scev.step == SCEVConstant(4)

    def test_symbolic_trip_count(self, module):
        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        trip = se.trip_count(li.loops[0])
        assert trip is not None
        assert trip.predicate == "slt"
        assert trip.step == 1
        assert trip.constant_trip_count() is None  # bound is %n
        sym = se.symbolic_trip_count(trip)
        assert sym is not None

    def test_constant_trip_count(self, module):
        from repro.ir.values import ConstantInt

        fn, parts = build_count_loop(module, name="c10", bound=ConstantInt(I64, 10))
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        trip = se.trip_count(li.loops[0])
        assert trip is not None
        assert trip.constant_trip_count() == 10

    def test_affine_range(self, module):
        from repro.ir.values import ConstantInt

        fn, parts = build_count_loop(module, name="c8", bound=ConstantInt(I64, 8))
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        affine = se.affine_range(parts["p"], li.loops[0])
        assert affine is not None
        start, step, n = affine
        assert step == 8
        assert n == SCEVConstant(8)

    def test_non_affine_returns_none(self, module):
        # i * i is not an add recurrence.
        fn, parts = build_count_loop(module)
        b = IRBuilder(parts["body"])
        b.position_before(parts["i_next"])
        sq = b.mul(parts["i"], parts["i"])
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        scev = se.analyze(sq)
        assert not isinstance(scev, SCEVAddRec)

    def test_expander(self, module):
        from repro.ir.values import ConstantInt

        fn, parts = build_count_loop(module)
        li = LoopInfo.compute(fn)
        se = ScalarEvolution(fn, li)
        scev = se.analyze(parts["p"])
        assert isinstance(scev, SCEVAddRec)
        b = IRBuilder(parts["entry"])
        b.position_before(parts["entry"].terminator)
        value = SCEVExpander(b).expand(scev.start)
        assert value.type == I64
        verify_function(fn)
