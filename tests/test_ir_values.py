"""Values, constants, and use-def chain maintenance."""

import pytest

from repro.errors import IRError, IRTypeError
from repro.ir import (
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    UndefValue,
)
from repro.ir.types import ArrayType, F64, I8, I64, StructType, ptr
from repro.ir.values import walk_constants


class TestConstants:
    def test_constant_int_wraps(self):
        c = ConstantInt(I8, 300)
        assert c.value == 44

    def test_constant_int_equality(self):
        assert ConstantInt(I64, 5) == ConstantInt(I64, 5)
        assert ConstantInt(I64, 5) != ConstantInt(I8, 5)
        assert hash(ConstantInt(I64, 5)) == hash(ConstantInt(I64, 5))

    def test_constant_int_requires_int_type(self):
        with pytest.raises(IRTypeError):
            ConstantInt(F64, 1)  # type: ignore[arg-type]

    def test_constant_float(self):
        assert ConstantFloat(F64, 1.5).value == 1.5
        with pytest.raises(IRTypeError):
            ConstantFloat(I64, 1.5)  # type: ignore[arg-type]

    def test_null_requires_pointer(self):
        assert ConstantNull(ptr(I64)).ref() == "null"
        with pytest.raises(IRTypeError):
            ConstantNull(I64)  # type: ignore[arg-type]

    def test_array_arity_checked(self):
        ty = ArrayType(I64, 2)
        ConstantArray(ty, [ConstantInt(I64, 1), ConstantInt(I64, 2)])
        with pytest.raises(IRTypeError):
            ConstantArray(ty, [ConstantInt(I64, 1)])
        with pytest.raises(IRTypeError):
            ConstantArray(ty, [ConstantInt(I8, 1), ConstantInt(I8, 2)])

    def test_struct_fields_checked(self):
        ty = StructType([I64, F64])
        ConstantStruct(ty, [ConstantInt(I64, 1), ConstantFloat(F64, 2.0)])
        with pytest.raises(IRTypeError):
            ConstantStruct(ty, [ConstantFloat(F64, 2.0), ConstantInt(I64, 1)])

    def test_walk_constants(self):
        inner = ConstantArray(ArrayType(I8, 2), [ConstantInt(I8, 1), ConstantInt(I8, 2)])
        outer = ConstantStruct(StructType([ArrayType(I8, 2)]), [inner])
        assert len(list(walk_constants(outer))) == 4

    def test_zero_and_undef(self):
        assert ConstantZero(I64) == ConstantZero(I64)
        assert UndefValue(I64) == UndefValue(I64)
        assert UndefValue(I64) != UndefValue(I8)


class TestUseDef:
    def _simple_fn(self):
        m = Module("t")
        fn = Function("f", FunctionType(I64, [I64]), m, ["x"])
        block = fn.add_block("entry")
        return m, fn, IRBuilder(block)

    def test_uses_tracked_on_build(self):
        _, fn, b = self._simple_fn()
        x = fn.args[0]
        add = b.add(x, x)
        assert add in x.users
        assert x.num_uses == 2  # both operands

    def test_replace_all_uses_with(self):
        _, fn, b = self._simple_fn()
        x = fn.args[0]
        add = b.add(x, b.i64(1))
        mul = b.mul(add, add)
        replacement = b.sub(x, b.i64(2))
        add.replace_all_uses_with(replacement)
        assert mul.lhs is replacement
        assert mul.rhs is replacement
        assert add.num_uses == 0
        assert replacement.num_uses == 2

    def test_rauw_type_mismatch_rejected(self):
        _, fn, b = self._simple_fn()
        add = b.add(fn.args[0], b.i64(1))
        with pytest.raises(IRTypeError):
            add.replace_all_uses_with(ConstantFloat(F64, 1.0))

    def test_set_operand_updates_uses(self):
        _, fn, b = self._simple_fn()
        x = fn.args[0]
        add = b.add(x, b.i64(1))
        add.set_operand(1, x)
        assert add.rhs is x
        assert x.num_uses == 2

    def test_erase_requires_no_uses(self):
        _, fn, b = self._simple_fn()
        add = b.add(fn.args[0], b.i64(1))
        mul = b.mul(add, b.i64(2))
        with pytest.raises(IRError):
            add.erase_from_parent()
        mul.replace_all_uses_with(ConstantInt(I64, 0)) if mul.num_uses else None
        mul.erase_from_parent()
        add.erase_from_parent()
        assert fn.args[0].num_uses == 0

    def test_erase_severs_operand_uses(self):
        _, fn, b = self._simple_fn()
        x = fn.args[0]
        add = b.add(x, b.i64(1))
        assert x.num_uses == 1
        add.erase_from_parent()
        assert x.num_uses == 0
