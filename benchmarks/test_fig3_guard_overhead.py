"""Figure 3: run-time overhead of protection (guard injection).

Two panels: (a) guards with only general optimizations applied, and
(b) guards with the CARAT-specific optimizations.  Each panel compares
the MPX-assisted guard (single-cycle bounds check) against the pure
software "Range Guard" (compare-and-branch).  Overheads are cycles
relative to the uninstrumented baseline on physical addressing.

Paper shape: (a) noticeably worse than (b); MPX consistently below the
software range guard; with CARAT opts + MPX the mean overhead is small
(~5.9% on the paper's testbed).
"""

from harness import SUITE, emit_table, geomean


def _collect(runs):
    rows = []
    for name in SUITE:
        general_mpx = runs.overhead(name, "guards_general+mpx")
        general_sw = runs.overhead(name, "guards_general+binary_search")
        carat_mpx = runs.overhead(name, "guards_carat+mpx")
        carat_sw = runs.overhead(name, "guards_carat+binary_search")
        rows.append((name, general_mpx, general_sw, carat_mpx, carat_sw))
    return rows


def test_fig3_guard_overheads(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    gm = [geomean([r[i] for r in rows]) for i in range(1, 5)]
    emit_table(
        "fig3_guard_overhead",
        "Figure 3: guard overhead vs baseline "
        "(a: general opts only / b: +CARAT opts; mpx vs software range guard)",
        ["benchmark", "a_mpx", "a_range", "b_mpx", "b_range"],
        rows,
        footer=[
            f"geomean     a_mpx={gm[0]:.3f} a_range={gm[1]:.3f} "
            f"b_mpx={gm[2]:.3f} b_range={gm[3]:.3f}",
            "paper: b_mpx mean ~1.059; a panels visibly worse than b",
        ],
    )
    general_mpx, general_sw, carat_mpx, carat_sw = gm
    # Shape: CARAT opts strictly help on the mean, MPX <= software guard.
    assert carat_mpx <= general_mpx + 1e-9
    assert carat_sw <= general_sw + 1e-9
    assert carat_mpx <= carat_sw + 1e-9
    # The headline: with CARAT opts and MPX, protection is cheap.
    assert carat_mpx < 1.35
    # Every configuration must still be >= 1 on average (guards aren't free).
    assert carat_mpx >= 1.0 - 1e-9
