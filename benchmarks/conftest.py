"""Benchmark fixtures: the shared run cache and import path."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import ENGINE, SCALE, RunCache  # noqa: E402


@pytest.fixture(scope="session")
def runs():
    """One cache of compiled binaries and runs for the whole session."""
    return RunCache(SCALE, engine=ENGINE)
