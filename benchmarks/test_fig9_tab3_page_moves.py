"""Figure 9 + Table 3: the cost of CARAT page movement.

Figure 9: run each workload while the kernel repeatedly moves the
*worst-case* page (the one overlapping the allocation with the most
escapes) at increasing rates — 1/s, 100/s, 10,000/s, 20,000/s on the
simulated clock — and report run-time overhead vs undisturbed CARAT.
The paper's shape: negligible at real-world rates (≤1/s; Table 2 shows
Linux moves <1/s), growing to 2-4x+ at rates 4-6 orders of magnitude
beyond reality; some workloads become infeasible (the asterisks).

Table 3: the per-move cycle breakdown — Page Expand / Patch Gen & Exec /
Register Patch / Allocation & Movement — plus the "prototype w/o expand
/ total" fraction, whose small geomean (paper: 0.05) is the argument for
allocation-granularity CARAT (Section 6).
"""

from harness import SUITE, arith_mean, emit_table, geomean

from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter
from repro.runtime.patching import MoveCost

#: Simulated clock (2.3 GHz scaled ~10^3, like the workload footprints).
CLOCK_HZ = 2.3e6

MOVE_RATES = [1, 100, 10_000, 20_000]

#: Moves per run beyond which we declare the configuration infeasible
#: (the paper's asterisks) and stop measuring.
MOVE_CAP = 250

#: Figure 9 exercises the full suite in the paper; interpretation cost
#: limits us to a representative slice covering every behaviour class.
FIG9_SUITE = ["hpccg", "canneal", "streamcluster", "swaptions", "mcf", "nab", "ft"]


def _run_with_moves(runs, name, rate_per_s):
    binary = runs.binary(name, "full")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interval_cycles = CLOCK_HZ / rate_per_s
    state = {"next": interval_cycles, "moves": 0, "cost": MoveCost(), "capped": False}

    def mover(it):
        if state["moves"] >= MOVE_CAP:
            state["capped"] = True
            return
        while it.stats.cycles >= state["next"]:
            state["next"] += interval_cycles
            runtime = process.runtime
            victim = runtime.worst_case_allocation()
            if victim is None or victim.kind == "code":
                return
            snaps = it.register_snapshots()
            plan, cost, cycles = kernel.request_page_move(
                process,
                victim.address & ~(PAGE_SIZE - 1),
                register_snapshots=snaps,
            )
            it.apply_snapshots(snaps)
            it.stats.cycles += cycles
            state["moves"] += 1
            state["cost"] = state["cost"] + cost
            if state["moves"] >= MOVE_CAP:
                state["capped"] = True
                return

    interp.tick_hook = mover
    interp.tick_interval = 2_000
    interp.run("main", max_steps=50_000_000)
    return interp, state


def _collect_fig9(runs):
    rows = []
    costs = {}
    for name in FIG9_SUITE:
        base_cycles = runs.run(name, "full").cycles
        cells = [name]
        for rate in MOVE_RATES:
            interp, state = _run_with_moves(runs, name, rate)
            overhead = interp.stats.cycles / base_cycles
            cells.append(f"{overhead:.3f}{'*' if state['capped'] else ''}")
            if rate == MOVE_RATES[-1] and state["moves"]:
                costs[name] = (state["cost"], state["moves"])
        rows.append(tuple(cells))
    return rows, costs


def test_fig9_page_move_overhead_and_tab3_breakdown(runs, benchmark):
    rows, costs = benchmark.pedantic(
        _collect_fig9, args=(runs,), rounds=1, iterations=1
    )
    emit_table(
        "fig9_page_move_overhead",
        "Figure 9: overhead of worst-case page moves at increasing rates "
        "(* = capped at 250 moves, the paper's infeasible-measurement marker)",
        ["benchmark"] + [f"{r}/s" for r in MOVE_RATES],
        rows,
    )

    # Table 3 from the same experiment: mean per-move cycle breakdown.
    t3_rows = []
    fractions = []
    for name, (cost, moves) in sorted(costs.items()):
        expand = cost.page_expand / moves
        patch = cost.patch_gen_exec / moves
        regs = cost.register_patch / moves
        move = cost.alloc_and_move / moves
        total = expand + patch + regs + move
        proto = expand + patch + regs
        wo_expand = patch + regs
        fraction = wo_expand / total if total else 0.0
        fractions.append(fraction)
        t3_rows.append(
            (name, int(expand), int(patch), int(regs), int(move),
             int(proto), int(wo_expand), int(total), fraction)
        )
    emit_table(
        "tab3_move_cost_breakdown",
        "Table 3: worst-case page movement cost breakdown (cycles/move)",
        ["benchmark", "page_expand", "patch_gen_exec", "register_patch",
         "alloc_and_move", "prototype", "proto_wo_expand", "total",
         "wo_expand/total"],
        t3_rows,
        footer=[
            f"geomean wo_expand/total: {geomean(fractions):.4f} "
            f"(paper: 0.0515 — the granularity-mismatch ablation)",
        ],
    )

    # --- Figure 9 shape assertions ---
    def overhead(row, rate_index):
        return float(str(row[1 + rate_index]).rstrip("*"))

    for row in rows:
        # 1/s: negligible overhead, as the paper stresses.
        assert overhead(row, 0) < 1.2, row[0]
        # Overheads grow (weakly) with the move rate.
        assert overhead(row, 3) >= overhead(row, 0) - 0.05, row[0]
    # At 10k-20k/s the mean overhead is clearly significant.
    high = [overhead(r, 3) for r in rows]
    assert arith_mean(high) > 1.25

    # --- Table 3 shape assertions ---
    assert t3_rows, "the high-rate runs must have performed moves"
    for row in t3_rows:
        assert row[7] > 0  # total
        # Register patching is the minuscule component.
        assert row[3] <= row[7] * 0.25
    # The granularity mismatch dominates: w/o-expand fraction is small.
    assert geomean(fractions) < 0.6
