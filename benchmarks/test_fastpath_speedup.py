"""The fast-engine speedup benchmark (two-level fast path).

For the guard-heavy headline workloads this measures wall-clock under
the reference interpreter vs the pre-compiled fast engine, verifies that
both produce the *same* results (output, exit code, modeled cycles, and
guard counts — the engines' contract), and records the guard-cache hit
rate the epoch-invalidated region cache achieves.

Emitted artifacts:

* ``benchmarks/results/fastpath_<workload>.json`` — one file per
  benchmark with both engines' wall-clock and the cache counters;
* ``benchmarks/results/fastpath.json`` and the repo-root
  ``BENCH_fastpath.json`` — the aggregate: per-workload speedups, the
  geomean, and the headline verdict.

The assertion floor here is the CI gate (fast must be at least 1.5x
faster on the headline workload at any scale); the committed
``BENCH_fastpath.json`` is generated at ``CARAT_BENCH_SCALE=small``,
where the headline speedup clears the 3x design target.
"""

import json
import time
from pathlib import Path

from harness import SCALE, _compile_options, emit_json, emit_table, geomean, run_carat

from repro.carat.pipeline import compile_carat
from repro.workloads import get_workload

#: Guard-heavy workloads; ``hpccg`` is the headline (first in the
#: paper's figure order).
WORKLOADS = ["hpccg", "cg", "ep"]
HEADLINE = "hpccg"

#: CI floor, deliberately below the 3x design target so tiny-scale smoke
#: runs on shared CI machines don't flake; the target is asserted on the
#: recorded numbers at small scale.
MIN_HEADLINE_SPEEDUP = 1.5
MIN_HIT_RATE = 0.90

REPO_ROOT = Path(__file__).parent.parent


def _timed_run(binary, workload, engine, repeats=5):
    """Best-of-N wall clock plus the last run's result (results are
    deterministic, so any run's numbers represent all of them)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_carat(binary, guard_mechanism="mpx", name=workload, engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _comparable(result):
    return (
        result.exit_code,
        tuple(result.output),
        result.cycles,
        result.instructions,
        result.process.runtime.stats.guards_executed,
        result.process.runtime.stats.guard_faults,
    )


def test_fastpath_speedup():
    rows = []
    per_workload = {}
    for workload in WORKLOADS:
        source = get_workload(workload, SCALE).source
        binary = compile_carat(
            source, _compile_options("guards_carat"), module_name=workload
        )
        # One warm-up run populates the module's dispatch cache so the
        # measurement sees the steady state (compile-once, run-many).
        run_carat(binary, guard_mechanism="mpx", name=workload, engine="fast")
        ref_time, ref_result = _timed_run(binary, workload, "reference")
        fast_time, fast_result = _timed_run(binary, workload, "fast")
        assert _comparable(ref_result) == _comparable(fast_result), (
            f"{workload}: engines disagree"
        )
        rt = fast_result.process.runtime.stats
        hit_rate = rt.region_cache_hit_rate()
        speedup = ref_time / fast_time
        istats = fast_result.stats
        entry = {
            "scale": SCALE,
            "reference_seconds": round(ref_time, 6),
            "fast_seconds": round(fast_time, 6),
            "speedup": round(speedup, 3),
            "guard_cache_hits": rt.region_cache_hits,
            "guard_cache_misses": rt.region_cache_misses,
            "guard_cache_invalidations": rt.region_cache_invalidations,
            "guard_cache_hit_rate": round(hit_rate, 4),
            "compiled_blocks": istats.compiled_blocks,
            "dispatch_cache_hits": istats.dispatch_cache_hits,
            "dispatch_cache_misses": istats.dispatch_cache_misses,
            "cycles": fast_result.cycles,
            "guards_executed": rt.guards_executed,
        }
        per_workload[workload] = entry
        emit_json(f"fastpath_{workload}", {"workload": workload, **entry})
        rows.append(
            (workload, ref_time, fast_time, speedup, hit_rate)
        )

    speedups = [per_workload[w]["speedup"] for w in WORKLOADS]
    aggregate = {
        "scale": SCALE,
        "headline": HEADLINE,
        "headline_speedup": per_workload[HEADLINE]["speedup"],
        "headline_hit_rate": per_workload[HEADLINE]["guard_cache_hit_rate"],
        "geomean_speedup": round(geomean(speedups), 3),
        "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
        "target_speedup": 3.0,
        "workloads": per_workload,
    }
    emit_json("fastpath", aggregate)
    (REPO_ROOT / "BENCH_fastpath.json").write_text(
        json.dumps(aggregate, indent=2) + "\n"
    )

    emit_table(
        "fastpath_speedup",
        f"Fast-engine speedup vs reference interpreter ({SCALE} scale, "
        "guards_carat+mpx, best of 5)",
        ["benchmark", "ref_s", "fast_s", "speedup", "hit_rate"],
        rows,
        footer=[
            f"geomean speedup {aggregate['geomean_speedup']:.3f}x; "
            f"headline {HEADLINE} {aggregate['headline_speedup']:.2f}x "
            f"(floor {MIN_HEADLINE_SPEEDUP}x, target 3x at small scale)"
        ],
    )

    assert aggregate["headline_speedup"] >= MIN_HEADLINE_SPEEDUP
    assert aggregate["headline_hit_rate"] > MIN_HIT_RATE


def test_fastpath_sanitized_parity():
    """Both engines under the cross-layer sanitizer: the fast path must
    not trip a single invariant the reference run does not."""
    source = get_workload(HEADLINE, "tiny").source
    binary = compile_carat(
        source, _compile_options("full"), module_name=HEADLINE
    )
    results = {
        engine: run_carat(
            binary, guard_mechanism="mpx", name=HEADLINE,
            sanitize=True, engine=engine,
        )
        for engine in ("reference", "fast")
    }
    for engine, result in results.items():
        assert result.sanitizer is not None and result.sanitizer.ok, (
            f"{engine}: {result.sanitizer.describe()}"
        )
    assert _comparable(results["reference"]) == _comparable(results["fast"])
