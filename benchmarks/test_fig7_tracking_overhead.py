"""Figure 7: run-time overhead of tracking allocations and escapes.

Tracking-only instrumentation (no guards) vs the uninstrumented baseline.
The paper's geomean overhead is 1.9% — "negligible and therefore a
nonissue" — with no workload far above ~1.1x, including streamcluster
despite its early escape burst.
"""

from harness import SUITE, emit_table, geomean


def _collect(runs):
    rows = []
    for name in SUITE:
        overhead = runs.overhead(name, "tracking")
        tracked = runs.run(name, "tracking")
        rows.append(
            (name, overhead, tracked.tracking_events, tracked.escapes_recorded)
        )
    return rows


def test_fig7_tracking_time_overhead(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    gm = geomean([r[1] for r in rows])
    emit_table(
        "fig7_tracking_overhead",
        "Figure 7: time overhead of allocation/escape tracking",
        ["benchmark", "overhead", "tracking_events", "escape_records"],
        rows,
        footer=[f"geomean overhead: {gm:.4f} (paper: 1.019)"],
    )
    # The headline: tracking is cheap.
    assert gm < 1.10
    # Nothing blows up: even the allocation-heavy workloads stay modest.
    assert max(r[1] for r in rows) < 1.5
    # But tracking is real work — workloads with many events cost >= 1.0.
    busiest = max(rows, key=lambda r: r[2])
    assert busiest[1] >= 1.0
