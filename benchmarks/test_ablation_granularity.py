"""Ablation: allocation-granularity vs page-granularity movement.

Section 6 argues the prototype's biggest limitation is operating on pages
instead of the program's natural allocations, and Table 3's
"prototype w/o expand / total" column projects a ~95% cost reduction if
the page abstraction were dropped.  This repository implements that
future-work design (`Kernel.request_allocation_move`), so the ablation
can be *measured* instead of projected: for the same worst-case victim,
move it once at each granularity and compare cycle costs.

A second ablation measures the escape-batching design choice from
Section 4.2 ("by batching the latter, we can mitigate redundant/outdated
work"): tracking cycles with batch resolution vs flush-per-record.
"""

from harness import SUITE, emit_table, geomean, run_carat

from repro.carat.pipeline import compile_carat
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter

ABLATION_SUITE = ["canneal", "freqmine", "mcf", "nab", "omnetpp", "xalancbmk", "streamcluster"]


def _midpoint_state(runs, name):
    binary = runs.binary(name, "full")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")
    # Run half the undisturbed instruction count so the heap is populated.
    half = max(2000, runs.run(name, "full").instructions // 2)
    interp.run_steps(half)
    process.runtime.flush_escapes()
    return kernel, process, interp


def _collect_granularity(runs):
    rows = []
    for name in ABLATION_SUITE:
        kernel, process, interp = _midpoint_state(runs, name)
        victim = process.runtime.worst_case_allocation()
        if victim is None or victim.kind == "code":
            continue
        # Allocation-granularity move first (does not disturb regions).
        snaps = interp.register_snapshots()
        alloc_cost, _ = kernel.request_allocation_move(
            process, victim, register_snapshots=snaps
        )
        interp.apply_snapshots(snaps)
        # Then a page-granularity move of the same allocation.
        snaps = interp.register_snapshots()
        _, page_cost, _ = kernel.request_page_move(
            process,
            victim.address & ~(PAGE_SIZE - 1),
            register_snapshots=snaps,
        )
        interp.apply_snapshots(snaps)
        ratio = alloc_cost.total / page_cost.total if page_cost.total else 1.0
        rows.append(
            (name, victim.size, page_cost.total, alloc_cost.total, ratio)
        )
    return rows


def _collect_batching():
    rows = []
    for name in ("canneal", "mcf", "omnetpp"):
        from repro.workloads import get_workload

        source = get_workload(name, "tiny").source
        batched = run_carat(compile_carat(source, module_name=name), name=name)
        unbatched_binary = compile_carat(source, module_name=name)
        kernel = Kernel()
        process = kernel.load_carat(unbatched_binary)
        process.runtime.escapes.batch_limit = 1  # flush on every record
        interp = Interpreter(process, kernel)
        interp.run("main", max_steps=50_000_000)
        rows.append(
            (
                name,
                batched.stats.tracking_cycles,
                interp.stats.tracking_cycles,
                interp.stats.tracking_cycles
                / max(1, batched.stats.tracking_cycles),
            )
        )
    return rows


def test_ablation_allocation_vs_page_granularity(runs, benchmark):
    rows = benchmark.pedantic(
        _collect_granularity, args=(runs,), rounds=1, iterations=1
    )
    ratios = [r[4] for r in rows]
    emit_table(
        "ablation_granularity",
        "Ablation: one worst-case move, allocation vs page granularity",
        ["benchmark", "victim_bytes", "page_move_cycles",
         "alloc_move_cycles", "alloc/page"],
        rows,
        footer=[
            f"geomean cost ratio: {geomean(ratios):.3f} "
            f"(Table 3 projects ~0.05 at full scale; smaller victims -> "
            f"bigger savings)",
        ],
    )
    assert rows
    # Allocation-granularity must win for every victim.
    for row in rows:
        assert row[3] < row[2], row[0]
    assert geomean(ratios) < 0.7


def test_ablation_escape_batching(benchmark):
    rows = benchmark.pedantic(_collect_batching, rounds=1, iterations=1)
    emit_table(
        "ablation_escape_batching",
        "Ablation: escape batching (Section 4.2) vs flush-per-record",
        ["benchmark", "batched_cycles", "unbatched_cycles", "unbatched/batched"],
        rows,
    )
    # Batching must never lose; it wins where escapes are frequent.
    for row in rows:
        assert row[3] >= 0.99, row[0]
