"""Long-horizon soak under continuous chaos: the steady-state benchmark.

Not a figure from the paper — this benchmark operates the paper's
machinery the way a *service* would (Sections 6-7 argue CARAT is meant
to run underneath long-lived workloads): four request-serving tenants,
a deliberately tight fast tier so the tiering balancer keeps generating
Figure-8 move traffic, and a seeded chaos schedule arming protocol
faults every epoch for the whole horizon.

Accept (the hard acceptance criteria of the soak harness):

* the headline soak (>=100k requests, 4 tenants, chaos rate 2.0)
  completes on **all three engines** with zero steady-state verdicts
  and zero sanitizer violations;
* every injected fault is absorbed — retried to success or degraded
  into a quarantine that *drained* (no quarantine outlives its
  cooldown, none is left at the end);
* the whole-run fingerprint is **bit-identical across engines and
  across a re-run with the same seed**;
* ``BENCH_soak.json`` records the headline run (throughput, p99
  latency, EFI trajectory, fault accounting) for the CI gate.

Scale with ``CARAT_SOAK_REQUESTS=20000 pytest
benchmarks/test_soak_steadystate.py`` for a quicker local pass.
"""

import json
import os
from pathlib import Path

from harness import emit_json, emit_table

from repro.machine.session import RunConfig
from repro.soak import SoakRunner

REPO_ROOT = Path(__file__).parent.parent

REQUESTS = int(os.environ.get("CARAT_SOAK_REQUESTS", "100000"))
TENANTS = 4
CHAOS_RATE = 2.0
SEED = 77
ENGINES = ("reference", "fast", "trace")


def _soak(engine: str, seed: int = SEED):
    config = RunConfig(
        engine=engine,
        name="kvservice-soak",
        soak_requests=REQUESTS,
        soak_tenants=TENANTS,
        soak_horizon=400,
        soak_rounds_per_epoch=25,
        quantum=1000,
        chaos_rate=CHAOS_RATE,
        chaos_seed=seed,
    )
    runner = SoakRunner(
        config,
        crash_dump_path=str(REPO_ROOT / f"soak-crash-{engine}.json"),
    )
    return runner.run()


def test_soak_steady_state_headline():
    reports = {}
    for engine in ENGINES:
        report = _soak(engine)
        assert report.ok, (engine, [v["detail"] for v in report.verdicts])
        assert report.requests_completed == report.requests_target
        assert report.faults["fired"] > 0, "chaos never hit a move"
        # Every fault accounted for: retried to success, or degraded
        # into a quarantine that drained within its cooldown.
        assert report.faults["quarantines_stuck"] == 0
        assert (
            report.faults["quarantines_drained"]
            == report.faults["quarantines_entered"]
        )
        assert "0 error(s)" in report.sanitizer
        reports[engine] = report

    fingerprints = {r.fingerprint() for r in reports.values()}
    assert len(fingerprints) == 1, "engines diverged on the soak"

    rerun = _soak("fast")
    assert rerun.fingerprint() == reports["fast"].fingerprint(), (
        "same seed must reproduce the identical soak"
    )

    headline = reports["fast"]
    aggregate = {
        "schema": "carat.soakbench.v1",
        "workload": "kvservice",
        "requests": REQUESTS,
        "tenants": TENANTS,
        "chaos_rate": CHAOS_RATE,
        "seed": SEED,
        "engines": sorted(ENGINES),
        "fingerprint": headline.fingerprint(),
        "rerun_identical": True,
        "epochs": headline.epochs,
        "machine_cycles": headline.machine_cycles,
        "throughput_rpkc": round(headline.throughput_rpkc(), 4),
        "latency_p50": headline.latency_p50,
        "latency_p99": headline.latency_p99,
        "efi_trajectory": [round(v, 6) for v in headline.efi_trajectory],
        "faults": headline.faults,
        "verdicts": headline.verdicts,
        "dropped_events": headline.dropped_events,
        "sanitizer": headline.sanitizer,
    }
    emit_json("soak", aggregate)
    (REPO_ROOT / "BENCH_soak.json").write_text(
        json.dumps(aggregate, indent=2) + "\n"
    )

    efi = headline.efi_trajectory
    emit_table(
        "soak_steadystate",
        f"Chaos soak: {REQUESTS} requests over {TENANTS} kvservice tenants "
        f"(chaos rate {CHAOS_RATE}, seed {SEED}; identical on "
        f"{'/'.join(ENGINES)})",
        ["metric", "value"],
        [
            ("epochs", headline.epochs),
            ("machine cycles", headline.machine_cycles),
            ("requests/kilocycle", round(headline.throughput_rpkc(), 3)),
            ("p50 latency (cycles)", headline.latency_p50),
            ("p99 latency (cycles)", headline.latency_p99),
            ("EFI first/last/max",
             f"{efi[0]:.4f}/{efi[-1]:.4f}/{max(efi):.4f}"),
            ("faults armed", headline.faults["injected"]),
            ("faults fired", headline.faults["fired"]),
            ("move retries", headline.faults["move_retries"]),
            ("moves degraded", headline.faults["moves_degraded"]),
            ("quarantines drained", headline.faults["quarantines_drained"]),
            ("dropped trace events", headline.dropped_events),
            ("verdicts", len(headline.verdicts)),
        ],
    )
