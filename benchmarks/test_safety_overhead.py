"""Safety-mode overhead and detection benchmark (``--safety``).

Safety mode answers CryptSan's question — does every region-legal
access land in memory the program currently *owns?* — by probing the
allocation table behind each guard.  This benchmark records what that
oracle costs and what it buys:

* **Overhead** — modeled-cycle inflation of ``safety=True`` vs plain
  CARAT guards per workload per engine, plus the check count (every
  checked access pays two extra rb-tree probes).
* **Detection** — the adversarial matrix: all four planted bugs
  (use-after-free and out-of-bounds, read and write) must raise
  :class:`~repro.errors.SafetyFault` on every engine.

Emitted artifacts:

* ``benchmarks/results/safety_<workload>.json`` — one file per
  workload with per-engine cycles/checks/overhead;
* ``benchmarks/results/safety_overhead.json`` and the repo-root
  ``BENCH_safety.json`` — the aggregate: per-workload overheads, the
  geomean, and the detection-matrix verdict.

The assertion floor doubles as the CI gate: detection must be 4/4 on
every engine, outputs must be bit-identical with safety on, and the
geomean cycle overhead must stay under the design ceiling.
"""

import json
from pathlib import Path

import pytest

from harness import SCALE, emit_json, emit_table, geomean, run_carat

from repro.errors import SafetyFault
from repro.workloads import get_workload
from repro.workloads.adversarial import EXPECTED_KINDS, adversarial_workload

#: Guard-heavy headliners plus the DMA streaming service — the workload
#: whose agents motivated giving safety mode the same mediated API.
WORKLOADS = ["hpccg", "cg", "dmastream"]
ENGINES = ["reference", "fast", "trace"]

#: Design ceiling for the geomean modeled-cycle overhead.  CryptSan
#: reports ~2x worst case on SPEC; our table probe is cheaper than its
#: HMAC recompute, so the modeled geomean must stay well under that.
MAX_GEOMEAN_OVERHEAD = 2.0

REPO_ROOT = Path(__file__).parent.parent


def _pair(source, workload, engine):
    plain = run_carat(source, name=workload, engine=engine)
    checked = run_carat(source, name=workload, engine=engine, safety=True)
    assert checked.exit_code == plain.exit_code == 0
    assert checked.output == plain.output, f"{workload}/{engine}: output drift"
    safety = checked.process.runtime.safety
    assert safety is not None and not safety.violations, (
        f"{workload}/{engine}: false positive: {safety.describe()}"
    )
    return plain, checked, safety


def test_safety_overhead():
    rows = []
    per_workload = {}
    for workload in WORKLOADS:
        source = get_workload(workload, SCALE).source
        engines = {}
        for engine in ENGINES:
            plain, checked, safety = _pair(source, workload, engine)
            overhead = checked.cycles / plain.cycles
            engines[engine] = {
                "plain_cycles": plain.cycles,
                "safety_cycles": checked.cycles,
                "overhead": round(overhead, 4),
                "checks": safety.checks,
                "tombstones": len(safety.tombstones),
            }
        entry = {"scale": SCALE, "engines": engines}
        per_workload[workload] = entry
        emit_json(f"safety_{workload}", {"workload": workload, **entry})
        ref = engines["reference"]
        rows.append(
            (
                workload,
                ref["plain_cycles"],
                ref["safety_cycles"],
                ref["overhead"],
                ref["checks"],
            )
        )

    detection = {}
    for engine in ENGINES:
        verdicts = {}
        for name, expected in sorted(EXPECTED_KINDS.items()):
            bug = adversarial_workload(name, "tiny")
            with pytest.raises(SafetyFault) as fault:
                run_carat(bug.source, name=name, engine=engine, safety=True)
            assert fault.value.violation.kind == expected
            verdicts[name] = fault.value.violation.kind
        detection[engine] = verdicts

    overheads = [
        per_workload[w]["engines"]["reference"]["overhead"] for w in WORKLOADS
    ]
    aggregate = {
        "scale": SCALE,
        "geomean_overhead": round(geomean(overheads), 4),
        "max_geomean_overhead": MAX_GEOMEAN_OVERHEAD,
        "detected": sum(len(v) for v in detection.values()),
        "expected_detections": len(EXPECTED_KINDS) * len(ENGINES),
        "detection": detection,
        "workloads": per_workload,
    }
    emit_json("safety_overhead", aggregate)
    (REPO_ROOT / "BENCH_safety.json").write_text(
        json.dumps(aggregate, indent=2) + "\n"
    )

    emit_table(
        "safety_overhead",
        f"Safety-mode modeled-cycle overhead ({SCALE} scale, reference "
        "engine; detection matrix on all three)",
        ["benchmark", "plain_cyc", "safety_cyc", "overhead", "checks"],
        rows,
        footer=[
            f"geomean overhead {aggregate['geomean_overhead']:.3f}x "
            f"(ceiling {MAX_GEOMEAN_OVERHEAD}x); detection "
            f"{aggregate['detected']}/{aggregate['expected_detections']} "
            "planted bugs across engines"
        ],
    )

    assert aggregate["detected"] == aggregate["expected_detections"]
    assert aggregate["geomean_overhead"] < MAX_GEOMEAN_OVERHEAD
