"""Table 1: effectiveness of the CARAT-specific guard optimizations.

For each benchmark the paper reports, as fractions of the originally
injected guards: the guards statically remaining after optimization
("Opt. Guards"), those no optimization touched ("Untouched"), and those
handled by Opt 1 (hoisting), Opt 2 (scalar evolution merging), and Opt 3
(redundancy elimination).  The fractions of the last four columns sum to
one by construction.

Paper means: Opt.Guards 0.587, Untouched 0.331, Opt1 0.113, Opt2 0.143,
Opt3 0.414.  Expected shape here: a large minority untouched, every
optimization contributing, array-sweep workloads leaning on Opt2.
"""

from harness import SUITE, arith_mean, emit_table


def _collect(runs):
    rows = []
    for name in SUITE:
        binary = runs.binary(name, "guards_carat+mpx")
        row = binary.guard_stats.as_table1_row()
        rows.append(
            (
                name,
                row["opt_guards"],
                row["untouched"],
                row["opt1_hoist"],
                row["opt2_scev"],
                row["opt3_redundancy"],
            )
        )
    return rows


def test_tab1_guard_optimization_fractions(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    means = [arith_mean([r[i] for r in rows]) for i in range(1, 6)]
    emit_table(
        "tab1_guard_opts",
        "Table 1: fraction of guards per optimization outcome",
        ["benchmark", "opt_guards", "untouched", "opt1_hoist", "opt2_scev", "opt3_redund"],
        rows,
        footer=[
            "arith mean  "
            + "  ".join(f"{m:.3f}" for m in means)
            + "   (paper: 0.587 0.331 0.113 0.143 0.414)"
        ],
    )
    for row in rows:
        name, opt_guards, untouched, opt1, opt2, opt3 = row
        # Accounting identities.
        assert abs(untouched + opt1 + opt2 + opt3 - 1.0) < 1e-9, name
        assert abs(opt_guards - (untouched + opt1 + opt2)) < 1e-9, name
    # The optimizations must matter in aggregate: a meaningful fraction of
    # guards is optimized away or amortized.
    mean_untouched = means[1]
    assert mean_untouched < 0.9
    mean_opt2 = means[3]
    mean_opt3 = means[4]
    assert mean_opt2 > 0.0  # SCEV merging fires somewhere
    assert mean_opt3 > 0.0  # redundancy elimination fires somewhere
