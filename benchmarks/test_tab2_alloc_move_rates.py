"""Table 2: page (4KB) allocation and movement rates under Linux.

The paper instruments the kernel (MMU notifiers + footprint tracking) and
finds that demand allocations are common (hundreds to thousands per
second) while physical page *moves* are almost nonexistent (<1/s).  We
run the suite under the traditional model: first-touch demand paging
generates allocation events; a background rebalance policy (standing in
for NUMA/compaction activity) occasionally moves a mapped page, at the
paper-observed rarity.

Shape to reproduce: alloc events >> move events for every workload; FT's
static footprint approximately equals its total allocations (the
pre-allocatable case the paper highlights).
"""

from harness import SUITE, emit_table, geomean

from repro.kernel.pagetable import PAGE_SHIFT

#: Simulated clock: the paper's 2.3 GHz testbed scaled by the same ~10^3
#: as the workload footprints, so rates land in comparable units.
CLOCK_HZ = 2.3e6

#: Background page-move policy: one rebalance every this many cycles.
#: Rare on the simulated clock (~15 per simulated second), so short
#: workloads see 0 moves and long ones a handful — Table 2's profile.
REBALANCE_PERIOD_CYCLES = 150_000


#: Table 2 measures several inputs for x264 and xz; reproduce the row set
#: with seed/size variants of the same programs.
INPUT_VARIANTS = {
    "x264 pass1": ("x264", {"lcg_state = 2024;": "lcg_state = 1111;"}),
    "x264 pass2": ("x264", {"lcg_state = 2024;": "lcg_state = 2222;"}),
    "x264 seek500": ("x264", {"lcg_state = 2024;": "lcg_state = 500;"}),
    "xz cld": ("xz", {"lcg_state = 424242;": "lcg_state = 777;"}),
    "xz cpu2006": ("xz", {"lcg_state = 424242;": "lcg_state = 2006;"}),
}


def _variant_binary(runs, label):
    from harness import _compile_options
    from repro.carat.pipeline import compile_carat
    from repro.workloads import get_workload

    base_name, substitutions = INPUT_VARIANTS[label]
    source = get_workload(base_name, runs.scale).source
    for old, new in substitutions.items():
        assert old in source, f"variant substitution missing: {old!r}"
        source = source.replace(old, new)
    return compile_carat(
        source, _compile_options("traditional"), module_name=base_name
    )


def _run_with_rebalance(runs, name):
    """A traditional run with the background move policy attached."""
    from repro.machine.interp import Interpreter

    if name in INPUT_VARIANTS:
        binary = _variant_binary(runs, name)
    else:
        binary = runs.binary(name, "traditional")
    from repro.kernel.kernel import Kernel

    kernel = Kernel()
    process = kernel.load_traditional(binary)
    interp = Interpreter(process, kernel)

    state = {"next_move": REBALANCE_PERIOD_CYCLES}

    def rebalance(it):
        if it.stats.cycles < state["next_move"]:
            return
        state["next_move"] += REBALANCE_PERIOD_CYCLES
        # Move the first mapped heap page (kernel compaction analog).
        for vpn, _ in process.page_table.entries():
            vaddr = vpn << PAGE_SHIFT
            if process.layout.heap_base <= vaddr < (
                process.layout.heap_base + process.layout.heap_size
            ):
                move_cycles = kernel.move_page_traditional(process, vaddr)
                it.stats.cycles += move_cycles
                return

    interp.tick_hook = rebalance
    interp.tick_interval = 5_000
    interp.run("main", max_steps=50_000_000)
    return process, interp


def _collect(runs):
    rows = []
    names = [n for n in SUITE if n not in ("x264", "x264_s", "xz")]
    names += list(INPUT_VARIANTS)
    for name in names:
        process, interp = _run_with_rebalance(runs, name)
        seconds = interp.stats.cycles / CLOCK_HZ
        allocs = process.demand_page_allocs
        moves = process.pages_moved
        rows.append(
            (
                name,
                process.static_footprint_pages,
                process.initial_pages,
                allocs,
                moves,
                seconds,
                allocs / seconds if seconds else 0.0,
                moves / seconds if seconds else 0.0,
            )
        )
    return rows


def test_tab2_allocation_and_move_rates(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    alloc_rates = [r[6] for r in rows if r[6] > 0]
    move_rates = [r[7] for r in rows]
    emit_table(
        "tab2_alloc_move_rates",
        "Table 2: page allocation and movement rates (traditional model)",
        [
            "benchmark", "static_pages", "initial_pages", "page_allocs",
            "page_moves", "exec_s", "alloc_rate/s", "move_rate/s",
        ],
        rows,
        footer=[
            f"geomean alloc rate: {geomean(alloc_rates):.1f}/s  "
            f"mean move rate: {sum(move_rates)/len(move_rates):.3f}/s",
            "paper: geomean alloc 159/s, move <1/s — moves are rare events",
        ],
    )
    by_name = {r[0]: r for r in rows}
    for row in rows:
        name, _static, _initial, allocs, moves, *_ = row
        # The headline: allocation events dominate movement events.
        assert moves <= max(3, allocs // 10), name
    # FT: static footprint within the same order as its demand allocations
    # (its arrays are global bss — preallocatable).
    ft = by_name["ft"]
    assert ft[1] >= ft[3] // 4
    # EP allocates almost nothing beyond load time.
    assert by_name["ep"][3] <= by_name["ft"][3]
