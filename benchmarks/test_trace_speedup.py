"""The trace-tier speedup benchmark (superblock compilation).

For the guard-heavy headline workloads this measures wall-clock under
the reference interpreter vs the trace tier (``--engine trace``: the
fast engine plus hot-superblock compilation with parameter-specialized
guards), verifies that both produce the *same* results (output, exit
code, modeled cycles, and guard counts — the engines' contract), and
records the tier's own counters: traces compiled, side exits,
respecializations, and guard checks served by the specialized fast
path.

Emitted artifacts:

* ``benchmarks/results/trace_<workload>.json`` — one file per
  benchmark with both engines' wall-clock and the trace counters;
* ``benchmarks/results/trace_speedup.json`` and the repo-root
  ``BENCH_trace.json`` — the aggregate: per-workload speedups, the
  geomean, and the headline verdict.

The assertion floor here is the CI gate (trace must be at least 2x
faster on the headline workload at any scale); the committed
``BENCH_trace.json`` is generated at ``CARAT_BENCH_SCALE=small``,
where the geomean clears the 6x design target.
"""

import json
import time
from pathlib import Path

from harness import SCALE, _compile_options, emit_json, emit_table, geomean, run_carat

from repro.carat.pipeline import compile_carat
from repro.workloads import get_workload

#: Guard-heavy workloads; ``hpccg`` is the headline (first in the
#: paper's figure order).  ``ep`` is the stress case: its hot loop
#: calls a defined function (inlined as a frame-spanning trace) and
#: branches on random data, so the accept/reject split side-exits into
#: a linear side trace every few iterations — it is kept in the pool
#: deliberately so the geomean includes an exit-heavy workload.
WORKLOADS = ["hpccg", "cg", "ep"]
HEADLINE = "hpccg"

#: CI floor, deliberately below the 6x design target so tiny-scale smoke
#: runs on shared CI machines don't flake; the target is asserted on the
#: recorded numbers at small scale.
MIN_HEADLINE_SPEEDUP = 2.0
TARGET_GEOMEAN = 6.0

REPO_ROOT = Path(__file__).parent.parent


def _timed_pair(binary, workload, repeats=7):
    """Best-of-N wall clock for both engines, with the samples
    *interleaved* (ref, trace, ref, trace, ...) so slow drift in machine
    load biases neither side; returns the last result of each (runs are
    deterministic, so any run's numbers represent all of them)."""
    best = {"reference": float("inf"), "trace": float("inf")}
    results = {}
    for _ in range(repeats):
        for engine in ("reference", "trace"):
            t0 = time.perf_counter()
            results[engine] = run_carat(
                binary, guard_mechanism="mpx", name=workload, engine=engine
            )
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best["reference"], best["trace"], results


def _comparable(result):
    return (
        result.exit_code,
        tuple(result.output),
        result.cycles,
        result.instructions,
        result.process.runtime.stats.guards_executed,
        result.process.runtime.stats.guard_faults,
    )


def test_trace_speedup():
    rows = []
    per_workload = {}
    for workload in WORKLOADS:
        source = get_workload(workload, SCALE).source
        binary = compile_carat(
            source, _compile_options("guards_carat"), module_name=workload
        )
        # One warm-up run populates the module's dispatch cache *and*
        # trace-code cache so the measurement sees the steady state
        # (compile-once, run-many).
        run_carat(binary, guard_mechanism="mpx", name=workload, engine="trace")
        ref_time, trace_time, results = _timed_pair(binary, workload)
        ref_result, trace_result = results["reference"], results["trace"]
        assert _comparable(ref_result) == _comparable(trace_result), (
            f"{workload}: engines disagree"
        )
        speedup = ref_time / trace_time
        istats = trace_result.stats
        entry = {
            "scale": SCALE,
            "reference_seconds": round(ref_time, 6),
            "trace_seconds": round(trace_time, 6),
            "speedup": round(speedup, 3),
            "traces_compiled": istats.traces_compiled,
            "trace_exits": istats.trace_exits,
            "trace_respecializations": istats.trace_respecializations,
            "guard_checks_elided": istats.guard_checks_elided,
            "compiled_blocks": istats.compiled_blocks,
            "cycles": trace_result.cycles,
            "guards_executed": (
                trace_result.process.runtime.stats.guards_executed
            ),
        }
        per_workload[workload] = entry
        emit_json(f"trace_{workload}", {"workload": workload, **entry})
        rows.append(
            (
                workload,
                ref_time,
                trace_time,
                speedup,
                istats.traces_compiled,
                istats.trace_exits,
            )
        )

    speedups = [per_workload[w]["speedup"] for w in WORKLOADS]
    aggregate = {
        "scale": SCALE,
        "headline": HEADLINE,
        "headline_speedup": per_workload[HEADLINE]["speedup"],
        "geomean_speedup": round(geomean(speedups), 3),
        "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
        "target_geomean_speedup": TARGET_GEOMEAN,
        "workloads": per_workload,
    }
    emit_json("trace_speedup", aggregate)
    (REPO_ROOT / "BENCH_trace.json").write_text(
        json.dumps(aggregate, indent=2) + "\n"
    )

    emit_table(
        "trace_speedup",
        f"Trace-tier speedup vs reference interpreter ({SCALE} scale, "
        "guards_carat+mpx, best of 7)",
        ["benchmark", "ref_s", "trace_s", "speedup", "traces", "exits"],
        rows,
        footer=[
            f"geomean speedup {aggregate['geomean_speedup']:.3f}x; "
            f"headline {HEADLINE} {aggregate['headline_speedup']:.2f}x "
            f"(floor {MIN_HEADLINE_SPEEDUP}x, geomean target "
            f"{TARGET_GEOMEAN}x at small scale)"
        ],
    )

    assert aggregate["headline_speedup"] >= MIN_HEADLINE_SPEEDUP


def test_trace_sanitized_parity():
    """Both engines under the cross-layer sanitizer: the trace tier must
    not trip a single invariant the reference run does not."""
    source = get_workload(HEADLINE, "tiny").source
    binary = compile_carat(
        source, _compile_options("full"), module_name=HEADLINE
    )
    results = {
        engine: run_carat(
            binary, guard_mechanism="mpx", name=HEADLINE,
            sanitize=True, engine=engine,
        )
        for engine in ("reference", "trace")
    }
    for engine, result in results.items():
        assert result.sanitizer is not None and result.sanitizer.ok, (
            f"{engine}: {result.sanitizer.describe()}"
        )
    assert _comparable(results["reference"]) == _comparable(results["trace"])
