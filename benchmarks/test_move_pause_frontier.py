"""The move-pause frontier: serial stop-the-world vs incremental moves.

The incremental protocol (async queue -> multi-move batches -> chunked
pre-copy -> one short flip) exists to bound pauses.  This benchmark maps
the frontier on the escape-heavy ``canneal`` workload under the
aggressive policy configuration the differential suite uses (scatter,
compaction, tiering, 5k-cycle epochs): one serial baseline where every
policy move stops the world for its full duration, then a sweep of
batch sizes x chunk budgets through the queue.

Reported per configuration, over the *policy* moves only (scatter's
synchronous setup moves happen before there is a program to pause, so
the pause log is cleared after scatter):

* ``p99_pause`` / ``max_pause`` — nearest-rank p99 and max of the
  per-pause cycle samples (``kernel.pause_log``);
* ``pages_moved`` and ``move_cycles`` — and their ratio,
  ``pages_per_kilocycle``, the throughput of the move subsystem
  (batching amortizes per-move fixed costs, so the queue should
  relocate *at least* as many pages per cycle spent moving).

Emitted artifacts:

* ``benchmarks/results/movepause.json`` and the repo-root
  ``BENCH_movepause.json`` — the full frontier;
* ``benchmarks/results/movepause_frontier.txt`` — the table.

The assertion floor is the CI gate: the best chunked configuration must
cut p99 pause by at least 5x against serial at equal-or-better move
throughput, with bit-identical program output.
"""

import json
from pathlib import Path

from harness import emit_json, emit_table, run_carat

from repro.kernel.kernel import Kernel
from repro.multiproc.scheduler import percentile
from repro.policy import (
    CompactionDaemon,
    HeatTracker,
    PolicyEngine,
    TieringBalancer,
    scatter_capsule,
)
from repro.resilience import MoveQueue
from repro.workloads import get_workload

MB = 1024 * 1024
WORKLOAD = "canneal"

#: The sweep: >= 3 batch sizes x >= 3 chunk budgets.  ``chunk_budget=0``
#: is the unchunked queue (batching without bounded pre-copy) — it
#: isolates how much of the win is chunking vs batching.
BATCH_SIZES = [1, 4, 8]
CHUNK_BUDGETS = [0, 400, 1200]

#: CI gate: the ISSUE's acceptance bar.
MIN_P99_CUT = 5.0

REPO_ROOT = Path(__file__).parent.parent


def _frontier_run(batch_size=None, chunk_budget=0, engine="reference"):
    """One policy run; returns the pause/throughput summary for the
    policy-move phase (post-scatter)."""
    workload = get_workload(WORKLOAD, "tiny")
    kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
    if batch_size is not None:
        kernel.attach_move_queue(
            MoveQueue(kernel, batch_size=batch_size, chunk_budget=chunk_budget)
        )
    scatter_pages = {}

    def setup(interpreter):
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        kernel.pause_log.clear()
        scatter_pages["n"] = process.pages_moved
        heat = HeatTracker()
        engine_ = PolicyEngine(
            kernel,
            process,
            epoch_cycles=5_000,
            budget_cycles=500_000,
            heat=heat,
            compaction=CompactionDaemon(
                kernel, process, target_fragmentation=0.05
            ),
            tiering=TieringBalancer(
                kernel, process, heat, max_allocation_pages=40
            ),
        )
        engine_.attach(interpreter)

    result = run_carat(
        workload.source,
        kernel=kernel,
        name=workload.name,
        heap_size=512 * 1024,
        stack_size=128 * 1024,
        setup=setup,
        sanitize=True,
        engine=engine,
    )
    assert result.exit_code == 0
    pauses = kernel.pause_log.get(result.process.pid, [])
    pages = result.process.pages_moved - scatter_pages["n"]
    move_cycles = sum(pauses)
    summary = {
        "batch_size": batch_size,
        "chunk_budget": chunk_budget,
        "pauses": len(pauses),
        "p99_pause": percentile(pauses, 0.99),
        "max_pause": max(pauses) if pauses else 0,
        "pages_moved": pages,
        "move_cycles": move_cycles,
        "pages_per_kilocycle": round(
            pages * 1000 / move_cycles, 4
        ) if move_cycles else 0.0,
    }
    if kernel.move_queue is not None:
        stats = kernel.move_queue.stats
        assert kernel.move_queue.idle  # drained before the final checkpoint
        summary.update(
            moves_serviced=stats.serviced,
            batches=stats.batches,
            chunks=stats.chunks,
            flips=stats.flips,
            stale_drops=stats.stale_drops,
        )
    else:
        summary["moves_serviced"] = kernel.stats.moves_committed
    return summary, tuple(result.output)


def test_move_pause_frontier():
    serial, serial_output = _frontier_run()
    assert serial["pauses"] > 0 and serial["pages_moved"] > 0

    sweep = []
    for batch_size in BATCH_SIZES:
        for chunk_budget in CHUNK_BUDGETS:
            entry, output = _frontier_run(batch_size, chunk_budget)
            # The incremental protocol is semantically invisible: every
            # configuration computes exactly what serial computes.
            assert output == serial_output, (
                f"mb={batch_size} cb={chunk_budget}: output diverged"
            )
            assert entry["moves_serviced"] > 0
            entry["p99_cut"] = round(
                serial["p99_pause"] / entry["p99_pause"], 2
            ) if entry["p99_pause"] else float("inf")
            sweep.append(entry)

    chunked = [e for e in sweep if e["chunk_budget"] > 0]
    best = min(chunked, key=lambda e: (e["p99_pause"], -e["pages_per_kilocycle"]))

    aggregate = {
        "schema": "carat.movepause.v1",
        "workload": WORKLOAD,
        "scale": "tiny",
        "batch_sizes": BATCH_SIZES,
        "chunk_budgets": CHUNK_BUDGETS,
        "min_p99_cut": MIN_P99_CUT,
        "serial": serial,
        "sweep": sweep,
        "best": {
            "batch_size": best["batch_size"],
            "chunk_budget": best["chunk_budget"],
            "p99_pause": best["p99_pause"],
            "p99_cut": best["p99_cut"],
            "pages_per_kilocycle": best["pages_per_kilocycle"],
        },
    }
    emit_json("movepause", aggregate)
    (REPO_ROOT / "BENCH_movepause.json").write_text(
        json.dumps(aggregate, indent=2) + "\n"
    )

    emit_table(
        "movepause_frontier",
        f"Move-pause frontier on {WORKLOAD} (tiny scale, policy moves; "
        "serial = synchronous stop-the-world)",
        ["config", "pauses", "p99", "max", "pages", "pages/kcyc", "p99 cut"],
        [
            (
                "serial",
                serial["pauses"], serial["p99_pause"], serial["max_pause"],
                serial["pages_moved"], serial["pages_per_kilocycle"], "1.0x",
            )
        ]
        + [
            (
                f"mb={e['batch_size']} cb={e['chunk_budget']}",
                e["pauses"], e["p99_pause"], e["max_pause"],
                e["pages_moved"], e["pages_per_kilocycle"],
                f"{e['p99_cut']}x",
            )
            for e in sweep
        ],
        footer=[
            f"best chunked: mb={best['batch_size']} cb={best['chunk_budget']} "
            f"-> p99 {best['p99_pause']} ({best['p99_cut']}x cut, "
            f"floor {MIN_P99_CUT}x)"
        ],
    )

    # The gates.  p99: the whole point of the incremental protocol.
    assert best["p99_pause"] * MIN_P99_CUT <= serial["p99_pause"], (
        f"best chunked p99 {best['p99_pause']} misses the {MIN_P99_CUT}x "
        f"floor vs serial {serial['p99_pause']}"
    )
    # Throughput: batching must amortize, not tax — at least as many
    # pages relocated per cycle spent in the move subsystem.
    assert best["pages_per_kilocycle"] >= serial["pages_per_kilocycle"], (
        "chunked moves relocate fewer pages per move cycle than serial"
    )
    # Every chunked configuration improves p99 — the frontier is
    # monotone in the right direction, not a single lucky point.
    for entry in chunked:
        assert entry["p99_pause"] < serial["p99_pause"]
