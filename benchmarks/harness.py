"""Shared machinery for the experiment benchmarks.

Each ``test_*`` file under ``benchmarks/`` regenerates one table or
figure from the paper.  Results are printed and written under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.

All workload executions go through a session-scoped :class:`RunCache`
keyed by (workload, configuration) — most figures share configurations,
and interpreting a workload is the expensive part.

Configurations (Section 3 / 4.4):

* ``baseline``       — no instrumentation, physical addressing (the
  denominator of every overhead figure);
* ``guards_general+<mech>`` — guard injection with general compiler
  optimizations only (Figure 3a);
* ``guards_carat+<mech>``   — guard injection plus the CARAT-specific
  optimizations (Figure 3b);
* ``tracking``       — allocation/escape tracking only (Figures 6, 7);
* ``full``           — the whole treatment (Figures 5, 9, Table 3);
* ``traditional``    — the paging model (Figure 2, Table 2).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.carat.pipeline import CaratBinary, CompileOptions, compile_carat
from repro.machine.executor import RunResult
from repro.machine.session import CaratSession, RunConfig
from repro.workloads import get_workload, workload_names

#: Scale tier for the whole benchmark run; override with
#: ``CARAT_BENCH_SCALE=small pytest benchmarks/``.
SCALE = os.environ.get("CARAT_BENCH_SCALE", "tiny")

#: Execution engine for the whole benchmark run; override with
#: ``CARAT_BENCH_ENGINE=fast pytest benchmarks/`` to regenerate every
#: figure at a multiple of the speed (identical numbers by contract).
ENGINE = os.environ.get("CARAT_BENCH_ENGINE", "reference")

#: The suite, in the order the paper's figures list it.
SUITE = [
    "hpccg", "cg", "ep", "ft", "lu",
    "blackscholes", "bodytrack", "canneal", "fluidanimate", "freqmine",
    "streamcluster", "swaptions", "x264",
    "deepsjeng", "lbm", "mcf", "nab", "namd", "omnetpp", "x264_s",
    "xalancbmk", "xz",
]

RESULTS_DIR = Path(__file__).parent / "results"


def _compile_options(config: str) -> Optional[CompileOptions]:
    if config == "baseline" or config == "traditional":
        return CompileOptions(guards=False, tracking=False)
    if config.startswith("guards_general"):
        return CompileOptions(guards=True, carat_guard_opts=False, tracking=False)
    if config.startswith("guards_carat"):
        return CompileOptions(guards=True, carat_guard_opts=True, tracking=False)
    if config == "tracking":
        return CompileOptions(guards=False, tracking=True)
    if config == "full":
        return CompileOptions()
    raise ValueError(f"unknown configuration {config!r}")


def _guard_mechanism(config: str) -> str:
    if "+" in config:
        return config.split("+", 1)[1]
    return "mpx"


def run_carat(
    program,
    kernel=None,
    guard_mechanism: str = "mpx",
    options: Optional[CompileOptions] = None,
    name: str = "program",
    heap_size: Optional[int] = None,
    stack_size: Optional[int] = None,
    setup=None,
    sanitize: bool = False,
    engine: str = "reference",
    safety: bool = False,
) -> RunResult:
    """The compact legacy call shape the benchmark files use, as an
    explicit veneer over :class:`CaratSession` (the removed
    ``repro.machine.executor.run_carat`` shim used to provide this)."""
    fields = dict(
        mode="carat", guard_mechanism=guard_mechanism, name=name,
        sanitize=sanitize, engine=engine, safety=safety,
    )
    if heap_size is not None:
        fields["heap_size"] = heap_size
    if stack_size is not None:
        fields["stack_size"] = stack_size
    session = CaratSession(RunConfig(**fields), kernel=kernel, setup=setup)
    return session.run(program, options=options)


class RunSummary:
    """The slice of a :class:`RunResult` the experiments consume.

    The cache keeps summaries, not results: a RunResult retains the whole
    kernel (a 64 MB physical memory image), and the figure-level benches
    perform hundreds of runs.
    """

    __slots__ = (
        "cycles", "instructions", "output", "exit_code",
        "dtlb_mpki", "pagewalks", "walks_per_1k", "mean_walk_cycles",
        "demand_page_allocs", "static_footprint_pages", "initial_pages",
        "guards_executed", "guard_cycles", "guard_faults",
        "tracking_events", "tracking_cycles", "escapes_recorded",
        "escapes_rewritten", "escape_histogram", "peak_tracking_bytes",
        "globals_size", "heap_peak_bytes", "stack_size",
    )

    def __init__(self, result: RunResult) -> None:
        self.cycles = result.cycles
        self.instructions = result.instructions
        self.output = list(result.output)
        self.exit_code = result.exit_code
        process = result.process
        mmu = process.mmu
        self.dtlb_mpki = result.dtlb_mpki()
        self.pagewalks = mmu.stats.pagewalks if mmu else 0
        self.walks_per_1k = (
            mmu.stats.walks_per_1k(self.instructions) if mmu else 0.0
        )
        self.mean_walk_cycles = mmu.stats.mean_walk_cycles() if mmu else 0.0
        self.demand_page_allocs = process.demand_page_allocs
        self.static_footprint_pages = process.static_footprint_pages
        self.initial_pages = process.initial_pages
        runtime = process.runtime
        if runtime is not None:
            self.guards_executed = runtime.stats.guards_executed
            self.guard_cycles = runtime.stats.guard_cycles
            self.guard_faults = runtime.stats.guard_faults
            self.tracking_events = runtime.stats.tracking_events
            self.tracking_cycles = runtime.stats.tracking_cycles
            self.escapes_recorded = runtime.escapes.stats.recorded
            self.escapes_rewritten = runtime.escapes.stats.rewritten
            self.escape_histogram = runtime.escape_histogram()
            self.peak_tracking_bytes = runtime.peak_tracking_bytes
        else:
            self.guards_executed = self.guard_cycles = self.guard_faults = 0
            self.tracking_events = self.tracking_cycles = 0
            self.escapes_recorded = self.escapes_rewritten = 0
            self.escape_histogram = {}
            self.peak_tracking_bytes = 0
        self.globals_size = process.layout.globals_size
        self.heap_peak_bytes = process.heap.peak_bytes if process.heap else 0
        self.stack_size = process.layout.stack_size


class RunCache:
    def __init__(self, scale: str = SCALE, engine: str = "reference") -> None:
        self.scale = scale
        #: Execution engine every cached run uses.  The engines are
        #: observably identical (the differential tests enforce it), so a
        #: figure regenerated under ``fast`` reports the same numbers —
        #: only the wall-clock changes.
        self.engine = engine
        self._binaries: Dict[Tuple[str, str], CaratBinary] = {}
        self._runs: Dict[Tuple[str, str], RunSummary] = {}

    def binary(self, workload: str, config: str) -> CaratBinary:
        options = _compile_options(config)
        key = (workload, _options_key(options))
        cached = self._binaries.get(key)
        if cached is None:
            source = get_workload(workload, self.scale).source
            cached = compile_carat(source, options, module_name=workload)
            self._binaries[key] = cached
        return cached

    def run_config(self, workload: str, config: str) -> RunConfig:
        """The :class:`RunConfig` one (workload, configuration) cell runs
        under — the same object the CLI builds from flags, round-tripped
        through ``to_dict``/``from_dict`` so serialized experiment
        configs and live ones provably agree."""
        run_config = RunConfig(
            mode="traditional" if config == "traditional" else "carat",
            guard_mechanism=_guard_mechanism(config),
            engine=self.engine,
            name=workload,
        )
        return RunConfig.from_dict(run_config.to_dict())

    def run(self, workload: str, config: str) -> RunSummary:
        key = (workload, config)
        cached = self._runs.get(key)
        if cached is not None:
            return cached
        binary = self.binary(workload, config)
        session = CaratSession(self.run_config(workload, config))
        summary = RunSummary(session.run(binary))
        self._runs[key] = summary
        return summary

    def overhead(self, workload: str, config: str) -> float:
        base = self.run(workload, "baseline").cycles
        other = self.run(workload, config).cycles
        return other / base if base else float("nan")


def _options_key(options: Optional[CompileOptions]) -> str:
    if options is None:
        return "default"
    return (
        f"g{int(options.guards)}o{int(options.carat_guard_opts)}"
        f"t{int(options.tracking)}"
    )


def geomean(values: Sequence[float]) -> float:
    cleaned = [v for v in values if v > 0 and not math.isnan(v)]
    if not cleaned:
        return float("nan")
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def arith_mean(values: Sequence[float]) -> float:
    cleaned = [v for v in values if not math.isnan(v)]
    return sum(cleaned) / len(cleaned) if cleaned else float("nan")


def emit_table(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    footer: Sequence[str] = (),
) -> str:
    """Render, print, and persist one experiment's table."""
    widths = [
        max(len(str(headers[i])), max((len(_fmt(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]

    def line(cells):
        return "  ".join(_fmt(c).rjust(w) for c, w in zip(cells, widths))

    out = [title, line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    out.extend(footer)
    text = "\n".join(out) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def emit_json(name: str, payload: dict) -> Path:
    """Persist one experiment's machine-readable results as
    ``benchmarks/results/<name>.json`` (pretty-printed, keys kept in
    insertion order so diffs stay reviewable)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)
