"""Policy-engine experiments: compaction and tiered placement on CARAT.

Not a figure from the paper — this benchmark exercises the paper's
*argument* (Sections 1-2, 7): once address translation is a software
protocol, the kernel memory services hardware paging makes painful
become cheap policy loops over one mechanism.  Two experiments:

* **Compaction** — pre-fragment physical memory by scattering each
  workload's capsule (external-fragmentation index driven above 0.7),
  then run under the policy engine and measure how far heat-tracked,
  budgeted compaction drives the EFI back down.  Accept: ≥50% EFI
  reduction, with every epoch's move-cycle budget respected.

* **Tiering** — run on a machine with a small fast tier and a large slow
  tier (capsules land in the slow tier), and measure the share of
  accesses hitting the fast tier in the final epochs after the balancer
  promotes the hot working set.  Accept: tail hot-tier share ≥80%,
  promotions happened, budgets respected.
"""

from harness import arith_mean, emit_table, run_carat

from repro.kernel.kernel import Kernel
from repro.policy import (
    CompactionDaemon,
    HeatTracker,
    PolicyEngine,
    TieringBalancer,
    assess_fragmentation,
    scatter_capsule,
)

MB = 1024 * 1024

#: A slice of the suite covering the behaviour classes: regular-affine,
#: pointer-chase, irregular-gather, mixed.
POLICY_SUITE = ["hpccg", "canneal", "mcf", "nab", "ep"]

HEAP = 512 * 1024
STACK = 128 * 1024
EPOCH_CYCLES = 5_000
BUDGET_CYCLES = 100_000


def _run_compaction(runs, name):
    kernel = Kernel(memory_size=16 * MB)
    engine = None
    before = None

    def setup(interpreter):
        nonlocal engine, before
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        scatter_capsule(kernel, process, interpreter=interpreter)
        before = assess_fragmentation(kernel.frames)
        engine = PolicyEngine(
            kernel,
            process,
            epoch_cycles=EPOCH_CYCLES,
            budget_cycles=BUDGET_CYCLES,
            compaction=CompactionDaemon(
                kernel, process, target_fragmentation=0.05
            ),
        )
        engine.attach(interpreter)

    result = run_carat(
        runs.binary(name, "full"),
        kernel=kernel,
        name=name,
        heap_size=HEAP,
        stack_size=STACK,
        setup=setup,
    )
    assert result.exit_code == 0
    after = assess_fragmentation(kernel.frames)
    return before, after, engine.stats


def _run_tiering(runs, name):
    kernel = Kernel(memory_size=16 * MB, fast_memory=1 * MB)
    engine = None

    def setup(interpreter):
        nonlocal engine
        interpreter.set_tick_interval(1_000)
        process = interpreter.process
        heat = HeatTracker(sample_period=1, decay=0.5)
        engine = PolicyEngine(
            kernel,
            process,
            epoch_cycles=EPOCH_CYCLES,
            budget_cycles=BUDGET_CYCLES,
            heat=heat,
            tiering=TieringBalancer(
                kernel, process, heat, max_allocation_pages=40
            ),
        )
        engine.attach(interpreter)

    result = run_carat(
        runs.binary(name, "full"),
        kernel=kernel,
        name=name,
        heap_size=HEAP,
        stack_size=STACK,
        setup=setup,
    )
    assert result.exit_code == 0
    return result, engine.stats


def _tail_share(stats, window=3):
    tail = stats.hot_share_history[-window:]
    return arith_mean(tail) if tail else float("nan")


def _collect(runs):
    compaction_rows = []
    tiering_rows = []
    for name in POLICY_SUITE:
        before, after, cstats = _run_compaction(runs, name)
        compaction_rows.append(
            (
                name,
                before.external_fragmentation,
                after.external_fragmentation,
                1.0 - after.external_fragmentation
                / max(before.external_fragmentation, 1e-12),
                cstats.compaction_moves,
                cstats.move_cycles,
                max(cstats.epoch_move_cycles, default=0),
                "yes" if cstats.budgets_respected else "NO",
            )
        )
        result, tstats = _run_tiering(runs, name)
        tiering_rows.append(
            (
                name,
                result.stats.slow_tier_accesses,
                result.stats.fast_tier_accesses,
                result.stats.hot_tier_share(),
                _tail_share(tstats),
                tstats.promotions,
                tstats.demotions,
                "yes" if tstats.budgets_respected else "NO",
            )
        )
    return compaction_rows, tiering_rows


def test_policy_compaction_and_tiering(runs, benchmark):
    compaction_rows, tiering_rows = benchmark.pedantic(
        _collect, args=(runs,), rounds=1, iterations=1
    )
    emit_table(
        "policy_compaction",
        "Policy engine: external fragmentation before/after budgeted "
        f"compaction (budget {BUDGET_CYCLES} cycles per {EPOCH_CYCLES}-cycle "
        "epoch)",
        ["benchmark", "EFI_before", "EFI_after", "reduction",
         "moves", "move_cycles", "max_epoch_spend", "budgets_ok"],
        compaction_rows,
    )
    emit_table(
        "policy_tiering",
        "Policy engine: hot/cold placement across a 1 MiB fast + 15 MiB "
        "slow tier (capsules start in the slow tier)",
        ["benchmark", "slow_accesses", "fast_accesses", "overall_share",
         "tail_share", "promotions", "demotions", "budgets_ok"],
        tiering_rows,
    )

    for row in compaction_rows:
        name, before_efi, after_efi, reduction, moves, _, max_spend, ok = row
        assert before_efi > 0.5, (name, "scatter failed to fragment")
        assert moves > 0, (name, "compaction never ran")
        assert reduction >= 0.5, (name, "EFI not halved", before_efi, after_efi)
        assert max_spend <= BUDGET_CYCLES, (name, "epoch overspent")
        assert ok == "yes", (name, "budget overrun")

    for row in tiering_rows:
        name, _, fast, _, tail, promotions, _, ok = row
        assert promotions > 0, (name, "nothing promoted")
        assert fast > 0, (name, "no fast-tier accesses")
        assert tail >= 0.8, (name, "tail hot-tier share below 80%", tail)
        assert ok == "yes", (name, "budget overrun")
