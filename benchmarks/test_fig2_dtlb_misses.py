"""Figure 2: level-1 DTLB misses per 1000 instructions.

The paper measures the suite with Intel PMU counters under the
traditional model and finds rates spanning four orders of magnitude
(up to 116 MPKI for the pointer-chasers; walks average 47 cycles).

Scaling note: our workload footprints are scaled ~10^3 below the
originals (DESIGN.md), so a full-size 64-entry DTLB would cover every
working set and hide the phenomenon the figure exists to show.  The TLBs
here are scaled by the same factor — an 8-entry 2-way DTLB and a 64-entry
4-way STLB — preserving the footprint/reach ratio that determines miss
behaviour.  The full-size hierarchy remains the default everywhere else.

Expected shape: pointer-chasing / random-reach workloads (deepsjeng,
canneal, mcf, cg) orders of magnitude above the dense sweepers; EP at
the bottom; walk latencies in the tens of cycles.
"""

from harness import SUITE, arith_mean, emit_table

from repro.kernel.kernel import Kernel
from repro.kernel.tlb import TLB
from repro.machine.interp import Interpreter

SCALED_DTLB = dict(entries=8, ways=2, name="l1-dtlb/scaled")
SCALED_STLB = dict(entries=64, ways=4, name="stlb/scaled")

#: This experiment needs working sets larger than the scaled DTLB reach
#: (8 pages) for capacity misses to exist at all; the 'small' tier's
#: footprints (tens to hundreds of pages) provide that while staying
#: cheap because only this one configuration runs at that tier.
FIG2_SCALE = "small"


def _run_scaled(runs, name):
    from harness import _compile_options
    from repro.carat.pipeline import compile_carat
    from repro.workloads import get_workload

    source = get_workload(name, FIG2_SCALE).source
    binary = compile_carat(
        source, _compile_options("traditional"), module_name=name
    )
    kernel = Kernel()
    process = kernel.load_traditional(binary)
    process.mmu.dtlb = TLB(**SCALED_DTLB)
    process.mmu.stlb = TLB(**SCALED_STLB)
    interp = Interpreter(process, kernel)
    interp.run("main", max_steps=50_000_000)
    return process, interp


def _collect(runs):
    rows = []
    for name in SUITE:
        process, interp = _run_scaled(runs, name)
        mmu = process.mmu
        rows.append(
            (
                name,
                mmu.stats.dtlb_mpki(interp.stats.instructions),
                mmu.stats.walks_per_1k(interp.stats.instructions),
                mmu.stats.mean_walk_cycles(),
            )
        )
    return rows


def test_fig2_dtlb_miss_rates(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    emit_table(
        "fig2_dtlb_misses",
        "Figure 2: L1 DTLB misses / 1K instructions "
        "(traditional model, reach-scaled TLBs)",
        ["benchmark", "dtlb_mpki", "walks_per_1k", "mean_walk_cycles"],
        rows,
        footer=[
            f"mean walks/1K: {arith_mean([r[2] for r in rows]):.3f} "
            f"(paper: ~1 walk/1K instructions on average)",
        ],
    )
    by_name = {r[0]: r[1] for r in rows}
    # Shape assertions from the paper's narrative: random-reach workloads
    # thrash; EP barely misses.
    assert by_name["deepsjeng"] > 5 * by_name["ep"]
    assert by_name["canneal"] > by_name["ep"]
    assert by_name["mcf"] > by_name["ep"]
    assert by_name["deepsjeng"] > by_name["lu"]
    # STLB filters some DTLB misses: walks/1K <= dtlb mpki.
    for name, mpki, walks, _ in rows:
        assert walks <= mpki + 1e-9, name
    # Walk latency lands in the tens of cycles, as measured.
    walk_costs = [r[3] for r in rows if r[3] > 0]
    assert 20 <= arith_mean(walk_costs) <= 60
    assert len(rows) == len(SUITE)
