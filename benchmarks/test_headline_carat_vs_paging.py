"""Headline: CARAT vs paging, both against the ideal physical baseline.

Not one numbered figure, but the paper's thesis in a single table
(Sections 1-2): a fully protected, fully trackable CARAT process should
cost about as much as — and can cost less than — the hardware
translation it replaces, *without* any TLB/pagewalker on the access
path.

Columns are cycle ratios vs the uninstrumented physical baseline:

* ``carat``       — guards (MPX, CARAT-optimized) + tracking;
* ``traditional`` — the paging model's translation costs.
"""

from harness import SUITE, emit_table, geomean


def _collect(runs):
    rows = []
    for name in SUITE:
        carat = runs.overhead(name, "full")
        paging = runs.overhead(name, "traditional")
        rows.append((name, carat, paging, paging / carat if carat else 0.0))
    return rows


def test_headline_carat_vs_paging(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    carat_gm = geomean([r[1] for r in rows])
    paging_gm = geomean([r[2] for r in rows])
    emit_table(
        "headline_carat_vs_paging",
        "Headline: protection+mapping cost, CARAT vs hardware paging "
        "(ratios vs the ideal physical baseline)",
        ["benchmark", "carat", "traditional", "paging/carat"],
        rows,
        footer=[
            f"geomean: carat {carat_gm:.3f}, traditional {paging_gm:.3f}",
            "the case for CARAT: full protection and mapping at overheads "
            "comparable to (or below) hardware translation",
        ],
    )
    # Both models cost something over the ideal machine.
    assert carat_gm >= 1.0
    assert paging_gm >= 1.0
    # The paper's feasibility claim: CARAT's software overhead lands in
    # the same ballpark as hardware translation's (within ~25% here).
    assert carat_gm < paging_gm * 1.25
    # No CARAT run faulted or diverged (cache already checked outputs via
    # the executor; assert the configuration actually carried guards).
    full = runs.run(SUITE[0], "full")
    assert full.guards_executed > 0
