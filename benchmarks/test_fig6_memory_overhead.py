"""Figure 6: memory overhead of tracking allocations and escapes.

The ratio of the CARAT process's memory footprint (program data + the
Allocation Table + the Allocation-to-Escape Map, at their high-water
mark) to the baseline program's data footprint.  The paper's geomean is
inflated by swaptions' allocation churn; typically the overhead is
negligible, with swaptions, bodytrack, and nab as the worst absolute
cases.
"""

from harness import SUITE, emit_table, geomean


def _data_footprint(summary):
    """The program's own memory demand: globals + peak heap + one active
    stack page — the denominator the paper normalizes by."""
    return summary.globals_size + max(summary.heap_peak_bytes, 4096) + 4096


def _collect(runs):
    rows = []
    for name in SUITE:
        tracked = runs.run(name, "full")
        base = _data_footprint(tracked)
        tracking = tracked.peak_tracking_bytes
        rows.append((name, base, tracking, (base + tracking) / base))
    return rows


def test_fig6_tracking_memory_overhead(runs, benchmark):
    rows = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    ratios = {r[0]: r[3] for r in rows}
    emit_table(
        "fig6_memory_overhead",
        "Figure 6: memory footprint of tracking (ratio vs program data)",
        ["benchmark", "data_bytes", "tracking_bytes", "ratio"],
        rows,
        footer=[
            f"geomean ratio: {geomean([r[3] for r in rows]):.3f} "
            f"(paper geomean 1.62, inflated by swaptions; typically ~1.0x)",
        ],
    )
    # Typical case: negligible overhead (most workloads close to 1x).
    small = sum(1 for r in ratios.values() if r < 1.5)
    assert small >= len(SUITE) // 2
    # swaptions' churn makes it a worst case, as in the paper.
    median_ratio = sorted(ratios.values())[len(ratios) // 2]
    assert ratios["swaptions"] > median_ratio
    # Tracking always costs something once allocations exist.
    assert all(r[2] > 0 for r in rows)
