"""Figure 5: histogram of escapes per allocation.

The paper finds that 90% of allocations across all benchmarks have 10 or
fewer escapes, that most have 0-2, and that only ~22 allocations in the
whole suite exceed 50 escapes — nab being the outlier with a single
allocation collecting enormous escape counts.
"""

from harness import SUITE, emit_table


def _collect(runs):
    per_workload = {}
    for name in SUITE:
        per_workload[name] = runs.run(name, "full").escape_histogram
    return per_workload


def test_fig5_escapes_per_allocation(runs, benchmark):
    per_workload = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    total_allocations = 0
    at_most_10 = 0
    over_50 = 0
    rows = []
    for name in SUITE:
        histogram = per_workload[name]
        allocations = sum(histogram.values())
        small = sum(c for e, c in histogram.items() if e <= 10)
        big = sum(c for e, c in histogram.items() if e > 50)
        max_escapes = max(histogram.keys(), default=0)
        total_allocations += allocations
        at_most_10 += small
        over_50 += big
        rows.append((name, allocations, small, big, max_escapes))
    frac_small = at_most_10 / total_allocations if total_allocations else 0.0
    emit_table(
        "fig5_escape_histogram",
        "Figure 5: escapes per allocation",
        ["benchmark", "allocations", "<=10_escapes", ">50_escapes", "max_escapes"],
        rows,
        footer=[
            f"fraction of allocations with <=10 escapes: {frac_small:.3f} "
            f"(paper: ~0.90)",
            f"allocations with >50 escapes, suite-wide: {over_50} "
            f"(paper: 22 across all benchmarks)",
        ],
    )
    # The paper's two headline facts:
    assert frac_small >= 0.90
    assert over_50 <= 0.01 * total_allocations + 25
    # nab is the outlier with a huge per-allocation escape count.
    nab_max = dict((r[0], r[4]) for r in rows)["nab"]
    assert nab_max > 50
    others_max = max(r[4] for r in rows if r[0] != "nab")
    assert nab_max >= others_max
