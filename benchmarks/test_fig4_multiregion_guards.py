"""Figure 4: software multi-region guard latency vs number of regions.

Two panels on the paper's T620: (a) random access pattern, where the
if-tree's branches mispredict and binary search's log factor dominates;
(b) strided access, where the if-tree's path repeats and prediction
flattens its cost curve.  The shape to reproduce: costs grow with region
count; under random access both mechanisms are expensive (tens to
hundreds of cycles at 10k regions); under strided access the if-tree is
dramatically cheaper than its random-access self.
"""

import random

from harness import emit_table

from repro.runtime.regions import (
    BinarySearchGuard,
    IfTreeGuard,
    PERM_RW,
    Region,
    RegionSet,
)

REGION_COUNTS = [1, 4, 16, 64, 256, 1024, 4096, 10000]
PROBES = 400


def _region_set(count):
    # Bulk-load: RegionSet.add is O(n) per insert (overlap check), which a
    # 10k-region microbenchmark does not need to pay.
    rs = RegionSet()
    rs.replace_all([Region(i * 0x20000, 0x10000, PERM_RW) for i in range(count)])
    return rs


def _mean_cycles(guard_factory, regions, addresses):
    guard = guard_factory()
    total = 0
    for address in addresses:
        outcome = guard.check(regions, address, 8, "read")
        assert outcome.allowed
        total += outcome.cycles
    return total / len(addresses)


def _collect():
    rng = random.Random(42)
    rows = []
    for count in REGION_COUNTS:
        regions = _region_set(count)
        random_addrs = [
            rng.randrange(count) * 0x20000 + rng.randrange(0x10000 - 8)
            for _ in range(PROBES)
        ]
        # Strided: sweep one region linearly, as an Opt-2-style loop does.
        strided_addrs = [
            (i % count) * 0x20000 + (i * 64) % (0x10000 - 8)
            for i in range(0, PROBES)
        ]
        # A strided sweep stays in one region for long runs:
        strided_addrs = [
            ((i // 64) % count) * 0x20000 + (i * 64) % (0x10000 - 8)
            for i in range(PROBES)
        ]
        rows.append(
            (
                count,
                _mean_cycles(BinarySearchGuard, regions, random_addrs),
                _mean_cycles(lambda: IfTreeGuard(), regions, random_addrs),
                _mean_cycles(BinarySearchGuard, regions, strided_addrs),
                _mean_cycles(lambda: IfTreeGuard(), regions, strided_addrs),
            )
        )
    return rows


def test_fig4_multiregion_guard_latency(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    emit_table(
        "fig4_multiregion_guards",
        "Figure 4: guard cycles vs #regions (random / strided access)",
        ["regions", "bsearch_rand", "iftree_rand", "bsearch_stride", "iftree_stride"],
        rows,
    )
    by_count = {r[0]: r for r in rows}
    # Costs grow with the number of regions for both mechanisms (random).
    assert by_count[10000][1] > by_count[4][1]
    assert by_count[10000][2] > by_count[4][2]
    # Figure 4b's point: strided access makes the if-tree far cheaper than
    # it is under random access at high region counts.
    assert by_count[10000][4] < by_count[10000][2] / 2
    # Binary search does not benefit from striding (data-dependent path).
    assert abs(by_count[10000][3] - by_count[10000][1]) < 2
    # Single-region guards are just a couple of compares.
    assert by_count[1][1] <= 6
