"""Telemetry contract sweep: zero disabled-mode cost, exact profiles.

Two guarantees the telemetry layer makes, checked against **every**
workload in the suite under **both** engines:

1. **Nil overhead.**  A run with the tracer and profiler attached is
   cycle-identical (full fingerprint: output, instruction mix, every
   modeled counter) to a plain run — telemetry observes the cost model,
   it never participates in it.  A disabled-telemetry run takes the
   exact pre-telemetry code path, so this also pins the "zero cycle cost
   when disabled" property.

2. **Exact reconciliation.**  The profiler's buckets sum to
   ``InterpStats.cycles`` with drift 0 — not approximately: the buckets
   are differences of the same counters that form the total.  Plain
   workload runs perform no kernel-driven moves, so the ``policy`` and
   ``patching`` buckets must both be exactly 0, and both engines must
   produce identical attributions.
"""

from __future__ import annotations

from harness import SCALE, SUITE, emit_json, emit_table
from repro.machine.session import CaratSession, RunConfig
from repro.telemetry import PROFILE_CATEGORIES, validate_events
from repro.workloads import get_workload

ENGINES = ("reference", "fast")


def _profiles():
    """(workload, engine) -> (plain RunResult, telemetry RunResult)."""
    for workload in SUITE:
        source = get_workload(workload, SCALE).source
        binary = None
        for engine in ENGINES:
            plain_config = RunConfig(engine=engine, name=workload)
            plain_session = CaratSession(plain_config)
            plain = plain_session.run(binary if binary is not None else source)
            binary = plain.binary  # compile once per workload
            telem_config = plain_config.replace(
                profile=True, trace=True, trace_detail="normal"
            )
            telem = CaratSession(telem_config).run(binary)
            yield workload, engine, plain, telem


def test_telemetry_contract_suite_sweep():
    rows = []
    payload = {}
    reference_buckets = {}
    for workload, engine, plain, telem in _profiles():
        profile = telem.profile
        # 1. Nil overhead: full behavioral fingerprint equality.
        assert telem.fingerprint() == plain.fingerprint(), (
            f"{workload}/{engine}: telemetry perturbed the run"
        )
        # 2. Exact reconciliation, by the profiler's own assertion and
        #    again by hand.
        profile.assert_reconciles(telem.stats)
        drift = sum(profile.buckets.values()) - telem.cycles
        assert drift == 0, f"{workload}/{engine}: drift {drift:+d}"
        assert profile.buckets["policy"] == 0, f"{workload}/{engine}"
        assert profile.buckets["patching"] == 0, f"{workload}/{engine}"
        # Category split agrees with the stats counters it derives from.
        assert profile.buckets["guard"] == telem.stats.guard_cycles
        assert profile.buckets["tracking"] == telem.stats.tracking_cycles
        # The trace that rode along is schema-valid.
        assert validate_events(
            [e.to_dict() for e in telem.tracer.events]
        ) == []
        if engine == "reference":
            reference_buckets[workload] = dict(profile.buckets)
            rows.append([
                workload,
                telem.cycles,
                profile.buckets["app"],
                profile.buckets["guard"],
                profile.buckets["tracking"],
                len(telem.tracer.events),
                "0",
            ])
            payload[workload] = {
                "cycles": telem.cycles,
                "buckets": dict(profile.buckets),
                "trace_events": len(telem.tracer.events),
            }
        else:
            # 3. Both engines attribute identically, bucket for bucket.
            assert dict(profile.buckets) == reference_buckets[workload], (
                f"{workload}: engines disagree on attribution"
            )

    assert len(rows) == len(SUITE)
    emit_table(
        "telemetry_overhead",
        f"Telemetry contract ({SCALE}): profiled cycles == plain cycles, "
        "buckets reconcile with drift 0 on both engines",
        ["workload", "cycles", "app", "guard", "tracking", "events", "drift"],
        rows,
        footer=[
            f"categories: {', '.join(PROFILE_CATEGORIES)}",
            "fingerprint(plain) == fingerprint(profiled+traced) for every "
            "row, under both engines",
        ],
    )
    emit_json("telemetry_overhead", {"scale": SCALE, "workloads": payload})
