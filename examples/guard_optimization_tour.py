#!/usr/bin/env python3
"""A tour of the guard optimizations (Section 4.1.1) on real IR.

Compiles the same loop three ways — unguarded, naively guarded, and
guarded with the CARAT-specific optimizations — prints the IR so the
transformations are visible, and measures the dynamic guard counts each
configuration actually executes.

Run:  python examples/guard_optimization_tour.py
"""

from repro import CompileOptions, compile_carat
from repro.ir import print_function
from repro.machine.session import CaratSession, RunConfig

SOURCE = """
long N = 256;
void main() {
  long *a = (long*)malloc(sizeof(long) * N);
  long i;
  long s = 0;
  for (i = 0; i < N; i++) {
    a[i] = i;
  }
  for (i = 0; i < N; i++) {
    s = s + a[i];
  }
  print_long(s);
  free((char*)a);
}
"""


def show(title: str, options: CompileOptions) -> None:
    binary = compile_carat(SOURCE, options, module_name="tour")
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")
    print(print_function(binary.module.get_function("main")))
    stats = binary.guard_stats
    if stats.total:
        print(
            f"\nstatic guards: {stats.total} -> remaining "
            f"{stats.remaining} (untouched {stats.untouched}, "
            f"hoisted {stats.hoisted}, merged {stats.merged}, "
            f"eliminated {stats.eliminated})"
        )
    result = CaratSession(RunConfig(mode="carat")).run(binary)
    runtime = result.process.runtime
    print(
        f"dynamic: {runtime.stats.guards_executed} guard executions, "
        f"{result.stats.guard_cycles} guard cycles, "
        f"{result.cycles} total cycles"
    )


def main() -> None:
    show(
        "naive guards (every load/store/call checked, no CARAT opts)",
        CompileOptions(carat_guard_opts=False, tracking=False),
    )
    show(
        "CARAT-optimized guards (hoist + SCEV merge + AC/DC)",
        CompileOptions(carat_guard_opts=True, tracking=False),
    )
    print(
        "\nNote how the per-iteration carat.guard.* calls inside the two "
        "loops collapse into two carat.guard.range checks in the "
        "preheaders: 512 dynamic guard executions become a handful."
    )


if __name__ == "__main__":
    main()
