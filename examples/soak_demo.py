#!/usr/bin/env python3
"""Soak a CARAT machine: long-horizon service traffic under chaos.

The other demos run a program to completion once.  A virtual-memory
substrate earns trust by *staying* correct: this demo runs the
request-serving ``kvservice`` workload across several tenants for
hundreds of scheduler rounds while a seeded :class:`ChaosSchedule`
keeps arming protocol faults (crash / hang / torn, at every Figure-8
step) against the kernel's move traffic, and a
:class:`SteadyStateMonitor` watches the telemetry for anything a
long-running service must never do:

* external fragmentation ratcheting up (compaction losing),
* allocation-table / escape-map / frame counts growing without bound
  after warmup (a leak the churn cannot explain),
* a quarantined range outliving its cooldown (degradation that never
  drains),
* pause cycles that do not reconcile with the move ledger.

Every fault is absorbed transactionally — retried to success or
degraded into a bounded quarantine — and the whole run is a pure
function of the seed: re-run it and the fingerprint is bit-identical.

Run:  python examples/soak_demo.py
"""

from repro.machine.session import RunConfig
from repro.soak import SoakRunner


def main() -> None:
    config = RunConfig(
        engine="fast",
        soak_requests=6000,       # total requests across all tenants
        soak_tenants=4,
        heap_size=64 * 1024,      # small heaps + tight fast tier = churn
        soak_horizon=120,         # epoch budget before the watchdog trips
        soak_rounds_per_epoch=25,
        quantum=1000,
        chaos_rate=2.0,           # expected faults armed per epoch
        chaos_seed=77,
    )
    runner = SoakRunner(config, crash_dump_path="soak-demo-crash.json")
    report = runner.run()

    print(
        f"{config.soak_tenants} kvservice tenants, chaos rate "
        f"{config.chaos_rate:g}, seed {config.chaos_seed}\n"
    )
    print(f"epochs        : {report.epochs} ({report.rounds} rounds)")
    print(
        f"requests      : {report.requests_completed}/"
        f"{report.requests_target} served "
        f"({report.throughput_rpkc():.2f} per kilocycle)"
    )
    print(
        f"latency       : p50 {report.latency_p50} / "
        f"p99 {report.latency_p99} cycles per request"
    )
    faults = report.faults
    print(
        f"chaos         : {faults['injected']} armed, {faults['fired']} "
        f"fired, {faults['move_retries']} retried, "
        f"{faults['moves_degraded']} degraded, "
        f"{faults['quarantines_drained']} quarantines drained"
    )
    print(f"sanitizer     : {report.sanitizer}")
    verdicts = report.verdicts
    print(
        "steady state  : "
        + ("held — no verdicts" if not verdicts else f"{len(verdicts)} verdict(s)")
    )
    for verdict in verdicts:
        print(f"  [{verdict['name']}] {verdict['detail']}")
    print(f"fingerprint   : {report.fingerprint()}")
    print("\nSame seed, same fingerprint — chaos included: the whole soak")
    print("is deterministic, so any failure it ever finds is replayable.")


if __name__ == "__main__":
    main()
