#!/usr/bin/env python3
"""Quickstart: compile one program, run it three ways, compare.

The program is plain Mini-C.  We build it (1) uninstrumented on physical
addressing (the CARAT baseline), (2) with the full CARAT treatment —
guards + tracking + signing — and (3) uninstrumented under the
traditional paging model with TLBs and pagewalks.

Run:  python examples/quickstart.py
"""

from repro import compile_baseline, compile_carat
from repro.machine.session import CaratSession, RunConfig

SOURCE = """
long N = 500;

long checksum(long *data, long n) {
  long acc = 0;
  long i;
  for (i = 0; i < n; i++) { acc = acc + data[i] * 31 % 1000003; }
  return acc;
}

void main() {
  long *data = (long*)malloc(sizeof(long) * N);
  long i;
  for (i = 0; i < N; i++) { data[i] = i * i; }
  print_long(checksum(data, N));
  free((char*)data);
}
"""


def main() -> None:
    print("== compiling ==")
    carat_binary = compile_carat(SOURCE, module_name="quickstart")
    stats = carat_binary.guard_stats
    print(f"guards injected : {stats.total}")
    print(
        f"  untouched={stats.untouched} hoisted={stats.hoisted} "
        f"merged={stats.merged} eliminated={stats.eliminated}"
    )
    print(f"tracking callbacks: {carat_binary.tracking_stats.total}")
    print(f"signed by        : {carat_binary.signature.toolchain}")

    print("\n== running ==")
    baseline = CaratSession(
        RunConfig(mode="baseline", name="quickstart")
    ).run(SOURCE)
    carat = CaratSession(RunConfig(mode="carat")).run(carat_binary)
    traditional = CaratSession(
        RunConfig(mode="traditional", name="quickstart")
    ).run(SOURCE)

    assert baseline.output == carat.output == traditional.output
    print(f"program output   : {baseline.output[0]} (identical in all modes)")

    print("\n== cycle accounting ==")
    print(f"{'config':14s} {'cycles':>10s} {'overhead':>9s}  notes")
    base = baseline.cycles
    print(f"{'baseline':14s} {base:10d} {1.0:9.3f}  physical addressing, no checks")
    rt = carat.process.runtime
    print(
        f"{'CARAT':14s} {carat.cycles:10d} {carat.cycles / base:9.3f}  "
        f"{rt.stats.guards_executed} guards, "
        f"{rt.stats.tracking_events} tracking events"
    )
    mmu = traditional.process.mmu
    print(
        f"{'traditional':14s} {traditional.cycles:10d} "
        f"{traditional.cycles / base:9.3f}  "
        f"{mmu.stats.dtlb_misses} DTLB misses, {mmu.stats.pagewalks} pagewalks"
    )
    print(
        f"\nDTLB miss rate under paging: "
        f"{traditional.dtlb_mpki():.2f} misses / 1K instructions"
    )
    print(
        f"CARAT pays {carat.stats.guard_cycles} guard cycles and "
        f"{carat.stats.tracking_cycles} tracking cycles instead of "
        f"{traditional.stats.translation_cycles} translation cycles."
    )


if __name__ == "__main__":
    main()
