#!/usr/bin/env python3
"""The multi-tenant kernel: N CARAT capsules sharing one machine.

The paper's kernel hosts many processes; this demo schedules several on
one simulated machine and shows the three things multi-tenancy adds:

1. **time-slicing** — a round-robin `Scheduler` runs each tenant for a
   quantum of instructions, switching at safepoints so kernel activity
   between quanta is always patch-safe;
2. **CoW page sharing** — the tenants run the *same* signed binary, so
   their read-only images (globals + code) deduplicate into one
   physical copy; the first write each tenant makes to its globals page
   raises a guard fault that the kernel services as a transactional
   copy-on-write break — every tenant still computes exactly what it
   would alone;
3. **per-tenant accounting** — kernel stats, pause samples (the cycles
   each world-stop cost), and trace lanes are all keyed by PID, so one
   noisy tenant can't hide in another's numbers.

Run:  python examples/multitenant_demo.py
"""

from repro.machine.session import RunConfig
from repro.multiproc import Scheduler, TenantSpec

# Every tenant increments a *global* counter: under CoW sharing that
# first store must fault, break the globals page private, and retry —
# if sharing leaked, tenants would see each other's counters and the
# printed sums would diverge.
SOURCE = """
long counter;
void main() {
  long i;
  for (i = 1; i <= 100; i++) { counter = counter + i; }
  print_long(counter);
}
"""

TENANTS = 6


def main() -> None:
    config = RunConfig(
        engine="fast",
        sanitize=True,          # every move audited by the invariant checker
        quantum=200,            # instructions per time slice
        heap_size=64 * 1024,
        stack_size=16 * 1024,
    )
    specs = [TenantSpec(SOURCE, name=f"tenant{i}") for i in range(TENANTS)]
    result = Scheduler(config, specs, share=True).run()

    print(f"{TENANTS} tenants, quantum {config.quantum}, CoW sharing on\n")
    print(f"{'pid':>4s} {'tenant':10s} {'output':>7s} {'instr':>7s} "
          f"{'cycles':>7s} {'p99 pause':>9s}")
    for pid, tenant in sorted(result.tenants.items()):
        print(
            f"{pid:4d} {tenant.process.name:10s} {tenant.output[0]:>7s} "
            f"{tenant.stats.instructions:7d} {tenant.stats.cycles:7d} "
            f"{result.p99_pause(pid):9d}"
        )

    outputs = {r.output[0] for r in result.tenants.values()}
    assert outputs == {"5050"}, outputs  # isolation held: sum(1..100) each

    dedup = result.dedup
    print(f"\nschedule    : {result.rounds} rounds, "
          f"{result.machine_cycles} machine cycles, "
          f"{result.aggregate_throughput():.3f} instr/cycle aggregate")
    print(f"image dedup : {dedup['shared_pages']} shared pages, "
          f"{dedup['saved_pages']} frames saved "
          f"({dedup['saved_bytes']} bytes)")
    print(f"cow breaks  : {dedup['cow_breaks']} "
          f"({dedup['pages_broken']} pages, "
          f"{dedup['break_cycles']} cycles paid by the writing tenants)")
    print("\nEvery tenant printed 5050: the shared image deduplicated, "
          "the writes broke private, nobody saw a neighbour's counter.")


if __name__ == "__main__":
    main()
