#!/usr/bin/env python3
"""Swapping through non-canonical addresses (Section 2.2).

CARAT makes a page "unavailable" by patching every pointer into it to a
non-canonical address: the next guarded access faults, the fault handler
recognizes the encoding, swaps the page set back in — at a *different*
physical address — re-patches, and resumes.  Demand paging from a swap
device, with zero hardware support.

Run:  python examples/swap_demo.py
"""

from repro import compile_carat
from repro.errors import ProtectionFault
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.kernel.swap import SwapManager, is_noncanonical
from repro.machine.interp import Interpreter

SOURCE = """
struct Node { long value; struct Node *next; };
struct Node *head;
void main() {
  long i;
  for (i = 0; i < 120; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = i * 3;
    node->next = head;
    head = node;
  }
  long total = 0;
  struct Node *p = head;
  while (p != null) { total += p->value; p = p->next; }
  print_long(total);
}
"""

EXPECTED = sum(i * 3 for i in range(120))


def main() -> None:
    binary = compile_carat(SOURCE, module_name="swap-demo")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    swap = SwapManager(kernel)
    interp = Interpreter(process, kernel)
    interp.start("main")
    interp.run_steps(900)  # mid build

    # Evict the hottest heap page.
    process.runtime.flush_escapes()
    victim = next(a for a in process.runtime.table if a.kind == "heap")
    page = victim.address & ~(PAGE_SIZE - 1)
    snapshots = interp.register_snapshots()
    record = swap.swap_out(process, page, register_snapshots=snapshots)
    interp.apply_snapshots(snapshots)
    print(
        f"swapped out [{record.original_lo:#x}, {record.original_hi:#x}): "
        f"{len(record.data)} bytes now live on the swap device"
    )
    print(f"pointers into it now encode the swapped-out condition "
          f"(e.g. allocation rebased to {victim.address:#x})")
    assert is_noncanonical(victim.address)

    faults = 0
    while True:
        try:
            status = interp.run_steps(10_000_000)
        except ProtectionFault as fault:
            faults += 1
            print(f"fault #{faults}: guarded access hit {fault.address:#x}")
            snapshots = interp.register_snapshots()
            new_address = swap.handle_fault(process, fault, snapshots)
            interp.apply_snapshots(snapshots)
            print(f"  swapped back in; the byte now lives at {new_address:#x}")
            continue
        if status == "done":
            break

    print(f"\nprogram output: {interp.output[0]} (expected {EXPECTED})")
    assert interp.output == [str(EXPECTED)]
    print(f"swap-outs: {swap.swap_outs}, swap-ins: {swap.swap_ins}")


if __name__ == "__main__":
    main()
