#!/usr/bin/env python3
"""Memory compaction under CARAT: watch fragmentation fall per epoch.

The policy engine's pitch (Sections 1-2 of the paper): once translation
is a software protocol, *every* page of a tracked process is movable, so
defragmentation is just a policy loop over the same move mechanism the
page-migration demo exercises.  This demo:

1. loads a pointer-chasing program and *scatters* its capsule across
   physical memory (an adversary standing in for years of allocator
   churn) — the external-fragmentation index jumps above 0.7;
2. attaches the policy engine with only the compaction daemon enabled,
   on a small per-epoch move-cycle budget;
3. runs the program, printing the EFI after every policy epoch as the
   daemon packs the capsule back down, a budget's worth at a time;
4. verifies the program's answer never changed.

Run:  python examples/compaction_demo.py
"""

from repro import compile_carat
from repro.kernel import Kernel
from repro.machine.interp import Interpreter
from repro.policy import (
    CompactionDaemon,
    PolicyEngine,
    assess_fragmentation,
    scatter_capsule,
)

SOURCE = """
struct Node { long value; struct Node *next; };
struct Node *head;

void main() {
  long i;
  for (i = 0; i < 400; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = i;
    node->next = head;
    head = node;
  }
  long total = 0;
  long pass;
  for (pass = 0; pass < 25; pass++) {
    struct Node *p = head;
    while (p != null) { total += p->value; p = p->next; }
  }
  print_long(total);
}
"""

EXPECTED = sum(range(400)) * 25


def main() -> None:
    binary = compile_carat(SOURCE, module_name="compaction-demo")
    kernel = Kernel(memory_size=16 * 1024 * 1024)
    process = kernel.load_carat(
        binary, heap_size=256 * 1024, stack_size=64 * 1024
    )
    interp = Interpreter(process, kernel)
    interp.set_tick_interval(2_000)

    moves = scatter_capsule(kernel, process, interpreter=interp)
    before = assess_fragmentation(kernel.frames)
    print(f"scattered the capsule in {moves} moves")
    print(f"before: {before.describe()}\n")

    engine = PolicyEngine(
        kernel,
        process,
        epoch_cycles=20_000,
        budget_cycles=30_000,  # tight: packing takes several epochs
        compaction=CompactionDaemon(kernel, process, target_fragmentation=0.05),
    )
    engine.attach(interp)

    print("epoch  EFI    moves  cycles_spent")
    seen = 0

    def report():
        nonlocal seen
        stats = engine.stats
        for i in range(seen, stats.epochs):
            print(
                f"{i + 1:5d}  {stats.frag_history[i]:.3f}  "
                f"{stats.compaction_moves:5d}  {stats.epoch_move_cycles[i]:8d}"
            )
        seen = stats.epochs

    previous_hook = interp.tick_hook

    def hook(it):
        previous_hook(it)
        report()

    interp.tick_hook = hook
    exit_code = interp.run("main")
    report()

    after = assess_fragmentation(kernel.frames)
    print(f"\nafter:  {after.describe()}")
    print(engine.stats.describe())

    answer = int(interp.output[-1])
    print(f"\nprogram answered {answer} (expected {EXPECTED}):",
          "correct" if answer == EXPECTED else "WRONG")
    assert exit_code == 0 and answer == EXPECTED
    assert engine.stats.budgets_respected


if __name__ == "__main__":
    main()
