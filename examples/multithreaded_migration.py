#!/usr/bin/env python3
"""Multi-thread world stops: Figure 8 with more than one mutator.

Four threads build linked lists concurrently while the kernel keeps
moving the hottest heap page out from under them.  Every move stops
*all* threads, dumps each register file, patches every escape and every
thread's registers, moves the data, and resumes the group — the full
protocol the paper diagrams.

Run:  python examples/multithreaded_migration.py
"""

from repro import compile_carat
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.threads import ThreadGroup, ThreadSpec

SOURCE = """
struct Node { long value; struct Node *next; };
struct Node *lists[4];
long sums[4];

void builder(long tid, long n) {
  long i;
  for (i = 0; i < n; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = tid * 1000 + i;
    node->next = lists[tid];
    lists[tid] = node;
  }
  long s = 0;
  struct Node *p = lists[tid];
  while (p != null) { s += p->value; p = p->next; }
  sums[tid] = s;
}

void main() { }
"""

NODES_PER_THREAD = 60
THREADS = 4


def main() -> None:
    binary = compile_carat(SOURCE, module_name="mt-demo")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    group = ThreadGroup(
        process,
        kernel,
        [ThreadSpec("builder", (tid, NODES_PER_THREAD)) for tid in range(THREADS)],
        quantum=300,
    )
    print(f"{THREADS} threads, round-robin quantum {group.quantum} instructions")
    print(f"thread stacks: " + ", ".join(hex(t.stack_base) for t in group.threads))

    moves = 0
    rounds = 0
    while group.run_round():
        rounds += 1
        victim = process.runtime.worst_case_allocation()
        if victim is None or victim.kind == "code":
            continue
        snapshots = group.stop_the_world()
        plan, cost, _ = kernel.request_page_move(
            process,
            victim.address & ~(PAGE_SIZE - 1),
            register_snapshots=snapshots,
            thread_count=THREADS,
        )
        group.resume_after()
        moves += 1
        registers_patched = cost.register_patch // kernel.costs.patch_register
        if moves <= 4 or moves % 4 == 0:
            print(
                f"round {rounds:3d}: moved [{plan.lo:#x},{plan.hi:#x}), "
                f"patched {registers_patched} register(s) across "
                f"{len(snapshots)} thread frames"
            )

    print(f"\nscheduling rounds: {rounds}, page moves: {moves}")
    base = process.globals_map["sums"]
    ok = True
    for tid in range(THREADS):
        expected = sum(tid * 1000 + i for i in range(NODES_PER_THREAD))
        got = kernel.memory.read_int(base + 8 * tid, 8)
        status = "ok" if got == expected else "WRONG"
        ok &= got == expected
        print(f"thread {tid}: sum = {got} (expected {expected}) {status}")
    assert ok
    print("\nEvery thread computed the right answer while its data was "
          "relocated underneath it.")


if __name__ == "__main__":
    main()
