#!/usr/bin/env python3
"""Page migration under CARAT: move live data while the program runs.

This is the paper's Figure 8 protocol end to end.  A program builds a
linked list on the heap; mid-run, the kernel repeatedly asks the CARAT
runtime to move the *worst-case* page — the one overlapping the
allocation with the most escapes.  The runtime stops the world, patches
every escape and register, the data moves, and the program finishes with
the right answer, never knowing its pointers were rewritten.

Run:  python examples/page_migration.py
"""

from repro import compile_carat
from repro.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.machine.interp import Interpreter
from repro.runtime.patching import MoveCost

SOURCE = """
struct Node { long value; struct Node *next; };
struct Node *head;

void main() {
  long i;
  for (i = 0; i < 300; i++) {
    struct Node *node = (struct Node*)malloc(sizeof(struct Node));
    node->value = i;
    node->next = head;
    head = node;
  }
  long total = 0;
  struct Node *p = head;
  while (p != null) { total += p->value; p = p->next; }
  print_long(total);
}
"""

EXPECTED = sum(range(300))


def main() -> None:
    binary = compile_carat(SOURCE, module_name="migration-demo")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")

    print(process.describe())
    print(f"\ninitial regions: {process.regions.regions}")

    moves = 0
    total_cost = MoveCost()
    while True:
        status = interp.run_steps(800)
        if status == "done":
            break
        runtime = process.runtime
        victim = runtime.worst_case_allocation()
        if victim is None or victim.kind != "heap":
            continue
        # Figure 8, steps 1-12: request, world-stop, negotiate, patch, move.
        snapshots = interp.register_snapshots()
        plan, cost, cycles = kernel.request_page_move(
            process,
            victim.address & ~(PAGE_SIZE - 1),
            register_snapshots=snapshots,
        )
        interp.apply_snapshots(snapshots)
        moves += 1
        total_cost = total_cost + cost
        if moves <= 3 or moves % 5 == 0:
            print(
                f"move {moves:3d}: [{plan.lo:#x},{plan.hi:#x}) "
                f"{'expanded ' if plan.expanded else ''}"
                f"-> cost: expand={cost.page_expand} "
                f"patch={cost.patch_gen_exec} regs={cost.register_patch} "
                f"move={cost.alloc_and_move}"
            )

    print(f"\nprogram output: {interp.output[0]} (expected {EXPECTED})")
    assert interp.output == [str(EXPECTED)]
    print(f"pages moved mid-run: {moves}")
    print(f"final region count: {len(process.regions)} (after coalescing)")
    if moves:
        print("\nTable-3-style breakdown (totals over all moves):")
        print(f"  Page Expand        : {total_cost.page_expand:8d} cycles")
        print(f"  Patch Gen & Exec   : {total_cost.patch_gen_exec:8d} cycles")
        print(f"  Register Patch     : {total_cost.register_patch:8d} cycles")
        print(f"  Allocation & Move  : {total_cost.alloc_and_move:8d} cycles")
        print(f"  Prototype w/o expand / total: {total_cost.wo_expand_fraction:.3f}")
    print("\nThe program never observed the relocations: CARAT patched "
          "every escape and register before resuming it.")


if __name__ == "__main__":
    main()
