#!/usr/bin/env python3
"""Protection without paging: guards, faults, and compile-time rejection.

Three vignettes:

1. a protection change — the kernel revokes write permission on part of
   the process's space mid-run; the next guarded write faults, exactly
   like a page-protection fault but with zero hardware;
2. an out-of-capsule access — a program that fabricates a pointer fails
   at *compile time* (CARAT's source restrictions), and a program whose
   guarded access leaves the region set faults at run time;
3. the trust handshake — the kernel refuses a binary whose signature
   does not verify.

Run:  python examples/protection_demo.py
"""

from repro import CompileOptions, compile_carat
from repro.errors import ProtectionFault, RestrictionError, SigningError
from repro.kernel import Kernel
from repro.machine.interp import Interpreter
from repro.runtime.regions import PERM_READ, PERM_RWX

WRITER = """
long buffer[512];
void main() {
  long i;
  for (i = 0; i < 512; i++) {
    buffer[i] = i;
  }
  print_long(buffer[511]);
}
"""


def demo_protection_change() -> None:
    print("== 1. kernel revokes write permission before the write phase ==")
    binary = compile_carat(WRITER, module_name="writer")
    kernel = Kernel()
    process = kernel.load_carat(binary)
    interp = Interpreter(process, kernel)
    interp.start("main")

    # Revoke writes on the globals segment before the program's store
    # loop runs: its (Opt2-merged) write guard must fault.
    globals_base = process.layout.globals_base
    kernel.request_protection_change(
        process, globals_base, process.layout.globals_size, PERM_READ
    )
    print(f"globals region [{globals_base:#x}, ...) is now read-only")
    try:
        interp.run_steps(10_000_000)
        print("!! the write went unguarded — should not happen")
    except ProtectionFault as fault:
        print(f"guard caught it: {fault}")
    # The kernel restores permission and resumes the thread (the guarded
    # access proceeds after the fault handler returns).
    kernel.request_protection_change(
        process, globals_base, process.layout.globals_size, PERM_RWX
    )
    interp.run_steps(10_000_000)
    print(f"after restoring permission, program finished: {interp.output}\n")


def demo_compile_time_rejection() -> None:
    print("== 2. fabricated pointers are rejected at compile time ==")
    try:
        compile_carat('void main() { asm("mov cr0, 0"); }')
    except RestrictionError as error:
        print(f"inline asm: {error}")
    from repro.ir import Function, FunctionType, IRBuilder, Module, ptr
    from repro.ir.types import I64, VOID

    module = Module("fabricator")
    fn = Function("main", FunctionType(VOID, []), module)
    b = IRBuilder(fn.add_block("entry"))
    wild = b.inttoptr(b.i64(0xDEADBEEF), ptr(I64))
    b.load(wild)
    b.ret()
    try:
        compile_carat(module)
    except RestrictionError as error:
        print(f"IR-level check: {error}\n")


def demo_trust_handshake() -> None:
    print("== 3. the kernel only loads signed, trusted binaries ==")
    unsigned = compile_carat(WRITER, CompileOptions(sign=False))
    kernel = Kernel()
    try:
        kernel.load_carat(unsigned)
    except SigningError as error:
        print(f"unsigned: {error}")
    paranoid = Kernel(trusted_toolchains={"some-other-compiler"})
    signed = compile_carat(WRITER)
    try:
        paranoid.load_carat(signed)
    except SigningError as error:
        print(f"untrusted toolchain: {error}")


if __name__ == "__main__":
    demo_protection_change()
    demo_compile_time_rejection()
    demo_trust_handshake()
