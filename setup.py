"""Setuptools entry point.

This repository is installable with ``pip install -e .``; on fully offline
machines that lack the ``wheel`` package (which PEP 660 editable installs
require), ``python setup.py develop`` achieves the same result.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of CARAT: compiler- and runtime-based address "
        "translation (PLDI 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
