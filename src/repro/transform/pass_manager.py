"""Pass manager: named module passes, ordering, and statistics.

Thin by design — passes are plain callables ``Module -> int`` (returning a
change count).  The manager records per-pass change counts and optionally
verifies the module after each pass, which the test suite switches on to
catch pass bugs at their source.

With a :class:`~repro.telemetry.Tracer` attached (``tracer=``), every
pass becomes a ``compiler`` span carrying its change count and the IR
instruction-count delta it produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.module import Module
from repro.ir.verifier import verify_module

ModulePass = Callable[[Module], int]


def module_instruction_count(module: Module) -> int:
    """Total instructions across all function bodies — the IR size metric
    reported in per-pass trace spans."""
    total = 0
    for function in module.functions.values():
        for block in function.blocks:
            total += len(block.instructions)
    return total


@dataclass
class PassResult:
    name: str
    changes: int


@dataclass
class PassManager:
    verify_after_each: bool = False
    _passes: List[tuple] = field(default_factory=list)
    results: List[PassResult] = field(default_factory=list)
    #: Optional :class:`~repro.telemetry.Tracer` for per-pass spans.
    tracer: Optional[object] = None

    def add(self, name: str, module_pass: ModulePass) -> "PassManager":
        self._passes.append((name, module_pass))
        return self

    def run(self, module: Module) -> Dict[str, int]:
        self.results = []
        tracer = self.tracer
        for name, module_pass in self._passes:
            if tracer is not None:
                size_before = module_instruction_count(module)
                with tracer.span(f"pass.{name}", "compiler") as end_args:
                    changes = module_pass(module)
                    end_args["changes"] = changes
                    end_args["ir_delta"] = (
                        module_instruction_count(module) - size_before
                    )
            else:
                changes = module_pass(module)
            self.results.append(PassResult(name, changes))
            if self.verify_after_each:
                try:
                    verify_module(module)
                except Exception as exc:  # re-raise with pass attribution
                    raise type(exc)(f"after pass {name!r}: {exc}") from exc
        return {r.name: r.changes for r in self.results}


def standard_optimization_pipeline(
    verify: bool = False, tracer=None
) -> PassManager:
    """The "general optimizations" pipeline (the -O2 stand-in used as the
    baseline in Figure 3(a)): SSA construction, simplification, DCE, LICM,
    then one more cleanup round."""
    from repro.transform import dce, licm, mem2reg, simplify

    pm = PassManager(verify_after_each=verify, tracer=tracer)
    pm.add("mem2reg", mem2reg.run_on_module)
    pm.add("simplify", simplify.run_on_module)
    pm.add("dce", dce.run_on_module)
    pm.add("licm", licm.run_on_module)
    pm.add("simplify.2", simplify.run_on_module)
    pm.add("dce.2", dce.run_on_module)
    return pm


def optimize_module(
    module: Module, verify: bool = False, tracer=None
) -> Dict[str, int]:
    """Run the standard pipeline over ``module`` and return change counts."""
    return standard_optimization_pipeline(verify, tracer=tracer).run(module)
