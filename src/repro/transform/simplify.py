"""Instruction simplification: constant folding and algebraic identities.

A local peephole pass: fold operations on constants, apply identities
(``x+0``, ``x*1``, ``x*0``, ``x-x``...), resolve constant comparisons and
selects, and collapse conditional branches on constant conditions (which
exposes dead blocks to DCE).  Runs to a fixed point per function.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from repro.ir.module import Function, Module
from repro.ir.types import I1, IntType
from repro.ir.values import ConstantFloat, ConstantInt, Value


def fold_int_binop(op: str, ty: IntType, a: int, b: int) -> Optional[int]:
    if op == "add":
        return ty.wrap(a + b)
    if op == "sub":
        return ty.wrap(a - b)
    if op == "mul":
        return ty.wrap(a * b)
    if op == "sdiv":
        if b == 0:
            return None
        return ty.wrap(int(a / b) if (a < 0) != (b < 0) else a // b)
    if op == "udiv":
        if b == 0:
            return None
        return ty.wrap(ty.wrap_unsigned(a) // ty.wrap_unsigned(b))
    if op == "srem":
        if b == 0:
            return None
        quotient = int(a / b) if (a < 0) != (b < 0) else a // b
        return ty.wrap(a - quotient * b)
    if op == "urem":
        if b == 0:
            return None
        return ty.wrap(ty.wrap_unsigned(a) % ty.wrap_unsigned(b))
    if op == "and":
        return ty.wrap(a & b)
    if op == "or":
        return ty.wrap(a | b)
    if op == "xor":
        return ty.wrap(a ^ b)
    if op == "shl":
        if not 0 <= b < ty.bits:
            return None
        return ty.wrap(a << b)
    if op == "lshr":
        if not 0 <= b < ty.bits:
            return None
        return ty.wrap(ty.wrap_unsigned(a) >> b)
    if op == "ashr":
        if not 0 <= b < ty.bits:
            return None
        return ty.wrap(a >> b)
    return None


def fold_icmp(pred: str, a: int, b: int, bits: int) -> bool:
    ua = a & ((1 << bits) - 1)
    ub = b & ((1 << bits) - 1)
    table = {
        "eq": a == b,
        "ne": a != b,
        "slt": a < b,
        "sle": a <= b,
        "sgt": a > b,
        "sge": a >= b,
        "ult": ua < ub,
        "ule": ua <= ub,
        "ugt": ua > ub,
        "uge": ua >= ub,
    }
    return table[pred]


def _simplify_instruction(inst: Instruction) -> Optional[Value]:
    """Return a replacement value, or None when nothing simplifies."""
    if isinstance(inst, BinaryInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            assert isinstance(inst.type, IntType)
            folded = fold_int_binop(inst.opcode, inst.type, lhs.value, rhs.value)
            if folded is not None:
                return ConstantInt(inst.type, folded)
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            folded_f = _fold_float(inst.opcode, lhs.value, rhs.value)
            if folded_f is not None:
                from repro.ir.types import FloatType

                assert isinstance(inst.type, FloatType)
                return ConstantFloat(inst.type, folded_f)
        # Canonicalize constant to the right for commutative ops.
        if inst.is_commutative and isinstance(lhs, ConstantInt) and not isinstance(rhs, ConstantInt):
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            lhs, rhs = inst.lhs, inst.rhs
        if isinstance(rhs, ConstantInt):
            c = rhs.value
            if inst.opcode in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and c == 0:
                return lhs
            if inst.opcode == "mul":
                if c == 1:
                    return lhs
                if c == 0:
                    return rhs
            if inst.opcode in ("sdiv", "udiv") and c == 1:
                return lhs
            if inst.opcode == "and":
                if c == 0:
                    return rhs
                assert isinstance(inst.type, IntType)
                if c == inst.type.wrap(-1):
                    return lhs
        if inst.opcode == "sub" and lhs is rhs:
            assert isinstance(inst.type, IntType)
            return ConstantInt(inst.type, 0)
        if inst.opcode == "xor" and lhs is rhs:
            assert isinstance(inst.type, IntType)
            return ConstantInt(inst.type, 0)
        return None
    if isinstance(inst, ICmpInst):
        lhs, rhs = inst.lhs, inst.rhs
        # (icmp ne (zext i1 %x), 0) -> %x  — produced by condition lowering.
        if (
            inst.predicate == "ne"
            and isinstance(rhs, ConstantInt)
            and rhs.value == 0
            and isinstance(lhs, CastInst)
            and lhs.opcode == "zext"
            and lhs.value.type == I1
        ):
            return lhs.value
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            assert isinstance(lhs.type, IntType)
            return ConstantInt(
                I1, int(fold_icmp(inst.predicate, lhs.value, rhs.value, lhs.type.bits))
            )
        if lhs is rhs:
            return ConstantInt(I1, int(inst.predicate in ("eq", "sle", "sge", "ule", "uge")))
        return None
    if isinstance(inst, FCmpInst):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            table = {
                "oeq": lhs.value == rhs.value,
                "one": lhs.value != rhs.value,
                "olt": lhs.value < rhs.value,
                "ole": lhs.value <= rhs.value,
                "ogt": lhs.value > rhs.value,
                "oge": lhs.value >= rhs.value,
            }
            return ConstantInt(I1, int(table[inst.predicate]))
        return None
    if isinstance(inst, SelectInst):
        if isinstance(inst.condition, ConstantInt):
            return inst.true_value if inst.condition.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
        return None
    if isinstance(inst, CastInst):
        value = inst.value
        if isinstance(value, ConstantInt) and isinstance(inst.type, IntType):
            if inst.opcode in ("trunc", "zext", "sext"):
                src_ty = value.type
                assert isinstance(src_ty, IntType)
                if inst.opcode == "zext":
                    return ConstantInt(inst.type, src_ty.wrap_unsigned(value.value))
                return ConstantInt(inst.type, value.value)
        return None
    return None


def _fold_float(op: str, a: float, b: float) -> Optional[float]:
    try:
        if op == "fadd":
            return a + b
        if op == "fsub":
            return a - b
        if op == "fmul":
            return a * b
        if op == "fdiv":
            return a / b if b != 0 else None
        if op == "frem":
            import math

            return math.fmod(a, b) if b != 0 else None
    except OverflowError:
        return None
    return None


def _fold_constant_branches(fn: Function) -> int:
    """Turn ``br i1 <const>, %a, %b`` into an unconditional branch."""
    changed = 0
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            continue
        cond = term.condition
        if not isinstance(cond, ConstantInt):
            continue
        then_bb, else_bb = term.targets
        taken = then_bb if cond.value else else_bb
        not_taken = else_bb if cond.value else then_bb
        if taken is not not_taken:
            for phi in not_taken.phis():
                if any(b is block for _, b in phi.incoming):
                    phi.remove_incoming(block)
        block.remove(term)
        term.drop_all_operands()
        new_term = BranchInst(taken)
        block.append(new_term)
        changed += 1
    return changed


def run_on_function(fn: Function) -> int:
    total = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                replacement = _simplify_instruction(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    if inst.num_uses == 0 and not inst.is_terminator:
                        inst.erase_from_parent()
                    total += 1
                    changed = True
        folded = _fold_constant_branches(fn)
        if folded:
            total += folded
            changed = True
    return total


def run_on_module(module: Module) -> int:
    return sum(run_on_function(fn) for fn in module.defined_functions())
