"""Generic (non-CARAT) IR transformations.

* :mod:`repro.transform.mem2reg` — SSA construction
* :mod:`repro.transform.simplify` — constant folding / peepholes
* :mod:`repro.transform.dce` — dead code and dead block elimination
* :mod:`repro.transform.licm` — loop-invariant code motion
* :mod:`repro.transform.pass_manager` — ordering and statistics
"""

from repro.transform.dce import eliminate_dead_code
from repro.transform.licm import hoist_loop_invariants
from repro.transform.mem2reg import promote_memory_to_registers
from repro.transform.pass_manager import (
    PassManager,
    optimize_module,
    standard_optimization_pipeline,
)
from repro.transform.simplify import fold_icmp, fold_int_binop

__all__ = [
    "eliminate_dead_code",
    "hoist_loop_invariants",
    "promote_memory_to_registers",
    "PassManager",
    "optimize_module",
    "standard_optimization_pipeline",
    "fold_icmp",
    "fold_int_binop",
]
