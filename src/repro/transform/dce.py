"""Dead code elimination.

Removes instructions whose results are unused and that have no side
effects, iterating until a fixed point so chains of dead computation
disappear.  Also provides dead-block removal (delegating to the CFG
utilities) as part of the standard cleanup pipeline.
"""

from __future__ import annotations

from repro.analysis.cfg import remove_unreachable_blocks
from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    Instruction,
    LoadInst,
    PhiInst,
)
from repro.ir.module import Function, Module


def is_trivially_dead(inst: Instruction) -> bool:
    """Unused and side-effect free.

    Loads are removable when unused (the memory state is unaffected);
    allocas are removable when unused; calls are only removable when they
    are known readonly.  Stores, branches, and returns never are.
    """
    if inst.type.is_void:
        return False
    if inst.num_uses:
        return False
    if isinstance(inst, CallInst):
        return inst.is_readonly_call()
    if inst.is_terminator:
        return False
    return True


def eliminate_dead_code(fn: Function) -> int:
    """Iteratively remove dead instructions.  Returns the number removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if is_trivially_dead(inst):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def run_on_function(fn: Function) -> int:
    removed = eliminate_dead_code(fn)
    removed += remove_unreachable_blocks(fn)
    # Unreachable-block removal can orphan values; one more DCE sweep.
    removed += eliminate_dead_code(fn)
    return removed


def run_on_module(module: Module) -> int:
    return sum(run_on_function(fn) for fn in module.defined_functions())
