"""Loop-invariant code motion.

Hoists computations whose operands are loop-invariant into the loop
preheader.  Pure instructions (arithmetic, comparisons, casts, GEPs,
selects) hoist whenever their operands are invariant and their block
dominates all loop exits *or* the instruction is speculatable.  Loads
hoist when, additionally, the PD analysis proves nothing in the loop may
write the location (the paper's enhanced invariance detection).

This pass represents the "readily-available compiler optimizations" of
Figure 3(a); the CARAT-specific guard optimizations build on the same
analyses but live in :mod:`repro.carat.guard_opt`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.alias import ChainedAliasAnalysis
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.pdg import ProgramDependenceGraph
from repro.ir.instructions import (
    BinaryInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from repro.ir.module import Function, Module
from repro.ir.values import Constant, Value


_SPECULATABLE_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
        "fadd",
        "fsub",
        "fmul",
        "icmp",
        "fcmp",
        "getelementptr",
        "select",
        "bitcast",
        "ptrtoint",
        "inttoptr",
        "trunc",
        "zext",
        "sext",
        "sitofp",
        "fptosi",
    }
)


def _is_invariant_operand(value: Value, loop: Loop) -> bool:
    if isinstance(value, Instruction):
        return value.parent is not None and value.parent not in loop.blocks
    return True  # constants, arguments, globals, functions


def _is_hoistable_pure(inst: Instruction, loop: Loop) -> bool:
    if inst.opcode not in _SPECULATABLE_OPS:
        return False
    if isinstance(inst, PhiInst):
        return False
    return all(_is_invariant_operand(op, loop) for op in inst.operands)


def _is_hoistable_load(
    inst: LoadInst, loop: Loop, pdg: ProgramDependenceGraph, domtree: DominatorTree
) -> bool:
    if not _is_invariant_operand(inst.pointer, loop):
        return False
    if pdg.writers_in_loop(loop, inst.pointer, inst.access_size()):
        return False
    # The load must execute on every complete iteration to be hoisted
    # safely (it could fault if speculated); require that its block
    # dominates every latch.
    block = inst.parent
    assert block is not None
    return all(domtree.dominates(block, latch) for latch in loop.latches)


def hoist_loop_invariants(fn: Function) -> int:
    """Run LICM over all loops of ``fn`` (innermost first).  Returns the
    number of instructions hoisted."""
    if fn.is_declaration:
        return 0
    hoisted_total = 0
    # Loop structure changes as preheaders are created, so iterate until
    # no more hoisting happens (bounded by instruction count).
    for _ in range(10):
        domtree = DominatorTree.compute(fn)
        loop_info = LoopInfo.compute(fn, domtree)
        if not loop_info.loops:
            return hoisted_total
        aa = ChainedAliasAnalysis.standard(fn)
        pdg = ProgramDependenceGraph(fn, aa)
        hoisted_this_round = 0
        for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
            hoisted_this_round += _hoist_in_loop(fn, loop, loop_info, pdg, domtree)
        hoisted_total += hoisted_this_round
        if not hoisted_this_round:
            break
    return hoisted_total


def _hoist_in_loop(
    fn: Function,
    loop: Loop,
    loop_info: LoopInfo,
    pdg: ProgramDependenceGraph,
    domtree: DominatorTree,
) -> int:
    candidates: List[Instruction] = []
    for block in loop.blocks:
        for inst in block.instructions:
            if _is_hoistable_pure(inst, loop):
                candidates.append(inst)
            elif isinstance(inst, LoadInst) and _is_hoistable_load(
                inst, loop, pdg, domtree
            ):
                candidates.append(inst)
    if not candidates:
        return 0
    preheader = loop_info.ensure_preheader(loop)
    terminator = preheader.terminator
    assert terminator is not None
    hoisted = 0
    for inst in candidates:
        block = inst.parent
        if block is None:
            continue
        block.remove(inst)
        preheader.insert_before(terminator, inst)
        hoisted += 1
    return hoisted


def run_on_module(module: Module) -> int:
    return sum(hoist_loop_invariants(fn) for fn in module.defined_functions())
