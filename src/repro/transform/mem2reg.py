"""SSA construction: promote memory-only allocas to registers.

The Mini-C frontend lowers every local variable to an ``alloca`` plus
loads/stores (the classic "simple lowering").  This pass promotes allocas
whose address never escapes — only direct loads and stores use them — into
SSA values, inserting phi nodes at dominance frontiers and renaming uses
along the dominator tree (Cytron et al.).

Running mem2reg before the CARAT passes mirrors clang -O2 feeding the
CARAT middle-end: induction variables become phis that SCEV can analyze,
and guard counts reflect real memory traffic rather than frontend
scaffolding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import reachable_blocks
from repro.analysis.dominators import DominatorTree
from repro.ir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import UndefValue, Value


def is_promotable(alloca: AllocaInst) -> bool:
    """An alloca is promotable when it is statically sized with count 1 and
    every use is a direct load or a store *through* it (not of it)."""
    if not alloca.is_static:
        return False
    if alloca.allocated_type.is_aggregate:
        return False
    from repro.ir.values import ConstantInt

    count = alloca.count
    if not isinstance(count, ConstantInt) or count.value != 1:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca:
            continue
        return False
    return True


def promote_memory_to_registers(fn: Function) -> int:
    """Promote all promotable allocas in ``fn``.  Returns the number
    promoted."""
    if fn.is_declaration:
        return 0
    allocas = [
        inst
        for inst in fn.entry.instructions
        if isinstance(inst, AllocaInst) and is_promotable(inst)
    ]
    if not allocas:
        return 0
    domtree = DominatorTree.compute(fn)
    frontier = domtree.dominance_frontier()
    reachable = reachable_blocks(fn)

    # 1. Phi placement per alloca (pruned by def blocks).
    phi_for: Dict[Tuple[int, int], PhiInst] = {}  # (alloca id, block id) -> phi
    phi_alloca: Dict[int, AllocaInst] = {}  # phi id -> alloca
    for alloca in allocas:
        def_blocks: List[BasicBlock] = []
        for use in alloca.uses:
            user = use.user
            if isinstance(user, StoreInst) and user.parent in reachable:
                if user.parent not in def_blocks:
                    def_blocks.append(user.parent)
        worklist = list(def_blocks)
        placed: Set[int] = set()
        while worklist:
            block = worklist.pop()
            for df_block in frontier.get(block, ()):
                if id(df_block) in placed:
                    continue
                placed.add(id(df_block))
                phi = PhiInst(alloca.allocated_type)
                phi.name = fn.unique_name(f"{alloca.name}.phi")
                df_block.insert(0, phi)
                phi_for[(id(alloca), id(df_block))] = phi
                phi_alloca[id(phi)] = alloca
                if df_block not in def_blocks:
                    worklist.append(df_block)

    # 2. Rename along the dominator tree.
    alloca_ids = {id(a) for a in allocas}
    undef_of = {id(a): UndefValue(a.allocated_type) for a in allocas}

    def rename(block: BasicBlock, incoming: Dict[int, Value]) -> None:
        values = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and id(inst) in phi_alloca:
                values[id(phi_alloca[id(inst)])] = inst
                continue
            if isinstance(inst, LoadInst) and id(inst.pointer) in alloca_ids:
                key = id(inst.pointer)
                current = values.get(key, undef_of[key])
                inst.replace_all_uses_with(current)
                inst.erase_from_parent()
                continue
            if (
                isinstance(inst, StoreInst)
                and id(inst.pointer) in alloca_ids
            ):
                values[id(inst.pointer)] = inst.value
                inst.erase_from_parent()
                continue
        for succ in block.successors():
            for phi in succ.phis():
                alloca = phi_alloca.get(id(phi))
                if alloca is None:
                    continue
                value = values.get(id(alloca), undef_of[id(alloca)])
                # One incoming entry per (pred, phi) pair; block may appear
                # multiple times as a pred only via distinct branch targets,
                # which our BranchInst forbids being identical... guard anyway.
                already = any(b is block for _, b in phi.incoming)
                if not already:
                    phi.add_incoming(value, block)
        for child in domtree.children(block):
            rename(child, values)

    # Recursion depth can exceed Python's limit on deep CFGs; use an
    # explicit stack mirroring the recursive structure.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10 * len(fn.blocks) + 1000))
    try:
        rename(fn.entry, {})
    finally:
        sys.setrecursionlimit(old_limit)

    # 3. Remove the dead allocas (and any stores in unreachable blocks).
    promoted = 0
    for alloca in allocas:
        for use in list(alloca.uses):
            user = use.user
            # Remaining users sit in unreachable blocks; drop them.
            if isinstance(user, LoadInst):
                user.replace_all_uses_with(undef_of[id(alloca)])
            if user.parent is not None:
                user.parent.remove(user)
            user.drop_all_operands()
        alloca.erase_from_parent()
        promoted += 1

    # 4. Prune trivial phis (single unique incoming value).
    _simplify_trivial_phis(fn)
    return promoted


def _simplify_trivial_phis(fn: Function) -> None:
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for phi in list(block.phis()):
                incoming_values = [
                    v for v, _ in phi.incoming if v is not phi
                ]
                unique: List[Value] = []
                for v in incoming_values:
                    if all(u is not v for u in unique):
                        unique.append(v)
                if len(unique) == 1:
                    phi.replace_all_uses_with(unique[0])
                    phi.erase_from_parent()
                    changed = True
                elif not unique:
                    # Self-referential or empty phi in unreachable cycle.
                    if phi.num_uses == 0:
                        phi.erase_from_parent()
                        changed = True


def run_on_module(module: Module) -> int:
    total = 0
    for fn in module.defined_functions():
        total += promote_memory_to_registers(fn)
    return total
