"""Kernel-mediated translation for guard-free agents.

A :class:`TranslationClient` is anything that wants to touch physical
memory but carries none of the compiler's guards — a DMA engine, an
accelerator, a smart NIC.  SPARTA's observation is that such agents
must go *through the kernel* for translation; CARAT's analog is the
:class:`AgentMediator`: clients register, ask :meth:`~AgentMediator.
translate` for a **pinned lease** over a range the allocation table
vouches for, and stream it guard-free until they release it.

A lease pins its range against the move protocol from two directions:

* no move may *land* inside a live lease — admission refuses such
  destinations, and the sanitizer's ``dma-pin`` rule flags any that
  sneak past (:mod:`repro.sanitizer.checker`);
* a move whose *source* overlaps a live lease must first drain it at
  the journaled ``quiesce-agents`` step
  (:data:`~repro.resilience.journal.STEP_QUIESCE_AGENTS`).  A client
  that drains gets its lease revoked (journaled, so rollback re-grants
  it); a client that refuses raises :class:`~repro.errors.
  QuiesceFailure`, a *non-transient* fault — the move degrades
  (rollback, destination freed, range quarantined) rather than retry
  against an agent that will never yield.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import KernelError, QuiesceFailure
from repro.resilience.journal import STEP_QUIESCE_AGENTS


@dataclass
class Lease:
    """One pinned translation: ``client`` may touch ``[lo, hi)`` of
    ``pid``'s memory, guard-free, until released or quiesced."""

    client: str
    pid: int
    lo: int
    hi: int
    access: str = "read"
    seq: int = 0
    live: bool = True

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.lo < hi and lo < self.hi

    def describe(self) -> str:
        state = "live" if self.live else "released"
        return (
            f"lease #{self.seq} {self.client!r} pid={self.pid} "
            f"[{self.lo:#x}, {self.hi:#x}) {self.access} ({state})"
        )


class TranslationClient:
    """Base protocol for guard-free memory consumers.

    Subclasses override :meth:`step` (do a bounded slice of work — the
    kernel clock drives it) and :meth:`quiesce` (the move protocol asks
    the client to drain a lease; return False to refuse, which degrades
    the move instead of flipping pages out from under the client).
    """

    name = "client"

    def attach(self, mediator: "AgentMediator") -> None:
        self.mediator = mediator

    def step(self, kernel) -> None:  # pragma: no cover - interface
        pass

    def quiesce(self, lease: Lease) -> bool:
        return True

    def on_regrant(self, lease: Lease) -> None:
        """A quiesced lease came back: the move it blocked rolled back."""


class AgentMediator:
    """The kernel-side broker between translation clients and moves."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.clients: Dict[str, TranslationClient] = {}
        self._leases: List[Lease] = []
        self._next_seq = 0
        #: Quiesce outcomes, newest last: (step-label, lease seq, drained).
        self.quiesce_log: List[str] = []

    # -- registration ------------------------------------------------------

    def register(self, client: TranslationClient) -> TranslationClient:
        if client.name in self.clients:
            raise KernelError(f"client {client.name!r} already registered")
        self.clients[client.name] = client
        client.attach(self)
        return client

    def unregister(self, name: str) -> None:
        client = self.clients.pop(name, None)
        if client is None:
            raise KernelError(f"no client named {name!r}")
        for lease in self.leases_of(name):
            self.release(lease)

    # -- translation -------------------------------------------------------

    def translate(self, client: TranslationClient, process, address: int,
                  size: int, access: str = "read") -> Lease:
        """Validate ``[address, address+size)`` against the allocation
        table and region set, and pin it under a new lease.

        This is the kernel doing for the agent what the compiler's
        guards do for the program: no lease is granted over memory the
        tables do not vouch for."""
        if size <= 0:
            raise KernelError(f"lease of {size} byte(s) is empty")
        if client.name not in self.clients:
            raise KernelError(f"client {client.name!r} is not registered")
        runtime = process.runtime
        if not runtime.regions.check(address, size, access):
            raise KernelError(
                f"lease [{address:#x}, {address + size:#x}) is outside "
                f"every kernel-permitted region of pid {process.pid}"
            )
        containing = runtime.table.find_containing(address, size)
        if containing is None or not containing.live:
            raise KernelError(
                f"lease [{address:#x}, {address + size:#x}) is not backed "
                "by a live tracked allocation"
            )
        lease = Lease(
            client=client.name,
            pid=process.pid,
            lo=address,
            hi=address + size,
            access=access,
            seq=self._next_seq,
        )
        self._next_seq += 1
        self._leases.append(lease)
        return lease

    def release(self, lease: Lease) -> None:
        lease.live = False
        if lease in self._leases:
            self._leases.remove(lease)

    # -- queries -----------------------------------------------------------

    def live_leases(self) -> List[Lease]:
        return [lease for lease in self._leases if lease.live]

    def leases_of(self, client_name: str) -> List[Lease]:
        return [l for l in self.live_leases() if l.client == client_name]

    def leases_overlapping(self, lo: int, hi: int,
                           pid: Optional[int] = None) -> List[Lease]:
        return [
            lease
            for lease in self.live_leases()
            if lease.overlaps(lo, hi) and (pid is None or lease.pid == pid)
        ]

    # -- the clock ---------------------------------------------------------

    def step(self) -> None:
        """One slice of every client's work (driven by
        :meth:`Kernel.advance_clock`)."""
        for client in self.clients.values():
            client.step(self.kernel)

    # -- the quiesce step of the move protocol -----------------------------

    def quiesce_for_move(self, txn, process, lo: int, hi: int) -> int:
        """Drain every live lease overlapping ``[lo, hi)`` before the
        move touches anything irreversible.

        Each drained lease is journaled under ``quiesce-agents`` — the
        undo re-grants it, so a rolled-back move leaves every agent
        exactly as pinned as before.  Emits ``(done, total)`` progress
        after each drain (the torn-fault surface); with nothing to
        drain, a single ``(1, 1)`` "table scanned" hook keeps the step
        observable for the fault campaign.  A client that refuses
        raises :class:`QuiesceFailure` (non-transient: the move
        degrades)."""
        blocking = self.leases_overlapping(lo, hi, pid=process.pid)
        total = len(blocking)
        if total == 0:
            txn.enter(STEP_QUIESCE_AGENTS, (1, 1))
            return 0
        done = 0
        for lease in blocking:
            client = self.clients[lease.client]
            if not client.quiesce(lease):
                self.quiesce_log.append(f"refused: {lease.describe()}")
                raise QuiesceFailure(
                    f"client {lease.client!r} refused to drain "
                    f"{lease.describe()} blocking move of "
                    f"[{lo:#x}, {hi:#x})",
                    client=lease.client,
                    lo=lease.lo,
                    hi=lease.hi,
                )
            self.release(lease)
            self.quiesce_log.append(f"drained: {lease.describe()}")
            txn.journal.record(
                STEP_QUIESCE_AGENTS,
                f"re-grant {lease.describe()}",
                lambda l=lease: self._regrant(l),
            )
            done += 1
            txn.enter(STEP_QUIESCE_AGENTS, (done, total))
        return total

    def _regrant(self, lease: Lease) -> None:
        lease.live = True
        if lease not in self._leases:
            self._leases.append(lease)
        client = self.clients.get(lease.client)
        if client is not None:
            client.on_regrant(lease)

    def describe(self) -> str:
        live = self.live_leases()
        return (
            f"{len(self.clients)} client(s), {len(live)} live lease(s)"
            + (
                ": " + "; ".join(l.describe() for l in live)
                if live
                else ""
            )
        )


class DmaAgent(TranslationClient):
    """A SPARTA-style DMA engine: streams physical memory guard-free.

    Each clock step it either (a) asks the mediator for a lease over
    the next live heap allocation of its target process, round-robin by
    allocation address, or (b) streams up to ``burst`` bytes of its
    current lease straight out of :class:`~repro.kernel.physmem.
    PhysicalMemory` — **no guards, no runtime, no cycle accounting in
    the program's costs** — folding them into a running checksum.  When
    a lease is fully streamed it is released and the next allocation is
    claimed.

    ``uncooperative=True`` builds the adversarial variant: it refuses
    every quiesce request, forcing the move protocol to degrade — the
    test fixture for the quiesce-vs-degradation contract.
    """

    def __init__(self, name: str = "dma0", burst: int = 64,
                 uncooperative: bool = False) -> None:
        self.name = name
        self.burst = burst
        self.uncooperative = uncooperative
        self.process = None
        self.lease: Optional[Lease] = None
        self.cursor = 0
        self.bytes_streamed = 0
        self.checksum = 0
        self.leases_taken = 0
        self.leases_drained = 0
        self.quiesces_refused = 0

    def target(self, process) -> None:
        self.process = process

    # -- TranslationClient -------------------------------------------------

    def step(self, kernel) -> None:
        if self.process is None:
            return
        if self.lease is None or not self.lease.live:
            self._acquire()
            return
        lease = self.lease
        remaining = lease.hi - self.cursor
        if remaining <= 0:
            self.mediator.release(lease)
            self.lease = None
            return
        length = min(self.burst, remaining)
        data = kernel.memory.read_bytes(self.cursor, length)
        for byte in data:
            self.checksum = (self.checksum * 131 + byte) % (1 << 61)
        self.cursor += length
        self.bytes_streamed += length
        if self.cursor >= lease.hi:
            self.mediator.release(lease)
            self.lease = None

    def quiesce(self, lease: Lease) -> bool:
        if self.uncooperative:
            self.quiesces_refused += 1
            return False
        if self.lease is lease:
            self.lease = None
        self.leases_drained += 1
        return True

    def on_regrant(self, lease: Lease) -> None:
        # The move we were drained for rolled back: resume mid-stream.
        if self.lease is None:
            self.lease = lease

    # -- internals ---------------------------------------------------------

    def _acquire(self) -> None:
        runtime = self.process.runtime
        heap = sorted(
            (a for a in runtime.table if a.kind == "heap" and a.live),
            key=lambda a: a.address,
        )
        if not heap:
            return
        # Round-robin: the first heap allocation strictly above the last
        # lease's start, wrapping to the lowest.
        start = self.lease.lo if self.lease is not None else -1
        candidate = next((a for a in heap if a.address > start), heap[0])
        try:
            lease = self.mediator.translate(
                self, self.process, candidate.address, candidate.size
            )
        except KernelError:
            return
        self.lease = lease
        self.cursor = lease.lo
        self.leases_taken += 1
