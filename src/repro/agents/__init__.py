"""Translation clients beyond the guarded interpreter.

CARAT's generality claim is that the allocation table can mediate
translation for *every* consumer of memory, not just compiler-guarded
code.  This package adds the first such consumers: SPARTA-style agents
(accelerators, DMA engines) that stream physical memory with **no
compiler guards at all**, relying on the kernel to hand them pinned
leases and to drain ("quiesce") those leases before any move flips the
page they were streaming.
"""

from repro.agents.mediator import (
    AgentMediator,
    DmaAgent,
    Lease,
    TranslationClient,
)

__all__ = [
    "AgentMediator",
    "DmaAgent",
    "Lease",
    "TranslationClient",
]
