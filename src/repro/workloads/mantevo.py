"""Mantevo HPCCG stand-in: a conjugate-gradient mini-app on a 27-point
stencil sparse matrix.  Regular affine sweeps over a handful of large
arrays — exactly the pattern CARAT's Opt-2 (guard merging) eats for
breakfast and a moderate TLB load under paging."""

from __future__ import annotations

from repro.workloads.suite import Workload, _tier, register


@register("hpccg")
def hpccg(scale: str) -> Workload:
    n = _tier(scale, 64, 256, 1024)
    iters = _tier(scale, 3, 6, 10)
    source = f"""
// HPCCG: CG iterations on an implicit tridiagonal-ish stencil operator.
long N = {n};
long ITERS = {iters};

double dot(double *x, double *y, long n) {{
  double s = 0.0;
  long i;
  for (i = 0; i < n; i++) {{ s = s + x[i] * y[i]; }}
  return s;
}}

void waxpby(double *w, double alpha, double *x, double beta, double *y, long n) {{
  long i;
  for (i = 0; i < n; i++) {{ w[i] = alpha * x[i] + beta * y[i]; }}
}}

void spmv(double *y, double *x, long n) {{
  long i;
  for (i = 0; i < n; i++) {{
    double acc = 4.0 * x[i];
    if (i > 0) {{ acc = acc - x[i - 1]; }}
    if (i < n - 1) {{ acc = acc - x[i + 1]; }}
    y[i] = acc;
  }}
}}

void main() {{
  long n = N;
  double *b = (double*)malloc(sizeof(double) * n);
  double *x = (double*)malloc(sizeof(double) * n);
  double *r = (double*)malloc(sizeof(double) * n);
  double *p = (double*)malloc(sizeof(double) * n);
  double *ap = (double*)malloc(sizeof(double) * n);
  long i;
  for (i = 0; i < n; i++) {{ b[i] = 1.0; x[i] = 0.0; }}
  // r = b - A*x = b ; p = r
  for (i = 0; i < n; i++) {{ r[i] = b[i]; p[i] = r[i]; }}
  double rr = dot(r, r, n);
  long it;
  for (it = 0; it < ITERS; it++) {{
    spmv(ap, p, n);
    double pap = dot(p, ap, n);
    if (pap == 0.0) {{ break; }}
    double alpha = rr / pap;
    waxpby(x, 1.0, x, alpha, p, n);
    waxpby(r, 1.0, r, -alpha, ap, n);
    double rr_new = dot(r, r, n);
    double beta = rr_new / rr;
    waxpby(p, 1.0, r, beta, p, n);
    rr = rr_new;
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + x[i]; }}
  print_long((long)(sum * 1000.0));
  free((char*)b); free((char*)x); free((char*)r);
  free((char*)p); free((char*)ap);
}}
"""
    return Workload(
        name="hpccg",
        suite="mantevo",
        description="conjugate gradient mini-app, stencil SpMV",
        behavior="regular-affine",
        source=source,
    )
