"""Request-serving workloads: the north-star service under traffic.

Every other suite module models a batch HPC kernel that allocates,
computes, and exits.  A *service* behaves differently, and its memory
behaviour is what the soak harness (:mod:`repro.soak`) operates:

* **arena-per-request** — each request mallocs a scratch blob, works in
  it, and retires it a bounded number of requests later (a sliding
  window of live arenas), so the heap churns continuously instead of
  reaching a static footprint;
* **hot key-value working set** — a global value table where ~80% of
  requests hit a small hot subset (zipf-ish 80/20 skew via the seeded
  LCG), giving the heat tracker a stable signal to chase;
* **bursty arrivals** — every ``burst``-th request carries a multiple of
  the normal allocation, so free-space geometry keeps changing and the
  compaction daemon always has fragmentation to repack.

The request loop maintains two observable globals the soak runner reads
from simulated memory: ``completed`` (requests served so far — the
request-latency telemetry probe) and ``checksum`` (the deterministic
output, identical across engines).

:func:`service_source` is the parametric generator — the soak CLI uses
it to build programs with exact request counts (up to millions);
the registered ``kvservice`` / ``kvburst`` workloads are fixed tier
instantiations for the suite.
"""

from __future__ import annotations

from repro.workloads.parsec import _LCG
from repro.workloads.suite import Workload, _tier, register


def service_source(
    requests: int,
    *,
    keys: int = 64,
    hot_keys: int = 8,
    window: int = 24,
    burst: int = 16,
    burst_factor: int = 4,
    blob_base: int = 2,
    blob_spread: int = 5,
    seed: int = 17,
) -> str:
    """One request-serving Mini-C program, fully parameterized.

    ``requests`` requests are served; each picks a key (80% from the
    ``hot_keys`` hot set), allocates a blob of ``blob_base`` +
    rand(``blob_spread``) longs (times ``burst_factor`` on every
    ``burst``-th request), folds it into the key's value, and retains it
    in a linked-list window of ``window`` live arenas before freeing the
    oldest.  Prints the checksum last.
    """
    if requests < 1:
        raise ValueError("a service must serve at least one request")
    return f"""
// request-serving service: hot KV working set, arena-per-request,
// sliding retained window, bursty arrival sizes.
{_LCG}
struct Req {{
  long len;
  long *blob;
  struct Req *next;
}};

long KEYS = {keys};
long HOT = {hot_keys};
long WINDOW = {window};
long BURST = {burst};
long REQUESTS = {requests};

long *values;
struct Req *head;
struct Req *tail;
long live;
long completed;
long checksum;

long serve(long id) {{
  long key;
  if (lcg_next(10) < 8) {{ key = lcg_next(HOT); }}
  else {{ key = lcg_next(KEYS); }}
  long blen = {blob_base} + lcg_next({blob_spread});
  if (id % BURST == 0) {{ blen = blen * {burst_factor}; }}
  long *blob = (long*)malloc(sizeof(long) * blen);
  long acc = values[key];
  long i;
  for (i = 0; i < blen; i++) {{
    blob[i] = acc + i;
    acc = acc + blob[i] % 7;
  }}
  values[key] = acc % 1000003;
  struct Req *node = (struct Req*)malloc(sizeof(struct Req));
  node->len = blen;
  node->blob = blob;
  node->next = null;
  if (tail == null) {{ head = node; }}
  else {{ tail->next = node; }}
  tail = node;
  live = live + 1;
  if (live > WINDOW) {{
    struct Req *old = head;
    head = old->next;
    if (head == null) {{ tail = null; }}
    free((char*)old->blob);
    free((char*)old);
    live = live - 1;
  }}
  checksum = (checksum + acc) % 2147483647;
  completed = completed + 1;
  return acc;
}}

void main() {{
  lcg_state = {seed};
  values = (long*)malloc(sizeof(long) * KEYS);
  long k;
  for (k = 0; k < KEYS; k++) {{ values[k] = k * 31 % 1000003; }}
  head = null;
  tail = null;
  live = 0;
  completed = 0;
  checksum = 0;
  long r;
  for (r = 0; r < REQUESTS; r++) {{ serve(r); }}
  while (head != null) {{
    struct Req *old = head;
    head = old->next;
    free((char*)old->blob);
    free((char*)old);
  }}
  free((char*)values);
  print_long(checksum);
}}
"""


@register("kvservice")
def kvservice(scale: str) -> Workload:
    requests = _tier(scale, 300, 2_000, 10_000)
    source = service_source(requests)
    return Workload(
        name="kvservice",
        suite="service",
        description="hot-KV request server with arena-per-request churn",
        behavior="service-churn",
        source=source,
    )


@register("kvburst")
def kvburst(scale: str) -> Workload:
    requests = _tier(scale, 300, 2_000, 10_000)
    # Shorter burst period, bigger bursts, deeper retained window: the
    # fragmentation-hostile variant.
    source = service_source(
        requests,
        window=48,
        burst=8,
        burst_factor=8,
        blob_spread=9,
        seed=23,
    )
    return Workload(
        name="kvburst",
        suite="service",
        description="bursty request server: deep window, 8x size spikes",
        behavior="service-bursty",
        source=source,
    )
