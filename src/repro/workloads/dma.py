"""DMA-driver workload: a program that computes while agents stream.

SPARTA's scenario is a host program producing buffers an accelerator
consumes asynchronously.  ``dmastream`` is the host side: it fills a
ring of heap buffers with a rolling pattern, repeatedly rewrites them
(so escapes and the allocation table stay busy), and periodically
retires and reallocates one buffer — the churn that makes the kernel
*want* to move pages while :class:`~repro.agents.DmaAgent` instances
hold leases over them.  Run it with ``--agents N`` to get the full
producer/consumer picture; the program itself is agent-oblivious (its
output is identical with agents on or off, which tests assert).
"""

from __future__ import annotations

from repro.workloads.suite import Workload, _tier, register


@register("dmastream")
def dmastream(scale: str) -> Workload:
    buffers = _tier(scale, 4, 8, 12)
    slots = _tier(scale, 64, 256, 1024)
    rounds = _tier(scale, 6, 12, 24)
    source = f"""
// dmastream: refill a ring of DMA-candidate buffers while agents read.
long BUFFERS = {buffers};
long SLOTS = {slots};
long ROUNDS = {rounds};

void fill(long *buf, long n, long salt) {{
  long i;
  for (i = 0; i < n; i++) {{ buf[i] = salt * 1315423911 + i * 2654435761; }}
}}

long fold(long *buf, long n) {{
  long acc = 0;
  long i;
  for (i = 0; i < n; i++) {{ acc = acc + buf[i] * (i + 1); }}
  return acc;
}}

void main() {{
  long **ring = (long**)malloc(sizeof(long*) * BUFFERS);
  long b;
  for (b = 0; b < BUFFERS; b++) {{
    ring[b] = (long*)malloc(sizeof(long) * SLOTS);
    fill(ring[b], SLOTS, b + 1);
  }}
  long total = 0;
  long round;
  for (round = 0; round < ROUNDS; round++) {{
    for (b = 0; b < BUFFERS; b++) {{
      fill(ring[b], SLOTS, round * BUFFERS + b);
      total = total + fold(ring[b], SLOTS);
    }}
    // Retire one buffer per round and mint a fresh one: allocation
    // churn under the agents' feet.
    long victim = round - (round / BUFFERS) * BUFFERS;
    free((char*)ring[victim]);
    ring[victim] = (long*)malloc(sizeof(long) * SLOTS);
    fill(ring[victim], SLOTS, round + 7);
  }}
  for (b = 0; b < BUFFERS; b++) {{ total = total + fold(ring[b], SLOTS); }}
  print_long(total);
  for (b = 0; b < BUFFERS; b++) {{ free((char*)ring[b]); }}
  free((char*)ring);
}}
"""
    return Workload(
        name="dmastream",
        suite="service",
        description="buffer-ring producer for DMA/accelerator agents",
        behavior="streaming-churn",
        source=source,
    )
