"""SPEC2017 stand-ins: deepsjeng, lbm, mcf, nab, namd, omnetpp, x264_s,
xalancbmk, xz.

Behaviour classes reproduced:

* **deepsjeng** — big hash table with random probes (transposition
  table): TLB-hostile random reach.
* **lbm** — streaming sweeps over a large lattice: huge footprint,
  perfectly regular.
* **mcf** — network simplex pointer chasing over arc/node structs: the
  paper's worst DTLB case.
* **nab** — molecular dynamics with one big neighbour structure holding
  *many* pointers into one allocation (the Figure 5 escape outlier).
* **namd** — force loops over fixed particle arrays.
* **omnetpp** — discrete event simulation: a binary-heap event queue with
  constant allocation/free of event objects.
* **xalancbmk** — DOM-ish tree of many small nodes, traversals.
* **xz** — LZ-style match finding over a byte buffer with a hash chain.
"""

from __future__ import annotations

from repro.workloads.suite import Workload, _tier, register

_LCG = """
long lcg_state;
long lcg_next(long bound) {
  lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
  if (lcg_state < 0) { lcg_state = -lcg_state; }
  return lcg_state % bound;
}
"""


@register("deepsjeng")
def deepsjeng(scale: str) -> Workload:
    table = _tier(scale, 1024, 8192, 65536)
    probes = _tier(scale, 400, 2000, 10000)
    source = f"""
// deepsjeng: transposition-table probes — random reach over a big table.
{_LCG}
long TABLE = {table};
long PROBES = {probes};

void main() {{
  long n = TABLE;
  long *keys = (long*)malloc(sizeof(long) * n);
  long *scores = (long*)malloc(sizeof(long) * n);
  lcg_state = 0xbeef;
  long i;
  for (i = 0; i < n; i++) {{ keys[i] = 0; scores[i] = 0; }}
  long hits = 0;
  long p;
  for (p = 0; p < PROBES; p++) {{
    long hash = lcg_next(2147483647);
    long slot = hash % n;
    if (keys[slot] == hash) {{
      hits = hits + scores[slot];
    }} else {{
      keys[slot] = hash;
      scores[slot] = hash % 100;
    }}
  }}
  print_long(hits);
  free((char*)keys); free((char*)scores);
}}
"""
    return Workload(
        name="deepsjeng",
        suite="spec",
        description="hash-table probes with random reach",
        behavior="random-probe",
        source=source,
    )


@register("lbm")
def lbm(scale: str) -> Workload:
    cells = _tier(scale, 1024, 8192, 32768)
    steps = _tier(scale, 2, 3, 5)
    source = f"""
// lbm: lattice streaming — two big buffers, regular sweeps.
long CELLS = {cells};
long STEPS = {steps};

void main() {{
  long n = CELLS;
  double *src = (double*)malloc(sizeof(double) * n);
  double *dst = (double*)malloc(sizeof(double) * n);
  long i;
  for (i = 0; i < n; i++) {{ src[i] = (double)(i % 9) * 0.125; }}
  long s;
  for (s = 0; s < STEPS; s++) {{
    for (i = 1; i < n - 1; i++) {{
      dst[i] = 0.5 * src[i] + 0.25 * src[i - 1] + 0.25 * src[i + 1];
    }}
    dst[0] = src[0];
    dst[n - 1] = src[n - 1];
    double *tmp = src;
    src = dst;
    dst = tmp;
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + src[i]; }}
  print_long((long)(sum * 10.0));
  free((char*)src); free((char*)dst);
}}
"""
    return Workload(
        name="lbm",
        suite="spec",
        description="lattice streaming over large buffers",
        behavior="streaming",
        source=source,
    )


@register("mcf")
def mcf(scale: str) -> Workload:
    nodes = _tier(scale, 96, 384, 1536)
    iters = _tier(scale, 2, 4, 8)
    source = f"""
// mcf: network-simplex flavour — arc/node structs chased by pointer.
{_LCG}
struct Arc {{ long cost; long flow; struct McfNode *head; struct Arc *next; }};
struct McfNode {{ long potential; long depth; struct Arc *first; }};
long NODES = {nodes};
long ITERS = {iters};

void main() {{
  long n = NODES;
  struct McfNode **nodes =
      (struct McfNode**)malloc(sizeof(struct McfNode*) * n);
  lcg_state = 777;
  long i;
  for (i = 0; i < n; i++) {{
    struct McfNode *node = (struct McfNode*)malloc(sizeof(struct McfNode));
    node->potential = lcg_next(1000);
    node->depth = 0;
    node->first = null;
    nodes[i] = node;
  }}
  // 3 arcs per node to random heads.
  for (i = 0; i < n; i++) {{
    long a;
    for (a = 0; a < 3; a++) {{
      struct Arc *arc = (struct Arc*)malloc(sizeof(struct Arc));
      arc->cost = lcg_next(100) + 1;
      arc->flow = 0;
      arc->head = nodes[lcg_next(n)];
      arc->next = nodes[i]->first;
      nodes[i]->first = arc;
    }}
  }}
  long total_reduced = 0;
  long it;
  for (it = 0; it < ITERS; it++) {{
    for (i = 0; i < n; i++) {{
      struct Arc *arc = nodes[i]->first;
      while (arc != null) {{
        long reduced = arc->cost + nodes[i]->potential - arc->head->potential;
        if (reduced < 0) {{
          arc->flow = arc->flow + 1;
          arc->head->potential = arc->head->potential + reduced / 2;
          total_reduced = total_reduced - reduced;
        }}
        arc = arc->next;
      }}
    }}
  }}
  print_long(total_reduced);
}}
"""
    return Workload(
        name="mcf",
        suite="spec",
        description="arc/node pointer chasing (network simplex)",
        behavior="pointer-chase",
        source=source,
    )


@register("nab")
def nab(scale: str) -> Workload:
    atoms = _tier(scale, 48, 128, 512)
    steps = _tier(scale, 2, 3, 5)
    source = f"""
// nab: molecular dynamics — one coordinate block referenced by a big
// neighbour list (many escapes into one allocation: Figure 5's outlier).
{_LCG}
long ATOMS = {atoms};
long STEPS = {steps};

void main() {{
  long n = ATOMS;
  double *coords = (double*)malloc(sizeof(double) * n * 3);
  // The neighbour list stores *pointers into coords* — every entry is an
  // escape of the same single allocation.
  double **neighbors = (double**)malloc(sizeof(double*) * n * 8);
  double *forces = (double*)malloc(sizeof(double) * n * 3);
  lcg_state = 1701;
  long i;
  for (i = 0; i < n * 3; i++) {{
    coords[i] = (double)lcg_next(1000) * 0.01;
    forces[i] = 0.0;
  }}
  for (i = 0; i < n * 8; i++) {{
    neighbors[i] = coords + lcg_next(n) * 3;
  }}
  long s;
  for (s = 0; s < STEPS; s++) {{
    for (i = 0; i < n; i++) {{
      double fx = 0.0;
      long k;
      for (k = 0; k < 8; k++) {{
        double *other = neighbors[i * 8 + k];
        double dx = coords[i * 3] - other[0];
        double r2 = dx * dx + 0.25;
        fx = fx + dx / (r2 * r2);
      }}
      forces[i * 3] = fx;
    }}
    for (i = 0; i < n; i++) {{
      coords[i * 3] = coords[i * 3] + forces[i * 3] * 0.0001;
    }}
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + coords[i * 3]; }}
  print_long((long)(sum * 100.0));
  free((char*)coords); free((char*)neighbors); free((char*)forces);
}}
"""
    return Workload(
        name="nab",
        suite="spec",
        description="MD with a neighbour list of pointers into one block",
        behavior="many-escapes-one-alloc",
        source=source,
    )


@register("namd")
def namd(scale: str) -> Workload:
    particles = _tier(scale, 48, 128, 384)
    steps = _tier(scale, 2, 3, 4)
    source = f"""
// namd: pairwise force loops over fixed particle arrays.
long N = {particles};
long STEPS = {steps};

void main() {{
  long n = N;
  double *x = (double*)malloc(sizeof(double) * n);
  double *y = (double*)malloc(sizeof(double) * n);
  double *fx = (double*)malloc(sizeof(double) * n);
  double *fy = (double*)malloc(sizeof(double) * n);
  long i;
  for (i = 0; i < n; i++) {{
    x[i] = (double)(i % 10);
    y[i] = (double)((i * 3) % 10);
    fx[i] = 0.0; fy[i] = 0.0;
  }}
  long s;
  for (s = 0; s < STEPS; s++) {{
    for (i = 0; i < n; i++) {{
      double ax = 0.0;
      double ay = 0.0;
      long j;
      for (j = 0; j < n; j++) {{
        if (j != i) {{
          double dx = x[i] - x[j];
          double dy = y[i] - y[j];
          double r2 = dx * dx + dy * dy + 0.5;
          double inv = 1.0 / (r2 * sqrt(r2));
          ax = ax + dx * inv;
          ay = ay + dy * inv;
        }}
      }}
      fx[i] = ax;
      fy[i] = ay;
    }}
    for (i = 0; i < n; i++) {{
      x[i] = x[i] + fx[i] * 0.001;
      y[i] = y[i] + fy[i] * 0.001;
    }}
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + x[i] + y[i]; }}
  print_long((long)(sum * 10.0));
  free((char*)x); free((char*)y); free((char*)fx); free((char*)fy);
}}
"""
    return Workload(
        name="namd",
        suite="spec",
        description="pairwise force loops over particle arrays",
        behavior="n-squared-regular",
        source=source,
    )


@register("omnetpp")
def omnetpp(scale: str) -> Workload:
    events = _tier(scale, 200, 800, 3200)
    source = f"""
// omnetpp: discrete-event simulation — binary-heap queue with constant
// event object churn.
{_LCG}
struct Event {{ long time; long kind; }};
long EVENTS = {events};
long HEAP_CAP = 256;
struct Event *heap[256];
long heap_size;

void heap_push(struct Event *e) {{
  long i = heap_size;
  heap[i] = e;
  heap_size = heap_size + 1;
  while (i > 0) {{
    long parent = (i - 1) / 2;
    if (heap[parent]->time <= heap[i]->time) {{ break; }}
    struct Event *tmp = heap[parent];
    heap[parent] = heap[i];
    heap[i] = tmp;
    i = parent;
  }}
}}

struct Event *heap_pop() {{
  struct Event *top = heap[0];
  heap_size = heap_size - 1;
  heap[0] = heap[heap_size];
  long i = 0;
  while (1) {{
    long left = 2 * i + 1;
    long right = 2 * i + 2;
    long smallest = i;
    if (left < heap_size && heap[left]->time < heap[smallest]->time) {{
      smallest = left;
    }}
    if (right < heap_size && heap[right]->time < heap[smallest]->time) {{
      smallest = right;
    }}
    if (smallest == i) {{ break; }}
    struct Event *tmp = heap[i];
    heap[i] = heap[smallest];
    heap[smallest] = tmp;
    i = smallest;
  }}
  return top;
}}

void main() {{
  lcg_state = 60203;
  heap_size = 0;
  long processed = 0;
  long clock = 0;
  long i;
  for (i = 0; i < 16; i++) {{
    struct Event *e = (struct Event*)malloc(sizeof(struct Event));
    e->time = lcg_next(100);
    e->kind = i % 4;
    heap_push(e);
  }}
  while (processed < EVENTS && heap_size > 0) {{
    struct Event *e = heap_pop();
    clock = e->time;
    processed = processed + 1;
    // Each event schedules 0-2 follow-ups.
    long follow = lcg_next(3);
    long f;
    for (f = 0; f < follow && heap_size < HEAP_CAP - 1; f++) {{
      struct Event *next = (struct Event*)malloc(sizeof(struct Event));
      next->time = clock + 1 + lcg_next(50);
      next->kind = (e->kind + f) % 4;
      heap_push(next);
    }}
    free((char*)e);
  }}
  print_long(clock + processed);
}}
"""
    return Workload(
        name="omnetpp",
        suite="spec",
        description="event-queue simulation with object churn",
        behavior="queue-churn",
        source=source,
    )


@register("x264_s")
def x264_s(scale: str) -> Workload:
    from repro.workloads.parsec import x264

    base = x264(scale)
    return Workload(
        name="x264_s",
        suite="spec",
        description=base.description + " (SPEC input)",
        behavior=base.behavior,
        source=base.source.replace("lcg_state = 2024;", "lcg_state = 4202;"),
    )


@register("xalancbmk")
def xalancbmk(scale: str) -> Workload:
    nodes = _tier(scale, 80, 320, 1280)
    source = f"""
// xalancbmk: DOM-style tree of many small nodes plus traversals.
{_LCG}
struct Dom {{
  long tag;
  long value;
  struct Dom *first_child;
  struct Dom *next_sibling;
}};
long NODES = {nodes};
long built;
struct Dom *root;

struct Dom *new_node(long tag) {{
  struct Dom *n = (struct Dom*)malloc(sizeof(struct Dom));
  n->tag = tag;
  n->value = tag * 3 % 17;
  n->first_child = null;
  n->next_sibling = null;
  built = built + 1;
  return n;
}}

void add_child(struct Dom *parent, struct Dom *child) {{
  child->next_sibling = parent->first_child;
  parent->first_child = child;
}}

struct Dom *stack[{nodes + 16}];

long walk(struct Dom *n) {{
  // Iterative traversal with an explicit stack (sibling chains can be
  // long; recursion would overflow the call depth).
  long top = 0;
  long total = 0;
  stack[top] = n;
  top = top + 1;
  while (top > 0) {{
    top = top - 1;
    struct Dom *cur = stack[top];
    while (cur != null) {{
      total = total + cur->value;
      if (cur->first_child != null) {{
        stack[top] = cur->first_child;
        top = top + 1;
      }}
      cur = cur->next_sibling;
    }}
  }}
  return total;
}}

void main() {{
  lcg_state = 11;
  built = 0;
  root = new_node(0);
  // Random insertion: descend a few levels, attach.
  while (built < NODES) {{
    struct Dom *cursor = root;
    long depth = lcg_next(6);
    long d;
    for (d = 0; d < depth; d++) {{
      if (cursor->first_child == null) {{ break; }}
      // Walk a random number of siblings.
      struct Dom *c = cursor->first_child;
      long hops = lcg_next(3);
      while (hops > 0 && c->next_sibling != null) {{
        c = c->next_sibling;
        hops = hops - 1;
      }}
      cursor = c;
    }}
    add_child(cursor, new_node(built));
  }}
  long total = walk(root);
  long pass;
  for (pass = 0; pass < 3; pass++) {{ total = total + walk(root); }}
  print_long(total);
}}
"""
    return Workload(
        name="xalancbmk",
        suite="spec",
        description="DOM tree building and traversal",
        behavior="small-nodes-tree",
        source=source,
    )


@register("xz")
def xz(scale: str) -> Workload:
    size = _tier(scale, 1024, 4096, 16384)
    source = f"""
// xz: LZ-style match finding over a buffer with a hash-head table.
{_LCG}
long SIZE = {size};
long HASH = 256;

void main() {{
  long n = SIZE;
  char *buf = (char*)malloc(n);
  long *head = (long*)malloc(sizeof(long) * HASH);
  long *prev = (long*)malloc(sizeof(long) * n);
  lcg_state = 424242;
  long i;
  for (i = 0; i < n; i++) {{
    // Compressible-ish data: runs plus noise.
    if (lcg_next(4) == 0) {{ buf[i] = (char)lcg_next(64); }}
    else {{ buf[i] = (char)((i / 7) % 64); }}
  }}
  for (i = 0; i < HASH; i++) {{ head[i] = -1; }}
  long matched = 0;
  for (i = 0; i + 3 < n; i++) {{
    long h = ((long)buf[i] * 31 + (long)buf[i + 1] * 7 + (long)buf[i + 2]) % HASH;
    if (h < 0) {{ h = -h; }}
    long candidate = head[h];
    long chain = 0;
    long best = 0;
    while (candidate >= 0 && chain < 8) {{
      long len = 0;
      while (i + len < n && len < 32 &&
             buf[candidate + len] == buf[i + len]) {{
        len = len + 1;
      }}
      if (len > best) {{ best = len; }}
      candidate = prev[candidate];
      chain = chain + 1;
    }}
    matched = matched + best;
    prev[i] = head[h];
    head[h] = i;
  }}
  print_long(matched);
  free((char*)buf); free((char*)head); free((char*)prev);
}}
"""
    return Workload(
        name="xz",
        suite="spec",
        description="LZ match finding with hash chains",
        behavior="window-scan",
        source=source,
    )
