"""Workload registry.

Each workload is a Mini-C program modelled on one benchmark from the
paper's suite (Section 3: Mantevo HPCCG; NAS CG/EP/FT/LU; PARSEC
blackscholes, bodytrack, canneal, fluidanimate, freqmine, streamcluster,
swaptions, x264; SPEC2017 deepsjeng, lbm, mcf, nab, namd, omnetpp,
xalancbmk, xz).  The programs are scaled down ~10^3-10^4 from the
originals but reproduce the *class* of memory behaviour each one is
known for — that behaviour class, not the computation, is what every
experiment measures.

``scale`` selects the footprint/iteration tier:

* ``tiny``  — unit tests; tens of thousands of interpreted instructions
* ``small`` — benchmark harness default; a few hundred thousand
* ``medium`` — heavier runs for the figure-level experiments
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str  # 'mantevo' | 'nas' | 'parsec' | 'spec'
    description: str
    #: The memory-behaviour class the original is known for; experiments
    #: key expectations off this.
    behavior: str
    source: str
    #: The value main() prints last, when deterministic (checked by tests).
    checksum: Optional[int] = None


_GENERATORS: Dict[str, Callable[[str], Workload]] = {}


def register(name: str):
    def wrap(fn: Callable[[str], Workload]) -> Callable[[str], Workload]:
        _GENERATORS[name] = fn
        return fn

    return wrap


def get_workload(name: str, scale: str = "small") -> Workload:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {SCALES}")
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_GENERATORS)}"
        )
    return generator(scale)


def workload_names() -> List[str]:
    return sorted(_GENERATORS)


def all_workloads(scale: str = "small") -> List[Workload]:
    return [get_workload(name, scale) for name in workload_names()]


def _tier(scale: str, tiny: int, small: int, medium: int) -> int:
    return {"tiny": tiny, "small": small, "medium": medium}[scale]


# Import the suite modules for their registration side effects.
def _load_all() -> None:
    from repro.workloads import dma, mantevo, nas, parsec, service, spec  # noqa: F401


_load_all()
