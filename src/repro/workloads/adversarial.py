"""Adversarial memory-safety workloads — deliberately NOT registered.

Each program here contains exactly one planted memory-safety bug that
CARAT's ordinary guards *cannot* see: every access stays inside a
kernel-permitted region (the heap region covers freed blocks and free
space alike), so without ``--safety`` these programs run to completion
with deterministic output.  With safety on, the allocation-table
liveness check behind the guard catches the planted access and raises
:class:`~repro.errors.SafetyFault` — the detection matrix tests assert
100% of them fire, on all three engines.

They are kept out of the ``register()`` registry on purpose: the
full-suite zero-false-positive sweep, the benchmark harness, and the
``bench``/``sanitize`` CLIs iterate registered workloads and must never
see a program whose *point* is to contain a bug.  Use
:func:`adversarial_workload` / :func:`adversarial_names`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.suite import SCALES, Workload, _tier

_ADVERSARIAL: Dict[str, Callable[[str], Workload]] = {}


def _adversarial(name: str):
    def wrap(fn: Callable[[str], Workload]) -> Callable[[str], Workload]:
        _ADVERSARIAL[name] = fn
        return fn

    return wrap


def adversarial_names() -> List[str]:
    return sorted(_ADVERSARIAL)


def adversarial_workload(name: str, scale: str = "tiny") -> Workload:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {SCALES}")
    try:
        generator = _ADVERSARIAL[name]
    except KeyError:
        raise KeyError(
            f"unknown adversarial workload {name!r}; "
            f"available: {adversarial_names()}"
        )
    return generator(scale)


#: name -> the SafetyViolation ``kind`` the planted bug must produce.
EXPECTED_KINDS = {
    "uafread": "use-after-free",
    "uafwrite": "use-after-free",
    "oobread": "out-of-bounds",
    "oobwrite": "out-of-bounds",
}


@_adversarial("uafread")
def uafread(scale: str) -> Workload:
    n = _tier(scale, 64, 256, 1024)
    source = f"""
// uafread: dangling-pointer load from a freed heap block.
long N = {n};

void main() {{
  long *p = (long*)malloc(sizeof(long) * N);
  long i;
  for (i = 0; i < N; i++) {{ p[i] = i * 3 + 1; }}
  long before = p[N / 2];
  free((char*)p);
  long after = p[N / 2];  // the planted bug: p is dead
  print_long(before + after);
}}
"""
    return Workload(
        name="uafread",
        suite="adversarial",
        description="load through a dangling heap pointer",
        behavior="use-after-free",
        source=source,
    )


@_adversarial("uafwrite")
def uafwrite(scale: str) -> Workload:
    n = _tier(scale, 64, 256, 1024)
    source = f"""
// uafwrite: dangling-pointer store into a freed heap block.
long N = {n};

void main() {{
  long *p = (long*)malloc(sizeof(long) * N);
  long i;
  for (i = 0; i < N; i++) {{ p[i] = i + 11; }}
  long keep = p[1];
  free((char*)p);
  p[1] = 999;  // the planted bug: store through a dead pointer
  print_long(keep + p[1]);
}}
"""
    return Workload(
        name="uafwrite",
        suite="adversarial",
        description="store through a dangling heap pointer",
        behavior="use-after-free",
        source=source,
    )


@_adversarial("oobread")
def oobread(scale: str) -> Workload:
    n = _tier(scale, 64, 256, 1024)
    source = f"""
// oobread: wild index far past a live buffer, into free heap space
// (region-legal, so only liveness can catch it).
long N = {n};

void main() {{
  long *a = (long*)malloc(sizeof(long) * N);
  long i;
  long acc = 0;
  for (i = 0; i < N; i++) {{ a[i] = i * 7 + 3; acc = acc + a[i]; }}
  long wild = a[N + 512];  // the planted bug: nobody owns those bytes
  print_long(acc + wild);
  free((char*)a);
}}
"""
    return Workload(
        name="oobread",
        suite="adversarial",
        description="load from free heap space past a live buffer",
        behavior="out-of-bounds",
        source=source,
    )


@_adversarial("oobwrite")
def oobwrite(scale: str) -> Workload:
    n = _tier(scale, 64, 256, 1024)
    source = f"""
// oobwrite: wild store past a live buffer, into free heap space.
long N = {n};

void main() {{
  long *a = (long*)malloc(sizeof(long) * N);
  long i;
  long acc = 0;
  for (i = 0; i < N; i++) {{ a[i] = i * 5 + 2; acc = acc + a[i]; }}
  a[N + 512] = 777;  // the planted bug: store to unowned heap space
  print_long(acc);
  free((char*)a);
}}
"""
    return Workload(
        name="oobwrite",
        suite="adversarial",
        description="store to free heap space past a live buffer",
        behavior="out-of-bounds",
        source=source,
    )
