"""NAS Parallel Benchmark stand-ins: CG, EP, FT, LU.

Each reproduces the class of behaviour the original is known for:

* **CG** — sparse matvec with an indirection vector (``a[col[j]]``
  gathers): irregular reach, real TLB pressure.
* **EP** — random-number crunching with an almost empty data footprint:
  the low end of every memory metric.
* **FT** — large *global* arrays (bss LOAD sections): the static
  footprint ≈ total allocations case Table 2 calls out as pre-allocatable.
* **LU** — blocked dense factorization sweeps over a global matrix.
"""

from __future__ import annotations

from repro.workloads.suite import Workload, _tier, register

_LCG = """
long lcg_state;
long lcg_next(long bound) {
  lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
  if (lcg_state < 0) { lcg_state = -lcg_state; }
  return lcg_state % bound;
}
"""


@register("cg")
def cg(scale: str) -> Workload:
    n = _tier(scale, 48, 192, 768)
    nnz_per_row = 8
    iters = _tier(scale, 2, 4, 8)
    source = f"""
// NAS CG: sparse matvec with column-index gathers.
{_LCG}
long N = {n};
long NNZ = {nnz_per_row};
long ITERS = {iters};

void main() {{
  long n = N;
  long nnz = n * NNZ;
  double *vals = (double*)malloc(sizeof(double) * nnz);
  long *cols = (long*)malloc(sizeof(long) * nnz);
  double *x = (double*)malloc(sizeof(double) * n);
  double *y = (double*)malloc(sizeof(double) * n);
  lcg_state = 42;
  long i;
  for (i = 0; i < nnz; i++) {{
    vals[i] = 1.0 / (1.0 + (double)(i % 13));
    cols[i] = lcg_next(n);
  }}
  for (i = 0; i < n; i++) {{ x[i] = 1.0; }}
  long it;
  for (it = 0; it < ITERS; it++) {{
    long row;
    for (row = 0; row < n; row++) {{
      double acc = 0.0;
      long j;
      for (j = row * NNZ; j < (row + 1) * NNZ; j++) {{
        acc = acc + vals[j] * x[cols[j]];
      }}
      y[row] = acc;
    }}
    double norm = 0.0;
    for (i = 0; i < n; i++) {{ norm = norm + y[i] * y[i]; }}
    if (norm > 0.0) {{
      double inv = 1.0 / sqrt(norm);
      for (i = 0; i < n; i++) {{ x[i] = y[i] * inv; }}
    }}
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + x[i]; }}
  print_long((long)(sum * 1000.0));
  free((char*)vals); free((char*)cols); free((char*)x); free((char*)y);
}}
"""
    return Workload(
        name="cg",
        suite="nas",
        description="sparse matvec with random column gathers",
        behavior="irregular-gather",
        source=source,
    )


@register("ep")
def ep(scale: str) -> Workload:
    pairs = _tier(scale, 400, 2000, 10000)
    source = f"""
// NAS EP: embarrassingly parallel random pairs; tiny data footprint.
{_LCG}
long PAIRS = {pairs};
long counts[10];

void main() {{
  lcg_state = 271828;
  long accepted = 0;
  long i;
  for (i = 0; i < PAIRS; i++) {{
    double u = (double)lcg_next(1000000) / 1000000.0;
    double v = (double)lcg_next(1000000) / 1000000.0;
    double x = 2.0 * u - 1.0;
    double y = 2.0 * v - 1.0;
    double t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {{
      accepted = accepted + 1;
      double m = sqrt(-2.0 * log(t) / t);
      double gx = fabs(x * m);
      long bin = (long)gx;
      if (bin > 9) {{ bin = 9; }}
      counts[bin] = counts[bin] + 1;
    }}
  }}
  long total = accepted;
  for (i = 0; i < 10; i++) {{ total = total + counts[i]; }}
  print_long(total);
}}
"""
    return Workload(
        name="ep",
        suite="nas",
        description="random-number kernel with near-zero footprint",
        behavior="compute-bound",
        source=source,
    )


@register("ft")
def ft(scale: str) -> Workload:
    n = _tier(scale, 512, 4096, 16384)
    passes = _tier(scale, 2, 3, 4)
    source = f"""
// NAS FT: large global (bss) arrays — static footprint == allocations.
long N = {n};
long PASSES = {passes};
double re[{n}];
double im[{n}];
double scratch[{n}];

void main() {{
  long n = N;
  long i;
  for (i = 0; i < n; i++) {{
    re[i] = (double)(i % 17) * 0.25;
    im[i] = (double)(i % 5) * 0.5;
  }}
  long p;
  for (p = 0; p < PASSES; p++) {{
    // Butterfly-ish pass with stride halving (bit-reversal flavour).
    long stride = n / 2;
    while (stride >= 1) {{
      for (i = 0; i + stride < n; i = i + 2 * stride) {{
        double a = re[i];
        double b = re[i + stride];
        scratch[i] = a + b;
        scratch[i + stride] = a - b;
      }}
      for (i = 0; i < n; i++) {{ re[i] = scratch[i]; }}
      stride = stride / 2;
    }}
    for (i = 0; i < n; i++) {{ im[i] = im[i] + re[i] * 0.001; }}
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + im[i]; }}
  print_long((long)sum);
}}
"""
    return Workload(
        name="ft",
        suite="nas",
        description="FFT-style passes over large global arrays",
        behavior="large-static",
        source=source,
    )


@register("lu")
def lu(scale: str) -> Workload:
    n = _tier(scale, 16, 32, 64)
    source = f"""
// NAS LU: dense factorization over a global matrix (row-major 1D).
long N = {n};
double a[{n * n}];

void main() {{
  long n = N;
  long i;
  long j;
  long k;
  for (i = 0; i < n; i++) {{
    for (j = 0; j < n; j++) {{
      a[i * n + j] = (double)((i * 7 + j * 3) % 11) + 1.0;
      if (i == j) {{ a[i * n + j] = a[i * n + j] + (double)n; }}
    }}
  }}
  for (k = 0; k < n - 1; k++) {{
    double pivot = a[k * n + k];
    for (i = k + 1; i < n; i++) {{
      double m = a[i * n + k] / pivot;
      a[i * n + k] = m;
      for (j = k + 1; j < n; j++) {{
        a[i * n + j] = a[i * n + j] - m * a[k * n + j];
      }}
    }}
  }}
  double trace = 0.0;
  for (i = 0; i < n; i++) {{ trace = trace + a[i * n + i]; }}
  print_long((long)(trace * 100.0));
}}
"""
    return Workload(
        name="lu",
        suite="nas",
        description="dense LU factorization sweeps over a global matrix",
        behavior="blocked-dense",
        source=source,
    )
