"""The benchmark workload suite (Mini-C stand-ins for the paper's
Mantevo / NAS / PARSEC / SPEC2017 selection, plus the request-serving
service family the soak harness operates)."""

from repro.workloads.suite import (
    SCALES,
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)


def service_source(requests: int, **knobs) -> str:
    """Parametric request-serving program (lazy import so suite listing
    stays cheap); see :func:`repro.workloads.service.service_source`."""
    from repro.workloads.service import service_source as generate

    return generate(requests, **knobs)


__all__ = [
    "SCALES",
    "Workload",
    "all_workloads",
    "get_workload",
    "service_source",
    "workload_names",
]
