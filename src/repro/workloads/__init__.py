"""The benchmark workload suite (Mini-C stand-ins for the paper's
Mantevo / NAS / PARSEC / SPEC2017 selection)."""

from repro.workloads.suite import (
    SCALES,
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = ["SCALES", "Workload", "all_workloads", "get_workload", "workload_names"]
