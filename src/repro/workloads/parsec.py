"""PARSEC stand-ins: blackscholes, bodytrack, canneal, fluidanimate,
freqmine, streamcluster, swaptions, x264.

Behaviour classes reproduced:

* **blackscholes** — independent option pricing over parallel arrays,
  transcendental-heavy, perfectly affine.
* **bodytrack** — medium arrays with a particle-filter-ish weighted
  resampling (mixed regular/indirect).
* **canneal** — pointer-chasing over a randomized element graph with
  random swaps: the TLB-hostile one.
* **fluidanimate** — grid cells with neighbour access.
* **freqmine** — FP-tree building: many small linked allocations, lots of
  escapes.
* **streamcluster** — many escapes from few allocations, all created
  early (the paper singles this profile out in Figures 5-7).
* **swaptions** — many short-lived allocations per iteration (the memory
  tracking outlier of Figure 6).
* **x264** — strided sweeps over frame buffers with a motion-search
  window.
"""

from __future__ import annotations

from repro.workloads.suite import Workload, _tier, register

_LCG = """
long lcg_state;
long lcg_next(long bound) {
  lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
  if (lcg_state < 0) { lcg_state = -lcg_state; }
  return lcg_state % bound;
}
"""


@register("blackscholes")
def blackscholes(scale: str) -> Workload:
    n = _tier(scale, 100, 500, 2500)
    source = f"""
// blackscholes: independent option pricing over parallel arrays.
long N = {n};

double cndf(double x) {{
  double ax = fabs(x);
  double k = 1.0 / (1.0 + 0.2316419 * ax);
  double poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
      + k * (-1.821255978 + k * 1.330274429))));
  double w = 1.0 - 0.39894228 * exp(-0.5 * ax * ax) * poly;
  if (x < 0.0) {{ return 1.0 - w; }}
  return w;
}}

void main() {{
  long n = N;
  double *spot = (double*)malloc(sizeof(double) * n);
  double *strike = (double*)malloc(sizeof(double) * n);
  double *rate = (double*)malloc(sizeof(double) * n);
  double *vol = (double*)malloc(sizeof(double) * n);
  double *time = (double*)malloc(sizeof(double) * n);
  double *price = (double*)malloc(sizeof(double) * n);
  long i;
  for (i = 0; i < n; i++) {{
    spot[i] = 90.0 + (double)(i % 21);
    strike[i] = 100.0;
    rate[i] = 0.02 + 0.0001 * (double)(i % 7);
    vol[i] = 0.2 + 0.001 * (double)(i % 11);
    time[i] = 0.5 + 0.01 * (double)(i % 13);
  }}
  for (i = 0; i < n; i++) {{
    double s = spot[i];
    double k = strike[i];
    double r = rate[i];
    double v = vol[i];
    double t = time[i];
    double sq = v * sqrt(t);
    double d1 = (log(s / k) + (r + 0.5 * v * v) * t) / sq;
    double d2 = d1 - sq;
    price[i] = s * cndf(d1) - k * exp(-r * t) * cndf(d2);
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + price[i]; }}
  print_long((long)(sum * 100.0));
  free((char*)spot); free((char*)strike); free((char*)rate);
  free((char*)vol); free((char*)time); free((char*)price);
}}
"""
    return Workload(
        name="blackscholes",
        suite="parsec",
        description="option pricing over parallel arrays",
        behavior="regular-affine",
        source=source,
    )


@register("bodytrack")
def bodytrack(scale: str) -> Workload:
    particles = _tier(scale, 64, 256, 1024)
    frames = _tier(scale, 3, 6, 12)
    source = f"""
// bodytrack: particle filter — weight, normalize, resample by index.
{_LCG}
long PARTICLES = {particles};
long FRAMES = {frames};

void main() {{
  long n = PARTICLES;
  double *state = (double*)malloc(sizeof(double) * n);
  double *weight = (double*)malloc(sizeof(double) * n);
  long *pick = (long*)malloc(sizeof(long) * n);
  double *next = (double*)malloc(sizeof(double) * n);
  lcg_state = 7;
  long i;
  for (i = 0; i < n; i++) {{ state[i] = (double)lcg_next(100) * 0.01; }}
  long f;
  for (f = 0; f < FRAMES; f++) {{
    double target = 0.5 + 0.1 * (double)(f % 3);
    double total = 0.0;
    for (i = 0; i < n; i++) {{
      double d = state[i] - target;
      weight[i] = exp(-4.0 * d * d);
      total = total + weight[i];
    }}
    // Systematic resampling by cumulative weight.
    double step = total / (double)n;
    double cursor = step * 0.5;
    double acc = 0.0;
    long j = 0;
    for (i = 0; i < n; i++) {{
      acc = acc + weight[i];
      while (j < n && cursor <= acc) {{
        pick[j] = i;
        cursor = cursor + step;
        j = j + 1;
      }}
    }}
    while (j < n) {{ pick[j] = n - 1; j = j + 1; }}
    for (i = 0; i < n; i++) {{
      double jitter = ((double)lcg_next(100) - 50.0) * 0.001;
      next[i] = state[pick[i]] + jitter;
    }}
    for (i = 0; i < n; i++) {{ state[i] = next[i]; }}
  }}
  double sum = 0.0;
  for (i = 0; i < n; i++) {{ sum = sum + state[i]; }}
  print_long((long)(sum * 1000.0));
  free((char*)state); free((char*)weight); free((char*)pick); free((char*)next);
}}
"""
    return Workload(
        name="bodytrack",
        suite="parsec",
        description="particle filter with indexed resampling",
        behavior="mixed",
        source=source,
    )


@register("canneal")
def canneal(scale: str) -> Workload:
    elements = _tier(scale, 128, 512, 2048)
    swaps = _tier(scale, 200, 1000, 5000)
    source = f"""
// canneal: simulated annealing over a randomized element graph —
// pointer chasing plus random swaps.
{_LCG}
struct Element {{ long location; struct Element *a; struct Element *b; }};
long N = {elements};
long SWAPS = {swaps};

void main() {{
  long n = N;
  struct Element **elems =
      (struct Element**)malloc(sizeof(struct Element*) * n);
  lcg_state = 1234;
  long i;
  for (i = 0; i < n; i++) {{
    struct Element *e = (struct Element*)malloc(sizeof(struct Element));
    e->location = i;
    e->a = null;
    e->b = null;
    elems[i] = e;
  }}
  for (i = 0; i < n; i++) {{
    elems[i]->a = elems[lcg_next(n)];
    elems[i]->b = elems[lcg_next(n)];
  }}
  long cost = 0;
  long s;
  for (s = 0; s < SWAPS; s++) {{
    long x = lcg_next(n);
    long y = lcg_next(n);
    struct Element *ex = elems[x];
    struct Element *ey = elems[y];
    long before = 0;
    before = before + (ex->location - ex->a->location);
    before = before + (ey->location - ey->b->location);
    long tmp = ex->location;
    ex->location = ey->location;
    ey->location = tmp;
    long after = 0;
    after = after + (ex->location - ex->a->location);
    after = after + (ey->location - ey->b->location);
    if (after * after > before * before) {{
      // reject: swap back
      tmp = ex->location;
      ex->location = ey->location;
      ey->location = tmp;
    }} else {{
      cost = cost + 1;
    }}
  }}
  print_long(cost);
  for (i = 0; i < n; i++) {{ free((char*)elems[i]); }}
  free((char*)elems);
}}
"""
    return Workload(
        name="canneal",
        suite="parsec",
        description="annealing swaps over a randomized pointer graph",
        behavior="pointer-chase",
        source=source,
    )


@register("fluidanimate")
def fluidanimate(scale: str) -> Workload:
    grid = _tier(scale, 8, 16, 32)
    steps = _tier(scale, 2, 4, 8)
    source = f"""
// fluidanimate: grid cells exchanging with 4-neighbourhood.
long G = {grid};
long STEPS = {steps};

void main() {{
  long g = G;
  long cells = g * g;
  double *density = (double*)malloc(sizeof(double) * cells);
  double *next = (double*)malloc(sizeof(double) * cells);
  long i;
  for (i = 0; i < cells; i++) {{ density[i] = (double)((i * 13) % 7); }}
  long s;
  for (s = 0; s < STEPS; s++) {{
    long x;
    long y;
    for (y = 0; y < g; y++) {{
      for (x = 0; x < g; x++) {{
        long idx = y * g + x;
        double acc = density[idx] * 4.0;
        if (x > 0) {{ acc = acc + density[idx - 1]; }}
        if (x < g - 1) {{ acc = acc + density[idx + 1]; }}
        if (y > 0) {{ acc = acc + density[idx - g]; }}
        if (y < g - 1) {{ acc = acc + density[idx + g]; }}
        next[idx] = acc * 0.125;
      }}
    }}
    for (i = 0; i < cells; i++) {{ density[i] = next[i]; }}
  }}
  double sum = 0.0;
  for (i = 0; i < cells; i++) {{ sum = sum + density[i]; }}
  print_long((long)(sum * 10.0));
  free((char*)density); free((char*)next);
}}
"""
    return Workload(
        name="fluidanimate",
        suite="parsec",
        description="grid stencil with neighbour exchange",
        behavior="stencil",
        source=source,
    )


@register("freqmine")
def freqmine(scale: str) -> Workload:
    transactions = _tier(scale, 60, 240, 960)
    items = 16
    source = f"""
// freqmine: FP-tree construction — many small linked allocations.
{_LCG}
struct TreeNode {{
  long item;
  long count;
  struct TreeNode *child;
  struct TreeNode *sibling;
}};
long TRANSACTIONS = {transactions};
long ITEMS = {items};
struct TreeNode *root;

struct TreeNode *find_child(struct TreeNode *node, long item) {{
  struct TreeNode *c = node->child;
  while (c != null) {{
    if (c->item == item) {{ return c; }}
    c = c->sibling;
  }}
  return null;
}}

struct TreeNode *add_child(struct TreeNode *node, long item) {{
  struct TreeNode *c = (struct TreeNode*)malloc(sizeof(struct TreeNode));
  c->item = item;
  c->count = 0;
  c->child = null;
  c->sibling = node->child;
  node->child = c;
  return c;
}}

long count_nodes(struct TreeNode *node) {{
  if (node == null) {{ return 0; }}
  return 1 + count_nodes(node->child) + count_nodes(node->sibling);
}}

void main() {{
  lcg_state = 99;
  root = (struct TreeNode*)malloc(sizeof(struct TreeNode));
  root->item = -1;
  root->count = 0;
  root->child = null;
  root->sibling = null;
  long t;
  for (t = 0; t < TRANSACTIONS; t++) {{
    struct TreeNode *cursor = root;
    long depth = 2 + lcg_next(5);
    long d;
    long item = lcg_next(ITEMS);
    for (d = 0; d < depth; d++) {{
      struct TreeNode *child = find_child(cursor, item);
      if (child == null) {{ child = add_child(cursor, item); }}
      child->count = child->count + 1;
      cursor = child;
      item = (item + 1 + lcg_next(3)) % ITEMS;
    }}
  }}
  print_long(count_nodes(root));
}}
"""
    return Workload(
        name="freqmine",
        suite="parsec",
        description="FP-tree building: small linked allocations, escapes",
        behavior="allocation-heavy",
        source=source,
    )


@register("streamcluster")
def streamcluster(scale: str) -> Workload:
    points = _tier(scale, 64, 256, 1024)
    dims = 4
    rounds = _tier(scale, 2, 4, 8)
    source = f"""
// streamcluster: k-median style — a table of pointers to point blocks
// built once up front (many escapes early, then none), then distance
// computation rounds.
{_LCG}
long POINTS = {points};
long DIMS = {dims};
long ROUNDS = {rounds};

void main() {{
  long n = POINTS;
  // One block per point, all escaping into the index table immediately.
  double **index = (double**)malloc(sizeof(double*) * n);
  lcg_state = 5;
  long i;
  long d;
  for (i = 0; i < n; i++) {{
    double *pt = (double*)malloc(sizeof(double) * DIMS);
    for (d = 0; d < DIMS; d++) {{ pt[d] = (double)lcg_next(100) * 0.01; }}
    index[i] = pt;
  }}
  long assign_sum = 0;
  long r;
  for (r = 0; r < ROUNDS; r++) {{
    long centers = 4 + r;
    for (i = 0; i < n; i++) {{
      double best = 1000000.0;
      long best_c = 0;
      long c;
      for (c = 0; c < centers; c++) {{
        double *a = index[i];
        double *b = index[(c * 17) % n];
        double dist = 0.0;
        for (d = 0; d < DIMS; d++) {{
          double diff = a[d] - b[d];
          dist = dist + diff * diff;
        }}
        if (dist < best) {{ best = dist; best_c = c; }}
      }}
      assign_sum = assign_sum + best_c;
    }}
  }}
  print_long(assign_sum);
  for (i = 0; i < n; i++) {{ free((char*)index[i]); }}
  free((char*)index);
}}
"""
    return Workload(
        name="streamcluster",
        suite="parsec",
        description="early escape burst then stable distance rounds",
        behavior="early-escapes",
        source=source,
    )


@register("swaptions")
def swaptions(scale: str) -> Workload:
    swaptions_count = _tier(scale, 20, 80, 320)
    paths = _tier(scale, 8, 16, 32)
    total_paths = swaptions_count * paths
    source = f"""
// swaptions: Monte-Carlo per swaption with a fresh scratch buffer per
// path, all kept live until the end (as the original's per-trial results
// are) — the tracking-footprint outlier of Figure 6.
{_LCG}
long COUNT = {swaptions_count};
long PATHS = {paths};
double *scratch[{total_paths}];
long scratch_used;

void main() {{
  lcg_state = 31337;
  scratch_used = 0;
  double total = 0.0;
  long s;
  for (s = 0; s < COUNT; s++) {{
    double acc = 0.0;
    long p;
    for (p = 0; p < PATHS; p++) {{
      // One small live buffer per path: the table must track them all.
      double *fwd = (double*)malloc(sizeof(double) * 4);
      long i;
      double rate = 0.02 + 0.0005 * (double)(s % 9);
      double payoff = 0.0;
      for (i = 0; i < 4; i++) {{
        rate = rate + ((double)lcg_next(100) - 50.0) * 0.00001;
        fwd[i] = rate;
        payoff = payoff + rate * exp(-rate * (double)(i + 1) * 0.25);
      }}
      scratch[scratch_used] = fwd;
      scratch_used = scratch_used + 1;
      acc = acc + payoff;
    }}
    total = total + acc / (double)PATHS;
  }}
  long k;
  for (k = 0; k < scratch_used; k++) {{ free((char*)scratch[k]); }}
  print_long((long)(total * 1000.0));
}}
"""
    return Workload(
        name="swaptions",
        suite="parsec",
        description="Monte-Carlo with per-path allocation churn",
        behavior="allocation-churn",
        source=source,
    )


@register("x264")
def x264(scale: str) -> Workload:
    width = _tier(scale, 32, 64, 128)
    frames = _tier(scale, 2, 4, 8)
    source = f"""
// x264: frame-buffer sweeps with a small motion-search window.
{_LCG}
long W = {width};
long FRAMES = {frames};

void main() {{
  long w = W;
  long pixels = w * w;
  long *current = (long*)malloc(sizeof(long) * pixels);
  long *reference = (long*)malloc(sizeof(long) * pixels);
  lcg_state = 2024;
  long i;
  for (i = 0; i < pixels; i++) {{ reference[i] = lcg_next(256); }}
  long sad_total = 0;
  long f;
  for (f = 0; f < FRAMES; f++) {{
    for (i = 0; i < pixels; i++) {{
      current[i] = (reference[i] + lcg_next(16) - 8) % 256;
    }}
    // 4x4 block motion search in a +-2 window.
    long by;
    long bx;
    for (by = 2; by + 6 < w; by = by + 4) {{
      for (bx = 2; bx + 6 < w; bx = bx + 4) {{
        long best = 1000000;
        long dy;
        for (dy = -2; dy <= 2; dy = dy + 2) {{
          long dx;
          for (dx = -2; dx <= 2; dx = dx + 2) {{
            long sad = 0;
            long y;
            for (y = 0; y < 4; y++) {{
              long x;
              for (x = 0; x < 4; x++) {{
                long cur = current[(by + y) * w + bx + x];
                long ref = reference[(by + y + dy) * w + bx + x + dx];
                long diff = cur - ref;
                if (diff < 0) {{ diff = -diff; }}
                sad = sad + diff;
              }}
            }}
            if (sad < best) {{ best = sad; }}
          }}
        }}
        sad_total = sad_total + best;
      }}
    }}
    long *tmp = current;
    current = reference;
    reference = tmp;
  }}
  print_long(sad_total);
  free((char*)current); free((char*)reference);
}}
"""
    return Workload(
        name="x264",
        suite="parsec",
        description="frame sweeps with windowed motion search",
        behavior="strided",
        source=source,
    )
