"""Exception hierarchy for the CARAT reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch failures from this library without accidentally swallowing unrelated
bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR construction or use (type mismatch, bad operand, ...)."""


class IRTypeError(IRError):
    """An operation was applied to values of incompatible IR types."""


class VerificationError(IRError):
    """The IR verifier found a structural violation in a module."""


class ParseError(ReproError):
    """Source text (Mini-C or textual IR) could not be parsed.

    Carries the line/column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        location = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class SemanticError(ReproError):
    """Mini-C semantic analysis rejected the program."""


class RestrictionError(SemanticError):
    """The program violates a CARAT source restriction (Section 2.2).

    CARAT forbids function-pointer/data-pointer casts, pointer arithmetic
    on function pointers, inline assembly, and detected undefined behavior.
    Compilation must fail, not warn, when these are found.
    """


class InterpError(ReproError):
    """The IR interpreter hit a runtime fault it cannot recover from."""


class ProtectionFault(InterpError):
    """A guard rejected a memory access (CARAT's analog of a #GP fault)."""

    def __init__(self, address: int, size: int, access: str) -> None:
        super().__init__(
            f"protection fault: {access} of {size} byte(s) at {address:#x} "
            f"is outside every kernel-permitted region"
        )
        self.address = address
        self.size = size
        self.access = access


class SafetyFault(ProtectionFault):
    """Safety mode (``--safety``) rejected a *region-legal* access.

    The access passed the ordinary CARAT guard — it lands inside a
    kernel-permitted region — but the allocation-table liveness check
    behind it says the program touched memory it does not own: a freed
    allocation (use-after-free) or bytes past the end of a live one
    (out-of-bounds).  Carries the structured
    :class:`~repro.runtime.safety.SafetyViolation`.
    """

    def __init__(self, violation) -> None:
        ProtectionFault.__init__(
            self, violation.address, violation.size, violation.access
        )
        # Replace the generic region message with the safety verdict.
        self.args = (violation.describe(),)
        self.violation = violation


class SegmentationFault(InterpError):
    """A traditional-model access touched an unmapped virtual page."""

    def __init__(self, address: int, access: str) -> None:
        super().__init__(f"segmentation fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class KernelError(ReproError):
    """The simulated kernel rejected or failed an operation."""


class SigningError(ReproError):
    """Binary signature generation or validation failed."""


class OutOfMemoryError(KernelError):
    """The physical frame allocator is exhausted."""


class MoveError(KernelError):
    """A move/protection change request failed in a *structured* way.

    Raised by the transactional upcall path (:mod:`repro.resilience`)
    after the attempt has been rolled back — never with half-applied
    state behind it — and by :class:`~repro.runtime.patching.Patcher`
    validation (e.g. an unbacked destination range) before any state is
    touched.  Carries enough context for callers (the policy engine, the
    CLI, tests) to account for the failure without string matching.
    """

    def __init__(
        self,
        message: str,
        step: str = "unknown",
        attempts: int = 0,
        lo: int = 0,
        hi: int = 0,
        cycles_wasted: int = 0,
    ) -> None:
        super().__init__(message)
        #: Figure-8 protocol step (see ``repro.resilience.journal``) at
        #: which the last attempt failed; ``"admission"`` when the move
        #: was refused up front (pinned/quarantined range).
        self.step = step
        self.attempts = attempts
        self.lo = lo
        self.hi = hi
        self.cycles_wasted = cycles_wasted
        #: The structured :class:`~repro.resilience.degrade.MoveFailure`
        #: recorded for this error, when a DegradationManager is attached.
        self.failure = None


class QuiesceFailure(KernelError):
    """A translation client refused to drain a lease that blocks a move.

    Raised from the ``quiesce-agents`` protocol step.  Deliberately
    *not* one of the transient fault classes the retry policy respects:
    a client that will not drain now will not drain on the next attempt
    either, so the move degrades immediately (rollback + quarantine)
    instead of burning retries.
    """

    def __init__(self, message: str, client: str = "", lo: int = 0,
                 hi: int = 0) -> None:
        super().__init__(message)
        self.client = client
        self.lo = lo
        self.hi = hi


class RollbackError(KernelError):
    """A move transaction's *rollback* failed — the one unrecoverable
    condition in the resilience layer (state may be inconsistent; the
    sanitizer is the authority on how bad it is)."""
