"""repro — a reproduction of CARAT (PLDI 2020).

CARAT (Compiler- And Runtime-based Address Translation) replaces
hardware-paged virtual memory with a compiler/kernel co-design: compiled
programs run on *physical* addresses, protection comes from
compiler-injected (and aggressively optimized) guards, and mapping
changes are executed by patching pointers through runtime tracking
structures.

Quickstart::

    from repro import CaratSession, RunConfig

    session = CaratSession(RunConfig(mode="carat", engine="fast"))
    result = session.run(minic_source)
    print(result.output, result.cycles)

(The legacy ``run_carat``/``run_carat_baseline``/``run_traditional``
helpers were removed; the names survive as tombstones that raise with a
pointer at the session API.)

The packages:

* :mod:`repro.ir` / :mod:`repro.frontend` — the SSA IR and the Mini-C
  compiler the workloads are written in;
* :mod:`repro.analysis` / :mod:`repro.transform` — the compiler analyses
  and generic optimizations the CARAT passes build on;
* :mod:`repro.carat` — the paper's contribution: guard injection + three
  guard optimizations, allocation/escape tracking, signing;
* :mod:`repro.runtime` — the Allocation Table, escape map, region
  guards, and the pointer patcher;
* :mod:`repro.kernel` — physical memory, page tables, TLBs/MMU, loader,
  and the change-request protocol;
* :mod:`repro.machine` — the interpreter and cost model;
* :mod:`repro.workloads` — the benchmark suite stand-ins.
"""

from repro.carat.pipeline import (
    CaratBinary,
    CompileOptions,
    compile_baseline,
    compile_carat,
)
from repro.frontend.lower import compile_source

__version__ = "0.1.0"

__all__ = [
    "CaratBinary",
    "CompileOptions",
    "compile_baseline",
    "compile_carat",
    "compile_source",
    "CaratSession",
    "RunConfig",
    "run_carat",
    "run_carat_baseline",
    "run_traditional",
    "__version__",
]


def __getattr__(name: str):
    # Executor/session helpers are lazy: they pull in the kernel/machine
    # stack, which imports back into the compiler packages above.
    if name in ("run_carat", "run_carat_baseline", "run_traditional", "RunResult"):
        from repro.machine import executor

        value = getattr(executor, name)
        globals()[name] = value
        return value
    if name in ("CaratSession", "RunConfig"):
        from repro.machine import session

        value = getattr(session, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
