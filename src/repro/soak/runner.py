"""The soak runner: epochs, probes, watchdogs, and the final report.

One :class:`SoakRunner` owns one multi-tenant schedule of the
request-serving service workload and advances it in *epochs* (a fixed
number of scheduler rounds).  Between epochs — every tenant parked at a
safepoint — it:

1. sweeps and re-arms the :class:`~repro.soak.chaos.ChaosSchedule`
   (faults keep arriving for the whole horizon);
2. ages the :class:`~repro.resilience.degrade.DegradationManager` and
   releases cooldown-expired quarantines (degradation must *drain*);
3. probes each tenant's ``completed`` request counter straight out of
   simulated memory (the allocation table tracks the global across
   moves, so the probe survives relocation) and derives
   cycles-per-request latency samples;
4. samples fragmentation, table/escape/frame sizes, and move counters
   into the :class:`~repro.soak.invariants.SteadyStateMonitor`;
5. runs its watchdog: a machine that retired zero instructions while
   tenants live, a tenant stalled for several epochs, or a move queue
   that stopped servicing is *wedged* — the runner writes a crash-dump
   bundle (last trace events + sanitizer report + metrics snapshot) and
   fails with a verdict instead of hanging forever;
6. every ``sanitize_every`` epochs, checkpoints the full cross-layer
   invariant checker.

Determinism: given one config (seed included), the run — schedule,
faults, verdicts, per-tenant results — is a pure function, and
:meth:`SoakReport.fingerprint` digests it for bit-identical re-runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.machine.session import RunConfig
from repro.multiproc.arbiter import FairnessArbiter
from repro.multiproc.scheduler import Scheduler, TenantSpec, percentile
from repro.policy.fragmentation import assess_fragmentation
from repro.resilience.degrade import DegradationManager
from repro.sanitizer.hooks import Sanitizer
from repro.soak.chaos import ChaosSchedule
from repro.soak.invariants import EpochSample, SteadyStateMonitor
from repro.telemetry.metrics import MetricsRegistry
from repro.workloads.service import service_source

#: Trace events bundled into a crash dump.
CRASH_DUMP_EVENTS = 200

#: Consecutive zero-progress epochs before a tenant/queue counts as stalled.
STALL_PATIENCE = 3


@dataclass
class _TenantProbe:
    """Memory probe into one tenant's observable globals."""

    tenant: object
    #: The allocation backing the ``completed`` global — the table
    #: rebases it in place on every move, so ``allocation.address`` is
    #: always current.
    completed_alloc: object
    completed: int = 0
    cycles: int = 0
    stalled_epochs: int = 0


@dataclass
class SoakReport:
    """Everything one soak produced (``carat.soak.v1``)."""

    engine: str
    workload: str
    config: dict
    epochs: int
    rounds: int
    machine_cycles: int
    requests_target: int
    requests_completed: int
    latency_p50: int
    latency_p99: int
    latency_samples: int
    efi_trajectory: List[float]
    verdicts: List[dict]
    faults: dict
    tenants: Dict[int, dict]
    sanitizer: Optional[str]
    sanitizer_checks: int
    dropped_events: int
    completed_run: bool
    crash_dump: Optional[str] = None
    epoch_samples: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.completed_run and not self.verdicts

    def fingerprint(self) -> str:
        """Digest of every deterministic observable: per-tenant run
        fingerprints, the chaos arm/fire sequence, request totals, and
        verdict names.  Same seed + config => same value, bit-identical."""
        digest = hashlib.sha256()
        payload = {
            "tenants": {
                str(pid): info["fingerprint"]
                for pid, info in sorted(self.tenants.items())
            },
            "chaos": self.faults.get("fingerprint"),
            "requests": self.requests_completed,
            "verdicts": [v["name"] for v in self.verdicts],
            "epochs": self.epochs,
        }
        digest.update(json.dumps(payload, sort_keys=True).encode())
        return digest.hexdigest()

    def throughput_rpkc(self) -> float:
        """Requests served per thousand simulated machine cycles."""
        if not self.machine_cycles:
            return 0.0
        return 1000.0 * self.requests_completed / self.machine_cycles

    def to_dict(self) -> dict:
        return {
            "schema": "carat.soak.v1",
            "engine": self.engine,
            "workload": self.workload,
            "config": self.config,
            "completed_run": self.completed_run,
            "ok": self.ok,
            "epochs": self.epochs,
            "rounds": self.rounds,
            "machine_cycles": self.machine_cycles,
            "requests": {
                "target": self.requests_target,
                "completed": self.requests_completed,
                "throughput_rpkc": self.throughput_rpkc(),
            },
            "latency": {
                "p50": self.latency_p50,
                "p99": self.latency_p99,
                "samples": self.latency_samples,
            },
            "efi": {
                "first": self.efi_trajectory[0] if self.efi_trajectory else 0.0,
                "last": self.efi_trajectory[-1] if self.efi_trajectory else 0.0,
                "max": max(self.efi_trajectory, default=0.0),
                "trajectory": self.efi_trajectory,
            },
            "faults": self.faults,
            "verdicts": self.verdicts,
            "tenants": {str(pid): info for pid, info in sorted(self.tenants.items())},
            "sanitizer": self.sanitizer,
            "sanitizer_checks": self.sanitizer_checks,
            "dropped_events": self.dropped_events,
            "fingerprint": self.fingerprint(),
            "crash_dump": self.crash_dump,
            "epoch_samples": self.epoch_samples,
        }


class SoakRunner:
    """Long-horizon service soak with continuous chaos; see module doc."""

    def __init__(
        self,
        config: RunConfig,
        *,
        workload: str = "kvservice",
        keys: int = 64,
        hot_keys: int = 8,
        window: int = 24,
        burst: int = 16,
        #: Deliberately smaller than the tenants' combined hot set, so
        #: the tiering balancer keeps promoting/demoting for the whole
        #: horizon — continuous Figure-8 traffic for chaos to hit.
        fast_memory: Optional[int] = 96 * 1024,
        arbiter_epoch_cycles: int = 25_000,
        arbiter_budget_cycles: int = 25_000,
        crash_dump_path: Optional[str] = None,
    ) -> None:
        # The tracer is the crash-dump flight recorder; it charges no
        # cycles, so forcing it on never perturbs a fingerprint.
        self.config = config if config.tracing else config.replace(trace=True)
        self.workload = workload
        self.crash_dump_path = crash_dump_path or f"soak-crash-{config.engine}.json"
        per_tenant = -(-config.soak_requests // config.soak_tenants)
        self.requests_per_tenant = per_tenant
        if workload == "kvburst":
            source = service_source(
                per_tenant, keys=keys, hot_keys=hot_keys, window=48,
                burst=8, burst_factor=8, blob_spread=9, seed=23,
            )
        else:
            source = service_source(
                per_tenant, keys=keys, hot_keys=hot_keys, window=window,
                burst=burst,
            )
        specs = [
            TenantSpec(source, name=f"svc{i}")
            for i in range(config.soak_tenants)
        ]
        self.scheduler = Scheduler(
            self.config,
            specs,
            share=False,
            arbiter=FairnessArbiter(
                epoch_cycles=arbiter_epoch_cycles,
                budget_cycles=arbiter_budget_cycles,
            ),
            fast_memory=fast_memory,
        )
        self.chaos: Optional[ChaosSchedule] = (
            ChaosSchedule(config.chaos_rate, config.chaos_seed)
            if config.chaos_rate > 0
            else None
        )
        self.monitor = SteadyStateMonitor(
            warmup=config.soak_warmup,
            slo_p99=config.slo_p99,
            drain_budget=config.drain_budget,
        )
        self.sanitizer = Sanitizer(
            raise_on_violation=False, shadow_escapes=False
        )
        self.probes: List[_TenantProbe] = []
        self.epoch = 0
        self.drained = 0
        self._last_instructions = 0
        self._last_serviced = 0
        self._queue_stalled_epochs = 0
        self._crash_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _wire(self) -> None:
        self.scheduler.start()
        kernel = self.scheduler.kernel
        # Chaos-exhausted moves must degrade (quarantine + cooldown),
        # never crash the machine.
        if kernel.degradation is None:
            kernel.attach_degradation(DegradationManager())
        if self.chaos is not None:
            kernel.attach_fault_injector(self.chaos.injector)
        for tenant in self.scheduler.tenants:
            address = tenant.process.globals_map["completed"]
            alloc = tenant.process.runtime.table.at(address)
            if alloc is None:
                raise RuntimeError(
                    f"tenant {tenant.process.pid}: the 'completed' global "
                    f"is not in the allocation table — not a service "
                    f"workload?"
                )
            self.probes.append(_TenantProbe(tenant, alloc))

    def _read_completed(self, probe: _TenantProbe) -> int:
        kernel = self.scheduler.kernel
        return kernel.memory.read_int(probe.completed_alloc.address, 8)

    # ------------------------------------------------------------------
    # Epoch bookkeeping
    # ------------------------------------------------------------------

    def _sample_epoch(self) -> EpochSample:
        kernel = self.scheduler.kernel
        degradation = kernel.degradation
        frag = assess_fragmentation(kernel.frames)
        table_entries = 0
        escape_footprint = 0
        escape_pending = 0
        completed_total = 0
        latencies: List[int] = []
        for probe in self.probes:
            runtime = probe.tenant.process.runtime
            table_entries += len(runtime.table)
            escape_footprint += runtime.escapes.memory_footprint_bytes()
            escape_pending += runtime.escapes.pending_count
            completed = self._read_completed(probe)
            cycles = probe.tenant.interpreter.stats.cycles
            d_req = completed - probe.completed
            d_cyc = cycles - probe.cycles
            if d_req > 0:
                latencies.append(d_cyc // d_req)
                probe.stalled_epochs = 0
            elif not probe.tenant.done:
                probe.stalled_epochs += 1
            probe.completed = completed
            probe.cycles = cycles
            completed_total += completed
        return EpochSample(
            epoch=self.epoch,
            machine_cycles=self.scheduler.clock,
            efi=frag.external_fragmentation,
            allocated_frames=kernel.frames.allocated_frames,
            table_entries=table_entries,
            escape_footprint=escape_footprint,
            escape_pending=escape_pending,
            completed_requests=completed_total,
            latencies=latencies,
            quarantined_ranges=len(degradation.quarantined),
            oldest_quarantine_age=degradation.oldest_quarantine_age(),
            moves_attempted=kernel.stats.moves_attempted,
            moves_committed=kernel.stats.moves_committed,
            moves_degraded=kernel.stats.moves_degraded,
            dropped_events=(
                self.scheduler.tracer.dropped_events
                if self.scheduler.tracer is not None
                else 0
            ),
        )

    def _check_pause_ledger(self) -> None:
        """Pause-ledger conservation: every pause logged for a tenant
        must equal the move cycles charged to it, exactly."""
        kernel = self.scheduler.kernel
        for pid, pauses in kernel.pause_log.items():
            logged = sum(pauses)
            charged = kernel.tenant_stats[pid].move_cycles
            if logged != charged:
                self.monitor.flag(
                    "pause-ledger",
                    self.epoch,
                    f"pid {pid}: {logged} pause cycles logged vs "
                    f"{charged} move cycles charged",
                    logged - charged,
                    0,
                )

    def _watchdog(self, live: bool) -> Optional[str]:
        """Returns a crash reason when the machine is wedged."""
        scheduler = self.scheduler
        total_instructions = sum(
            t.interpreter.stats.instructions for t in scheduler.tenants
        )
        progressed = total_instructions > self._last_instructions
        self._last_instructions = total_instructions
        if live and not progressed:
            return "machine wedged: zero instructions retired this epoch"
        for probe in self.probes:
            if probe.stalled_epochs >= STALL_PATIENCE:
                return (
                    f"tenant {probe.tenant.process.pid} "
                    f"({probe.tenant.process.name}) wedged: no request "
                    f"completed for {probe.stalled_epochs} epochs"
                )
        queue = scheduler.kernel.move_queue
        if queue is not None:
            serviced = queue.stats.serviced + queue.stats.degraded
            if not queue.idle and serviced == self._last_serviced:
                self._queue_stalled_epochs += 1
                if self._queue_stalled_epochs >= STALL_PATIENCE:
                    return (
                        f"move queue stalled: {queue.stats.enqueued - serviced} "
                        f"move(s) pending, none serviced for "
                        f"{self._queue_stalled_epochs} epochs"
                    )
            else:
                self._queue_stalled_epochs = 0
            self._last_serviced = serviced
        return None

    def _metrics_snapshot(self) -> dict:
        kernel = self.scheduler.kernel
        registry = MetricsRegistry()
        registry.absorb("kernel", kernel.stats)
        for probe in self.probes:
            pid = probe.tenant.process.pid
            registry.absorb(f"interp.{pid}", probe.tenant.interpreter.stats)
            registry.absorb(f"tenant.{pid}", kernel.tenant_stats[pid])
        if kernel.move_queue is not None:
            registry.absorb("movequeue", kernel.move_queue.stats)
        if kernel.degradation is not None:
            registry.absorb(
                "degradation",
                {
                    "failures": len(kernel.degradation.failures),
                    "quarantined": len(kernel.degradation.quarantined),
                    "released": len(kernel.degradation.released),
                },
            )
        if self.scheduler.arbiter is not None and self.scheduler.arbiter.states:
            registry.absorb("arbitration", self.scheduler.arbiter.summary())
        return registry.to_dict()

    def _write_crash_dump(self, reason: str) -> str:
        """The diagnostic bundle a wedged soak leaves behind."""
        tracer = self.scheduler.tracer
        bundle = {
            "schema": "carat.soak-crash.v1",
            "reason": reason,
            "epoch": self.epoch,
            "rounds": self.scheduler.rounds,
            "trace_tail": [
                event.to_dict()
                for event in (tracer.events[-CRASH_DUMP_EVENTS:] if tracer else [])
            ],
            "dropped_events": tracer.dropped_events if tracer else 0,
            "sanitizer": {
                "summary": self.sanitizer.describe(),
                "violations": [
                    v.describe() for v in self.sanitizer.report.violations
                ],
            },
            "metrics": self._metrics_snapshot(),
            "chaos": self.chaos.summary() if self.chaos else None,
            "verdicts": [v.to_dict() for v in self.monitor.verdicts],
        }
        path = Path(self.crash_dump_path)
        path.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
        return str(path)

    # ------------------------------------------------------------------
    # The soak loop
    # ------------------------------------------------------------------

    def run(self) -> SoakReport:
        config = self.config
        self._wire()
        kernel = self.scheduler.kernel
        degradation = kernel.degradation
        live = True
        crash_dump: Optional[str] = None
        while live and self.epoch < config.soak_horizon:
            if self.chaos is not None:
                self.chaos.arm_epoch()
            for _ in range(config.soak_rounds_per_epoch):
                if not self.scheduler.step_round():
                    live = False
                    break
            self.epoch += 1
            if self.chaos is not None:
                self.chaos.sweep_epoch()
            degradation.advance_epoch()
            self.drained += len(degradation.release_expired())
            sample = self._sample_epoch()
            self.monitor.observe(sample)
            self._check_pause_ledger()
            reason = self._watchdog(live)
            if reason is None and (
                config.sanitize_every
                and self.epoch % config.sanitize_every == 0
            ):
                report = self.sanitizer.check_now(
                    kernel, label=f"soak-epoch-{self.epoch}"
                )
                if not report.ok:
                    reason = f"sanitizer violations at epoch {self.epoch}"
                    self.monitor.flag(
                        "sanitizer",
                        self.epoch,
                        self.sanitizer.describe(),
                        len(self.sanitizer.report.errors),
                        0,
                    )
            if reason is not None:
                self.monitor.flag(
                    "watchdog", self.epoch, reason, 1, 0
                )
                crash_dump = self._write_crash_dump(reason)
                live = False
                break
        if live and self.epoch >= config.soak_horizon:
            reason = (
                f"horizon exhausted: {config.soak_horizon} epochs elapsed "
                f"with tenants still running"
            )
            self.monitor.flag(
                "watchdog", self.epoch, reason, self.epoch, config.soak_horizon
            )
            crash_dump = self._write_crash_dump(reason)
        result = self.scheduler.finish()
        # Give fresh quarantines their cooldown to drain before judging
        # the "degradation must drain" invariant.
        extra = 0
        while degradation.quarantined and extra <= config.drain_budget:
            degradation.advance_epoch()
            self.drained += len(degradation.release_expired())
            extra += 1
        if degradation.quarantined:
            self.monitor.flag(
                "degradation-drain",
                self.epoch,
                f"{len(degradation.quarantined)} quarantine(s) never "
                f"drained",
                len(degradation.quarantined),
                config.drain_budget,
            )
        final = self.sanitizer.check_now(kernel, label="soak-final")
        if not final.ok:
            self.monitor.flag(
                "sanitizer",
                self.epoch,
                self.sanitizer.describe(),
                len(self.sanitizer.report.errors),
                0,
            )
        self.monitor.finish(self.epoch)

        completed_total = sum(probe.completed for probe in self.probes)
        faults = {
            "injected": len(self.chaos.armed) if self.chaos else 0,
            "fired": len(self.chaos.fired) if self.chaos else 0,
            "swept_unfired": self.chaos.swept if self.chaos else 0,
            "moves_degraded": kernel.stats.moves_degraded,
            "move_retries": kernel.stats.move_retries,
            "quarantines_entered": len(degradation.failures),
            "quarantines_drained": self.drained,
            "quarantines_stuck": len(degradation.quarantined),
            "fingerprint": self.chaos.fingerprint() if self.chaos else None,
        }
        tenants = {
            pid: {
                "name": run.process.name,
                "exit_code": run.exit_code,
                "instructions": run.stats.instructions,
                "cycles": run.stats.cycles,
                "completed": probe.completed,
                "fingerprint": run.fingerprint(),
                "p99_pause": result.p99_pause(pid),
            }
            for (pid, run), probe in zip(
                sorted(result.tenants.items()), self.probes
            )
        }
        completed_run = all(
            info["exit_code"] == 0 for info in tenants.values()
        ) and all(t.done for t in self.scheduler.tenants)
        return SoakReport(
            engine=config.engine,
            workload=self.workload,
            config=config.to_dict(),
            epochs=self.epoch,
            rounds=result.rounds,
            machine_cycles=result.machine_cycles,
            requests_target=self.requests_per_tenant * config.soak_tenants,
            requests_completed=completed_total,
            latency_p50=percentile(self.monitor.latencies, 0.50),
            latency_p99=percentile(self.monitor.latencies, 0.99),
            latency_samples=len(self.monitor.latencies),
            efi_trajectory=self.monitor.efi_trajectory(),
            verdicts=[v.to_dict() for v in self.monitor.verdicts],
            faults=faults,
            tenants=tenants,
            sanitizer=self.sanitizer.describe(),
            sanitizer_checks=self.sanitizer.checks_run,
            dropped_events=(
                self.scheduler.tracer.dropped_events
                if self.scheduler.tracer is not None
                else 0
            ),
            completed_run=completed_run,
            crash_dump=crash_dump,
            epoch_samples=[s.to_dict() for s in self.monitor.samples],
        )
