"""Continuous, seeded chaos: rate-based fault arming over a long soak.

The fault-campaign tests aim one :class:`FaultPoint` at one step of one
move.  A soak needs the *service* view: faults keep arriving for the
whole horizon, at every Figure-8 step and chunk boundary, while the
request traffic keeps flowing.  :class:`ChaosSchedule` produces that
pressure deterministically — one seeded ``random.Random`` draws the
whole campaign, so the same seed yields the identical fault sequence
(and, because everything downstream is deterministic too, an identical
run fingerprint).

Per epoch the schedule *arms* a Poisson-ish number of fresh fault
points (expectation = ``rate``) into the shared
:class:`~repro.sanitizer.faults.ProtocolFaultInjector`, and *sweeps*
whatever did not fire at epoch end — so a ``persistent`` point lives at
most one epoch: long enough to exhaust a move's retries into
degradation, never long enough to wedge the machine forever.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional

from repro.resilience.journal import PAGE_MOVE_STEPS, TORN_CAPABLE_STEPS
from repro.sanitizer.faults import (
    FAULT_KINDS,
    FaultPoint,
    ProtocolFaultInjector,
)


class ChaosSchedule:
    """Seeded rate-based fault driver; see module docstring."""

    def __init__(
        self,
        rate: float,
        seed: int,
        *,
        persistent_share: float = 0.2,
        hang_stall_cycles: int = 50_000_000,
    ) -> None:
        if rate < 0:
            raise ValueError("chaos rate must be non-negative")
        self.rate = float(rate)
        self.seed = seed
        self.persistent_share = persistent_share
        self.hang_stall_cycles = hang_stall_cycles
        self.rng = random.Random(seed)
        self.injector = ProtocolFaultInjector([], self.rng)
        self.epochs_armed = 0
        #: Every point ever armed, as spec strings, in arming order.
        self.armed: List[str] = []
        #: Points swept un-fired at epoch ends.
        self.swept = 0

    # ------------------------------------------------------------------
    # The per-epoch arm/sweep cycle
    # ------------------------------------------------------------------

    def _draw_point(self) -> FaultPoint:
        rng = self.rng
        kind = rng.choice(FAULT_KINDS)
        step = rng.choice(
            sorted(TORN_CAPABLE_STEPS) if kind == "torn" else PAGE_MOVE_STEPS
        )
        # move_index=None: the point hits whichever move happens next —
        # a soak cannot know global move indices in advance.  Persistent
        # points exhaust that move's retries into degradation; the sweep
        # below keeps them from outliving the epoch.
        return FaultPoint(
            step=step,
            kind=kind,
            move_index=None,
            persistent=rng.random() < self.persistent_share,
            stall_cycles=self.hang_stall_cycles,
        )

    def arm_epoch(self) -> List[FaultPoint]:
        """Install this epoch's fault points into the injector: a whole
        number of expected faults plus one more with probability equal
        to the fractional part of ``rate``."""
        count = int(self.rate)
        if self.rng.random() < self.rate - count:
            count += 1
        points = [self._draw_point() for _ in range(count)]
        for point in points:
            self.armed.append(
                f"{point.step}:{point.kind}"
                + (":persist" if point.persistent else "")
            )
        self.injector.points.extend(points)
        self.epochs_armed += 1
        return points

    def sweep_epoch(self) -> int:
        """Remove every point still armed (one-shots that found no move
        to hit, and persistent points that must not outlive their
        epoch).  Returns how many were swept."""
        remaining = len(self.injector.points)
        if remaining:
            self.injector.points.clear()
        self.swept += remaining
        return remaining

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def fired(self) -> List[str]:
        """The faults that actually hit a move (injector log)."""
        return self.injector.fired

    def fingerprint(self) -> str:
        """Digest of the complete armed + fired sequence — two runs with
        the same seed and workload must produce the same value."""
        digest = hashlib.sha256()
        digest.update(f"seed={self.seed};rate={self.rate}".encode())
        digest.update("|".join(self.armed).encode())
        digest.update(b"#")
        digest.update("|".join(self.fired).encode())
        return digest.hexdigest()

    def summary(self) -> dict:
        return {
            "rate": self.rate,
            "seed": self.seed,
            "epochs_armed": self.epochs_armed,
            "injected": len(self.armed),
            "fired": len(self.fired),
            "swept_unfired": self.swept,
            "fingerprint": self.fingerprint(),
        }
