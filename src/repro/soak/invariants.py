"""Steady-state invariants: what "healthy under sustained churn" means.

Each rule watches one signal across epochs and, when it crosses its
threshold after warmup, emits a structured :class:`Verdict` (never a
bare string, never an exception — a soak reports every violation it
saw, it does not die at the first).  The rule set:

========================  ==========================================
signal                    verdict when
========================  ==========================================
EFI                       above ``max_efi`` for ``efi_patience``
                          consecutive epochs (compaction lost)
allocation-table entries  windowed-regression slope says monotonic
                          growth after warmup (tracking leak)
escape-map footprint      same regression (escape records leak)
allocated frames          same regression (physical-memory leak)
pause ledger              per-tenant pause sums != charged move
                          cycles (accounting broke)
request latency           p99 cycles-per-request above the SLO
quarantine age            a quarantined range outlived the drain
                          budget (degradation never recovered)
watchdog                  no forward progress / stalled moves
========================  ==========================================

The leak detector is a windowed least-squares regression over the last
``window`` epoch samples: a service whose working set is a sliding
window should oscillate around a plateau, so a sustained positive slope
(relative to the signal's magnitude) after warmup is growth that churn
cannot explain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def windowed_slope(values: List[float], window: int) -> float:
    """Least-squares slope (per epoch) over the last ``window`` samples.

    Returns 0.0 with fewer than two samples.  Exact arithmetic over the
    sample values; no numpy.
    """
    tail = values[-window:]
    n = len(tail)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(tail) / n
    num = sum((i - mean_x) * (y - mean_y) for i, y in enumerate(tail))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den


@dataclass(frozen=True)
class Verdict:
    """One steady-state invariant violation, as structured data."""

    name: str
    epoch: int
    detail: str
    value: float
    threshold: float

    def describe(self) -> str:
        return (
            f"[{self.name}] epoch {self.epoch}: {self.detail} "
            f"(value {self.value:g}, threshold {self.threshold:g})"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "epoch": self.epoch,
            "detail": self.detail,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass
class EpochSample:
    """One epoch's telemetry, as the monitor consumes it."""

    epoch: int
    machine_cycles: int
    efi: float
    allocated_frames: int
    table_entries: int
    escape_footprint: int
    escape_pending: int
    completed_requests: int
    #: Cycles-per-request samples observed this epoch (one per tenant
    #: that completed any requests).
    latencies: List[int] = field(default_factory=list)
    quarantined_ranges: int = 0
    oldest_quarantine_age: int = 0
    moves_attempted: int = 0
    moves_committed: int = 0
    moves_degraded: int = 0
    dropped_events: int = 0

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "machine_cycles": self.machine_cycles,
            "efi": self.efi,
            "allocated_frames": self.allocated_frames,
            "table_entries": self.table_entries,
            "escape_footprint": self.escape_footprint,
            "escape_pending": self.escape_pending,
            "completed_requests": self.completed_requests,
            "latency_samples": len(self.latencies),
            "quarantined_ranges": self.quarantined_ranges,
            "oldest_quarantine_age": self.oldest_quarantine_age,
            "moves_attempted": self.moves_attempted,
            "moves_committed": self.moves_committed,
            "moves_degraded": self.moves_degraded,
            "dropped_events": self.dropped_events,
        }


class SteadyStateMonitor:
    """Accumulates epoch samples and emits verdicts; see module docstring."""

    #: Signals the windowed-regression leak detector watches.
    LEAK_SIGNALS = ("table_entries", "escape_footprint", "allocated_frames")

    def __init__(
        self,
        *,
        warmup: int = 5,
        window: int = 16,
        max_efi: float = 0.97,
        efi_patience: int = 4,
        slo_p99: int = 0,
        drain_budget: int = 12,
        #: A leak verdict needs the slope to project at least this much
        #: absolute growth over one window AND at least this fraction of
        #: the signal's window mean (guards against flagging a signal
        #: oscillating around a plateau).
        leak_min_growth: float = 8.0,
        leak_min_relative: float = 0.05,
    ) -> None:
        self.warmup = warmup
        self.window = window
        self.max_efi = max_efi
        self.efi_patience = efi_patience
        self.slo_p99 = slo_p99
        self.drain_budget = drain_budget
        self.leak_min_growth = leak_min_growth
        self.leak_min_relative = leak_min_relative
        self.samples: List[EpochSample] = []
        self.verdicts: List[Verdict] = []
        self.latencies: List[int] = []
        self._efi_breaches = 0
        self._flagged: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def flag(
        self,
        name: str,
        epoch: int,
        detail: str,
        value: float,
        threshold: float,
        *,
        once: bool = True,
    ) -> Optional[Verdict]:
        """Record a verdict (external rules — pause ledger, watchdog —
        report through here too).  ``once`` suppresses repeats of the
        same rule name."""
        if once and self._flagged.get(name):
            return None
        verdict = Verdict(name, epoch, detail, value, threshold)
        self.verdicts.append(verdict)
        self._flagged[name] = True
        return verdict

    def observe(self, sample: EpochSample) -> List[Verdict]:
        """Fold in one epoch; returns any verdicts it triggered."""
        before = len(self.verdicts)
        self.samples.append(sample)
        self.latencies.extend(sample.latencies)
        past_warmup = sample.epoch > self.warmup

        if past_warmup and sample.efi > self.max_efi:
            self._efi_breaches += 1
            if self._efi_breaches >= self.efi_patience:
                self.flag(
                    "efi-bound",
                    sample.epoch,
                    f"EFI above {self.max_efi} for "
                    f"{self._efi_breaches} consecutive epochs",
                    sample.efi,
                    self.max_efi,
                )
        else:
            self._efi_breaches = 0

        if past_warmup and len(self.samples) >= self.window:
            for signal in self.LEAK_SIGNALS:
                self._check_leak(signal, sample.epoch)

        if sample.oldest_quarantine_age > self.drain_budget:
            self.flag(
                "degradation-drain",
                sample.epoch,
                "a quarantined range outlived the drain budget "
                "(degradation never recovered)",
                sample.oldest_quarantine_age,
                self.drain_budget,
            )
        return self.verdicts[before:]

    def _check_leak(self, signal: str, epoch: int) -> None:
        series = [float(getattr(s, signal)) for s in self.samples]
        slope = windowed_slope(series, self.window)
        tail = series[-self.window:]
        mean = sum(tail) / len(tail)
        projected = slope * self.window
        if projected >= max(
            self.leak_min_growth, self.leak_min_relative * max(mean, 1.0)
        ):
            self.flag(
                f"leak-{signal.replace('_', '-')}",
                epoch,
                f"{signal} grows ~{slope:.2f}/epoch after warmup "
                f"(projected +{projected:.0f} per {self.window}-epoch "
                f"window over a mean of {mean:.0f})",
                slope,
                self.leak_min_growth / self.window,
            )

    # ------------------------------------------------------------------
    # End-of-soak gates
    # ------------------------------------------------------------------

    def percentile_latency(self, fraction: float) -> int:
        from repro.multiproc.scheduler import percentile

        return percentile(self.latencies, fraction)

    def finish(self, epoch: int) -> List[Verdict]:
        """The SLO gate, evaluated over the whole run's latency samples."""
        before = len(self.verdicts)
        if self.slo_p99 and self.latencies:
            p99 = self.percentile_latency(0.99)
            if p99 > self.slo_p99:
                self.flag(
                    "slo-p99",
                    epoch,
                    f"p99 request latency {p99} cycles exceeds the SLO",
                    p99,
                    self.slo_p99,
                )
        return self.verdicts[before:]

    @property
    def ok(self) -> bool:
        return not self.verdicts

    def efi_trajectory(self) -> List[float]:
        return [s.efi for s in self.samples]
