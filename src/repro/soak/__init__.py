"""The soak-and-chaos orchestrator: operate the stack, don't just test it.

Layers on :class:`~repro.multiproc.Scheduler` /
:class:`~repro.machine.session.RunConfig` to run the request-serving
service workloads for long horizons, continuously arming the protocol
fault injector (:class:`ChaosSchedule`), sampling telemetry every epoch,
and enforcing steady-state invariants as structured
:class:`~repro.soak.invariants.Verdict` records
(:class:`~repro.soak.invariants.SteadyStateMonitor`).  The
:class:`SoakRunner` drives it all and writes a crash-dump bundle when
its watchdog trips.
"""

from repro.soak.chaos import ChaosSchedule
from repro.soak.invariants import (
    EpochSample,
    SteadyStateMonitor,
    Verdict,
    windowed_slope,
)
from repro.soak.runner import SoakReport, SoakRunner

__all__ = [
    "ChaosSchedule",
    "EpochSample",
    "SoakReport",
    "SoakRunner",
    "SteadyStateMonitor",
    "Verdict",
    "windowed_slope",
]
