"""The undo journal behind transactional page moves.

Figure 8's protocol mutates state in *many* places — physical memory
(escape cells, the copied bytes), register snapshots, the Allocation
Table, the escape map, the region set, the frame allocator, the heap
allocator's metadata, the kernel's per-process bookkeeping.  A fault at
any step would historically leave a half-patched machine.  The
:class:`MoveJournal` makes every step undoable: each mutation appends a
:class:`JournalEntry` whose ``undo`` closure restores exactly the state
that mutation changed, and :meth:`MoveJournal.rollback` replays the
undos in reverse order.

The step names below are the campaign axis — every fault-injection
test, every ``--inject-faults`` spec, and the DESIGN.md step table use
these strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import RollbackError

# -- Figure 8 step names (the protocol's fault surface) ----------------------

STEP_WORLD_STOP = "world-stop"          # steps 1-3: signal, dump, barrier
STEP_NEGOTIATE = "negotiate"            # step 4: page-set expansion
STEP_QUIESCE_AGENTS = "quiesce-agents"  # drain translation-client leases
STEP_RESERVE = "reserve-destination"    # kernel allocates the target range
STEP_ESCAPE_FLUSH = "escape-flush"      # batched records resolved
STEP_PATCH_ESCAPES = "patch-escapes"    # steps 5-8: swizzle escaped pointers
STEP_PATCH_REGISTERS = "patch-registers"  # step 9: thread register frames
STEP_COPY_DATA = "copy-data"            # step 10: the bytes move
STEP_REBASE_TRACKING = "rebase-tracking"  # step 11: table + escape map rekey
STEP_REGION_INSTALL = "region-install"  # region swap-out/swap-in
STEP_KERNEL_METADATA = "kernel-metadata"  # heap/globals/layout follow the move
STEP_RELEASE_FRAMES = "release-frames"  # old frames return to the kernel
STEP_RELEASE_OLD = "release-old"        # allocation move: old block freed
STEP_REGION_PERMS = "region-perms"      # protection change: perms swapped
STEP_RESUME = "resume"                  # step 12: completion + threads resume

#: Every step of a page-move transaction, in protocol order — the
#: fault campaign enumerates exactly this list.
PAGE_MOVE_STEPS = (
    STEP_WORLD_STOP,
    STEP_NEGOTIATE,
    STEP_QUIESCE_AGENTS,
    STEP_RESERVE,
    STEP_ESCAPE_FLUSH,
    STEP_PATCH_ESCAPES,
    STEP_PATCH_REGISTERS,
    STEP_COPY_DATA,
    STEP_REBASE_TRACKING,
    STEP_REGION_INSTALL,
    STEP_KERNEL_METADATA,
    STEP_RELEASE_FRAMES,
    STEP_RESUME,
)

#: Steps of an allocation-granularity move (Section 6's design).
ALLOCATION_MOVE_STEPS = (
    STEP_WORLD_STOP,
    STEP_RESERVE,
    STEP_ESCAPE_FLUSH,
    STEP_PATCH_ESCAPES,
    STEP_PATCH_REGISTERS,
    STEP_COPY_DATA,
    STEP_REBASE_TRACKING,
    STEP_RELEASE_OLD,
    STEP_RESUME,
)

#: Steps of a protection-change transaction.
PROTECTION_STEPS = (STEP_WORLD_STOP, STEP_REGION_PERMS, STEP_RESUME)

#: Steps with a mid-step progress hook, where a ``torn`` fault can land
#: between items (half the escapes patched, half the bytes copied, ...).
TORN_CAPABLE_STEPS = frozenset(
    {
        STEP_QUIESCE_AGENTS,
        STEP_PATCH_ESCAPES,
        STEP_PATCH_REGISTERS,
        STEP_COPY_DATA,
        STEP_REBASE_TRACKING,
    }
)


@dataclass
class JournalEntry:
    """One undoable mutation: which step made it, what it was, and the
    closure that exactly reverses it."""

    step: str
    label: str
    undo: Callable[[], None]


class MoveJournal:
    """Ordered undo log for one move-transaction attempt.

    ``record`` appends entries in mutation order; ``rollback`` runs
    their undos newest-first, so each undo sees exactly the state its
    forward mutation left behind.  A journal is single-use: it ends
    either ``committed`` (undos discarded) or ``rolled-back``.
    """

    def __init__(self) -> None:
        self.entries: List[JournalEntry] = []
        self.state = "open"

    def __len__(self) -> int:
        return len(self.entries)

    def record(self, step: str, label: str, undo: Callable[[], None]) -> None:
        if self.state != "open":
            raise RollbackError(f"journal is {self.state}; cannot record")
        self.entries.append(JournalEntry(step, label, undo))

    # -- typed helpers (the common mutation shapes) ----------------------

    def log_u64(self, step: str, memory, address: int, old_value: int) -> None:
        """An 8-byte cell is about to be overwritten (escape patch)."""
        self.record(
            step,
            f"restore u64 at {address:#x}",
            lambda: memory.write_u64(address, old_value),
        )

    def log_image(self, step: str, memory, address: int, length: int) -> None:
        """A byte range is about to be clobbered (the data copy) —
        snapshot it now, restore it verbatim on rollback."""
        old = memory.read_bytes(address, length)
        self.record(
            step,
            f"restore {length} byte(s) at {address:#x}",
            lambda: memory.write_bytes(address, old),
        )

    def log_registers(self, step: str, snapshot) -> None:
        """A thread's register snapshot is about to be patched."""
        old = dict(snapshot.slots)
        def undo() -> None:
            snapshot.slots.clear()
            snapshot.slots.update(old)
        self.record(step, f"restore registers of thread {snapshot.thread_id}", undo)

    # -- outcomes --------------------------------------------------------

    def steps_journaled(self) -> List[str]:
        """Unique step names in first-appearance order (for reporting)."""
        seen: List[str] = []
        for entry in self.entries:
            if entry.step not in seen:
                seen.append(entry.step)
        return seen

    def commit(self) -> None:
        self.state = "committed"
        self.entries.clear()

    def rollback(self) -> int:
        """Undo every journaled mutation, newest first.  Returns the
        number of entries undone.  An undo that raises is wrapped in
        :class:`RollbackError` — the unrecoverable case."""
        if self.state == "rolled-back":
            return 0
        undone = 0
        while self.entries:
            entry = self.entries.pop()
            try:
                entry.undo()
            except Exception as exc:  # noqa: BLE001 - rollback must not half-fail silently
                self.state = "rolled-back"
                raise RollbackError(
                    f"undo failed at step {entry.step!r} ({entry.label}): {exc}"
                ) from exc
            undone += 1
        self.state = "rolled-back"
        return undone
