"""Transactional execution of the Figure 8 upcall protocol.

A :class:`MoveTransaction` brackets one *attempt* at a page move,
allocation move, or protection change: it owns the attempt's
:class:`~repro.resilience.journal.MoveJournal`, fires the kernel's
fault-injection hook at every step boundary (and mid-step, for torn
faults), applies the per-step watchdog to injected hangs, and on any
failure rolls the machine back to its pre-attempt state — then the
guard-cache generation is bumped, the world resumed (iff this attempt
stopped it), and the sanitizer run as the recovery oracle.

:func:`drive_transaction` is the retry loop around attempts: transient
faults (injected crash/torn, watchdog timeouts) retry with exponential
backoff up to ``RetryPolicy.max_attempts``; deterministic errors (an
unbacked destination, heap exhaustion) fail fast.  Exhaustion records a
structured :class:`~repro.resilience.degrade.MoveFailure` with the
kernel's :class:`~repro.resilience.degrade.DegradationManager` (when
attached) and raises :class:`~repro.errors.MoveError` — never a corrupt
state, never a raw KeyError out of physical memory.

Commit effects (stats, MMU-notifier events, world resume, the post-move
sanitizer checkpoint) run only after every step has succeeded, so a
fault-free run is cycle-for-cycle identical to the pre-transactional
protocol.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import KernelError, MoveError, ReproError, RollbackError
from repro.resilience.degrade import MoveFailure
from repro.resilience.journal import (
    STEP_ESCAPE_FLUSH,
    STEP_KERNEL_METADATA,
    STEP_NEGOTIATE,
    STEP_QUIESCE_AGENTS,
    STEP_REGION_INSTALL,
    STEP_REGION_PERMS,
    STEP_RELEASE_FRAMES,
    STEP_RELEASE_OLD,
    STEP_RESERVE,
    STEP_RESUME,
    STEP_WORLD_STOP,
    MoveJournal,
)
from repro.resilience.retry import (
    InjectedFault,
    InjectedHang,
    RetryPolicy,
    StepTimeout,
)

#: Cycles charged per journal entry undone — rollback walks its records
#: the way a real undo log would walk write-ahead entries.
UNDO_CYCLES_PER_RECORD = 25


class MoveTransaction:
    """One attempt of one change request, with rollback on any fault."""

    def __init__(
        self, kernel, runtime, operation: str, pid: Optional[int] = None
    ) -> None:
        self.kernel = kernel
        self.runtime = runtime
        self.operation = operation
        #: Owning tenant, for per-PID stat attribution (None = legacy).
        self.pid = pid
        self.journal = MoveJournal()
        self.current_step: str = STEP_WORLD_STOP
        #: Cycles lost to injected hangs this attempt (stalls below the
        #: watchdog threshold, or the timeout window itself).
        self.stalled_cycles = 0
        self.initiated_stop = False
        self.stop_cycles = 0
        self.rolled_back = False

    # -- the fault surface ----------------------------------------------

    def enter(
        self, step: str, progress: Optional[Tuple[int, int]] = None
    ) -> None:
        """Step boundary (``progress is None``) or mid-step progress
        hook.  Fires the kernel's fault injector; hangs meet the
        watchdog here."""
        if progress is None:
            self.current_step = step
        injector = self.kernel.fault_injector
        if injector is None:
            return
        try:
            injector.on_step(step, progress)
        except InjectedHang as hang:
            timeout = self.kernel.retry_policy.step_timeout_cycles
            if timeout is not None and hang.stall_cycles >= timeout:
                self.stalled_cycles += timeout
                raise StepTimeout(step, timeout) from hang
            # Stall shorter than the watchdog: the step eventually
            # completes; the requester just pays for the wait.
            self.stalled_cycles += hang.stall_cycles

    def world_stop(self, thread_count: int, reuse_existing: bool = True) -> int:
        """The ``world-stop`` step.  ``reuse_existing`` skips the stop
        (and its cost) when a caller — e.g. a ThreadGroup — already holds
        the world stopped."""
        self.enter(STEP_WORLD_STOP)
        if reuse_existing and self.runtime.is_stopped:
            self.initiated_stop = False
            self.stop_cycles = 0
        else:
            self.initiated_stop = True
            self.stop_cycles = self.runtime.world_stop(thread_count)
        return self.stop_cycles

    # -- outcomes --------------------------------------------------------

    def rollback(self) -> int:
        """Verified rollback: undo the journal newest-first, invalidate
        every guard cache (generation bump), resume the world iff this
        attempt stopped it, and run the sanitizer as the recovery
        oracle.  Returns the cycles the rollback itself cost."""
        entries = len(self.journal)
        self.journal.rollback()
        self.rolled_back = True
        self.runtime.on_move_rollback()
        if self.initiated_stop:
            self.runtime.resume()
        self.kernel.charge_stat("moves_rolled_back", pid=self.pid)
        if self.kernel.tracer is not None:
            self.kernel.tracer.instant(
                "move.rollback", "resilience",
                {"operation": self.operation, "step": self.current_step,
                 "journal_entries": entries},
            )
        self.kernel._sanitize("move-rollback")
        return entries * UNDO_CYCLES_PER_RECORD

    def commit(self) -> None:
        self.journal.commit()


# ---------------------------------------------------------------------------
# The retry driver
# ---------------------------------------------------------------------------


def drive_transaction(
    kernel,
    process,
    runtime,
    operation: str,
    attempt: Callable[[MoveTransaction], tuple],
    lo: int,
    hi: int,
    charge_move_cycles: bool = True,
):
    """Run ``attempt`` under retry/backoff/degradation.

    ``attempt(txn)`` performs one full transaction attempt and returns a
    result tuple whose *last* element is the attempt's cycle total.  On
    success the wasted cycles of earlier failed attempts (world stops,
    stalls, rollbacks, backoff) are folded into that total.  On
    exhaustion a :class:`MoveError` carrying a structured
    :class:`MoveFailure` is raised; the machine state is the pre-move
    state (verified by rollback + sanitizer).
    """
    policy: RetryPolicy = kernel.retry_policy
    if kernel.fault_injector is not None:
        kernel.fault_injector.begin_move()
    wasted = 0
    attempts = 0
    while True:
        attempts += 1
        kernel.charge_stat("moves_attempted", pid=process.pid)
        txn = MoveTransaction(kernel, runtime, operation, pid=process.pid)
        try:
            result = attempt(txn)
        except RollbackError:
            raise
        except ReproError as exc:
            wasted += txn.stop_cycles + txn.stalled_cycles
            wasted += txn.rollback()
            transient = isinstance(exc, (InjectedFault, StepTimeout))
            if transient and policy.should_retry(attempts):
                backoff = policy.backoff_cycles(attempts)
                wasted += backoff
                kernel.charge_stat("move_retries", pid=process.pid)
                kernel.charge_stat("backoff_cycles", backoff, pid=process.pid)
                if kernel.tracer is not None:
                    kernel.tracer.instant(
                        "move.retry", "resilience",
                        {"operation": operation, "attempt": attempts,
                         "backoff_cycles": backoff, "error": str(exc)},
                    )
                continue
            failure = MoveFailure(
                pid=process.pid,
                operation=operation,
                lo=lo,
                hi=hi,
                step=txn.current_step,
                error=str(exc),
                attempts=attempts,
                cycles_wasted=wasted,
                clock_cycles=kernel.clock_cycles,
            )
            if kernel.degradation is not None:
                kernel.degradation.record_failure(failure)
                kernel.charge_stat("moves_degraded", pid=process.pid)
                if kernel.tracer is not None:
                    kernel.tracer.instant(
                        "move.degraded", "resilience",
                        {"operation": operation, "lo": lo, "hi": hi,
                         "step": txn.current_step, "attempts": attempts},
                    )
            if charge_move_cycles:
                kernel.charge_stat("move_cycles", wasted, pid=process.pid)
            kernel.record_pause(process.pid, wasted)
            error = MoveError(
                f"{operation} of [{lo:#x}, {hi:#x}) failed at step "
                f"{txn.current_step!r} after {attempts} attempt(s): {exc}",
                step=txn.current_step,
                attempts=attempts,
                lo=lo,
                hi=hi,
                cycles_wasted=wasted,
            )
            error.failure = failure
            raise error from exc
        txn.commit()
        kernel.charge_stat("moves_committed", pid=process.pid)
        if kernel.tracer is not None:
            kernel.tracer.instant(
                "move.commit", "resilience",
                {"operation": operation, "lo": lo, "hi": hi,
                 "attempts": attempts, "wasted_cycles": wasted},
            )
        total = result[-1] + wasted
        if charge_move_cycles:
            kernel.charge_stat("move_cycles", total, pid=process.pid)
        kernel.record_pause(process.pid, total)
        return result[:-1] + (total,)


# ---------------------------------------------------------------------------
# The three transactional request bodies
# ---------------------------------------------------------------------------


def install_move_metadata(txn: MoveTransaction, kernel, process, plan, destination: int) -> None:
    """The kernel-side metadata tail of a page move: region table,
    heap/globals/layout rebase, and source-frame release — every mutation
    journaled against ``txn``.  Shared verbatim by the serial protocol
    (:func:`execute_page_move`) and the incremental batch driver's flip,
    so the two paths cannot drift."""
    from repro.kernel.pagetable import PAGE_SIZE
    from repro.runtime.regions import PERM_RWX, Region

    regions = process.regions
    journal = txn.journal

    # Region update: the moved range loses permission, the destination
    # gains it; adjacent same-permission regions re-coalesce.  The undo
    # reinstalls the saved array verbatim (and bumps the generation).
    txn.enter(STEP_REGION_INSTALL)
    saved_regions = regions.regions
    journal.record(
        STEP_REGION_INSTALL,
        "reinstall pre-move region array",
        lambda saved=saved_regions: regions.replace_all(saved),
    )
    source_region = regions.find(plan.lo)
    perms = source_region.perms if source_region is not None else PERM_RWX
    regions.remove_range(plan.lo, plan.hi)
    regions.add(Region(destination, plan.length, perms))
    regions.coalesce()

    # Kernel-side metadata follows the move: the heap allocator's
    # address set, the globals symbol map, and segment bases.
    txn.enter(STEP_KERNEL_METADATA)
    delta = destination - plan.lo
    if process.heap is not None:
        heap_state = process.heap.snapshot_state()
        journal.record(
            STEP_KERNEL_METADATA,
            "restore heap allocator metadata",
            lambda s=heap_state: process.heap.restore_state(s),
        )
        process.heap.rebase_range(plan.lo, plan.hi, delta)
    saved_globals = dict(process.globals_map)
    def restore_globals(saved=saved_globals):
        process.globals_map.clear()
        process.globals_map.update(saved)
    journal.record(STEP_KERNEL_METADATA, "restore globals map", restore_globals)
    for symbol, address in list(process.globals_map.items()):
        if plan.lo <= address < plan.hi:
            process.globals_map[symbol] = address + delta
    layout = process.layout
    layout_attrs = ("stack_base", "globals_base", "code_base", "heap_base")
    saved_layout = tuple(getattr(layout, attr) for attr in layout_attrs)
    def restore_layout(saved=saved_layout):
        for attr, value in zip(layout_attrs, saved):
            setattr(layout, attr, value)
    journal.record(STEP_KERNEL_METADATA, "restore segment bases", restore_layout)
    for attr in layout_attrs:
        segment_base = getattr(layout, attr)
        if plan.lo <= segment_base < plan.hi:
            setattr(layout, attr, segment_base + delta)

    # The old frames return to the kernel; undo re-claims exactly them.
    # When the source pages sit in a CoW share group (this move is the
    # group's own ``cow-break`` service — admission refuses everyone
    # else), only this tenant's membership detaches: frames still mapped
    # by other members stay allocated, frames whose refcount hit zero
    # are freed.  Undo reattaches the membership and re-claims exactly
    # what was freed; the undo is recorded BEFORE the detach so a fault
    # *during* the detach still rolls back.
    txn.enter(STEP_RELEASE_FRAMES)
    source_pages = plan.length // PAGE_SIZE
    shares = getattr(kernel, "shares", None)
    if shares is not None and shares.range_shared(process.pid, plan.lo, plan.hi):
        released_holder: list = []
        def reattach_shared(
            base=plan.lo, count=source_pages, holder=released_holder
        ):
            shares.reattach_range(process.pid, base, count, holder)
        journal.record(
            STEP_RELEASE_FRAMES, "reattach shared source pages", reattach_shared
        )
        shares.detach_range(process.pid, plan.lo, source_pages, released_holder)
    else:
        def reclaim_source(base=plan.lo, count=source_pages):
            if not kernel.frames.alloc_at(base // PAGE_SIZE, count):
                raise RollbackError(
                    f"source frames at {base:#x} were reallocated mid-rollback"
                )
        journal.record(
            STEP_RELEASE_FRAMES, "re-claim source frames", reclaim_source
        )
        kernel.frames.free_address(plan.lo, source_pages)


def execute_page_move(
    txn: MoveTransaction,
    kernel,
    process,
    lo: int,
    hi: int,
    register_snapshots,
    destination: Optional[int],
    thread_count: int,
    reason: str,
):
    """One attempt of the full Figure 8 page move (kernel side)."""
    from repro.kernel.pagetable import PAGE_SHIFT, PAGE_SIZE

    runtime = process.runtime
    journal = txn.journal
    kernel._trace(1, f"request page move [{lo:#x}, {hi:#x})")

    # A caller-claimed destination belongs to the transaction from the
    # very first step of the attempt: a fault anywhere before the
    # reserve step (world stop, negotiation, reserve entry) must still
    # free those frames on rollback, or they leak — the caller is told
    # never to free a destination after a MoveError.  On a retry the
    # previous rollback already released the range (it is free again),
    # so the reserve step below re-claims and re-journals it instead.
    adopted = (
        destination is not None
        and destination >= 0
        and destination % PAGE_SIZE == 0
        and destination // PAGE_SIZE < kernel.frames.total_frames
        and not kernel.frames.frame_is_free(destination // PAGE_SIZE)
    )
    if adopted:
        claimed_pages = (hi - lo) // PAGE_SIZE
        journal.record(
            STEP_WORLD_STOP,
            f"release adopted destination [{destination:#x}, "
            f"+{claimed_pages} page(s))",
            lambda d=destination, n=claimed_pages: kernel.frames.free_address(
                d, n
            ),
        )

    # Steps 2-3: signal all threads; they dump registers and barrier.
    txn.world_stop(thread_count, reuse_existing=True)
    kernel._trace(2, f"signal {thread_count} thread(s)")
    kernel._trace(3, "threads dump registers and enter signal handlers")
    kernel._trace(4, "barrier; negotiate move with the kernel module")

    # Step 4: negotiate — the runtime may expand the page set.
    txn.enter(STEP_NEGOTIATE)
    plan = runtime.patcher.plan_move(lo, hi)
    kernel._trace(
        5,
        f"negotiated source range [{plan.lo:#x}, {plan.hi:#x})"
        + (" (expanded)" if plan.expanded else ""),
    )

    # Quiesce translation clients: any agent streaming the negotiated
    # range guard-free must drain its lease before a single byte moves
    # (SPARTA's contract).  The step fires even with no mediator
    # attached so the fault campaign always has this surface; drained
    # leases are journaled (rollback re-grants them), and a client that
    # refuses raises a non-transient QuiesceFailure — the move degrades.
    txn.enter(STEP_QUIESCE_AGENTS)
    if kernel.agents is not None:
        kernel.agents.quiesce_for_move(txn, process, plan.lo, plan.hi)
    else:
        txn.enter(STEP_QUIESCE_AGENTS, (1, 1))

    # Reserve the destination.  The transaction owns it either way: a
    # kernel-allocated range is allocated here; a caller-claimed range is
    # adopted (and re-claimed on retry, since the previous attempt's
    # rollback released it).  Rollback always frees it, so the machine
    # holds no orphan frames at the recovery-oracle checkpoint — callers
    # must NOT free the destination again after a MoveError.
    txn.enter(STEP_RESERVE)
    pages = plan.length // PAGE_SIZE
    if destination is None:
        destination = kernel.frames.alloc_address(pages)
    else:
        frame = destination // PAGE_SIZE
        if (
            destination < 0
            or destination % PAGE_SIZE
            or frame + pages > kernel.frames.total_frames
        ):
            raise KernelError(
                f"destination {destination:#x} is not a page-aligned "
                f"{pages}-page range inside physical memory"
            )
        if kernel.frames.frame_is_free(frame):
            if not kernel.frames.alloc_at(frame, pages):
                raise KernelError(
                    f"destination [{destination:#x}, +{pages} page(s)) was "
                    "partially reallocated between attempts"
                )
    if not adopted:
        # An adopted (caller-claimed) destination was journaled at
        # attempt start; recording again here would double-free it.
        journal.record(
            STEP_RESERVE,
            f"release destination [{destination:#x}, +{pages} page(s))",
            lambda d=destination, n=pages: kernel.frames.free_address(d, n),
        )
    kernel._trace(6, f"{len(plan.allocations)} affected allocation(s) determined")

    # Steps 5-11: the runtime patches and moves (journaled internally).
    cost = runtime.patcher.execute_move(
        plan,
        destination,
        register_snapshots,
        journal=journal,
        fault_hook=txn.enter,
    )
    kernel._trace(7, "patches computed for every escape")
    kernel._trace(8, "escapes patched to post-move addresses")
    kernel._trace(
        9,
        f"register snapshots patched "
        f"({len(register_snapshots or [])} thread frame(s))",
    )
    kernel._trace(10, f"data moved to [{destination:#x}, "
                      f"{destination + plan.length:#x})")
    kernel._trace(11, "barrier before resume")

    install_move_metadata(txn, kernel, process, plan, destination)

    # Step 12 — the commit point.  Everything after this line is
    # observable; nothing before it is.
    txn.enter(STEP_RESUME)
    process.pages_moved += plan.page_count
    kernel.charge_stat("carat_moves", pid=process.pid)
    runtime.stats.moves_serviced += 1
    runtime.stats.move_cost_accum = runtime.stats.move_cost_accum + cost
    kernel.notifier.pte_change(
        process.pid, plan.lo >> PAGE_SHIFT, kernel.clock_cycles, reason
    )
    if txn.initiated_stop:
        runtime.resume()
    kernel._trace(12, "completion indicated; threads resume")
    kernel._sanitize("page-move")
    return plan, cost, txn.stop_cycles + txn.stalled_cycles + cost.total


def execute_allocation_move(
    txn: MoveTransaction,
    kernel,
    process,
    allocation,
    register_snapshots,
    destination: Optional[int],
    thread_count: int,
):
    """One attempt of an allocation-granularity move (Section 6)."""
    runtime = process.runtime
    journal = txn.journal
    txn.world_stop(thread_count, reuse_existing=True)

    txn.enter(STEP_RESERVE)
    old_address = allocation.address
    if destination is None:
        if process.heap is None:
            raise KernelError("no heap to place the allocation in")
        heap_state = process.heap.snapshot_state()
        journal.record(
            STEP_RESERVE,
            "restore heap allocator metadata (destination malloc)",
            lambda s=heap_state: process.heap.restore_state(s),
        )
        destination = process.heap.malloc(allocation.size)

    cost = runtime.patcher.move_allocation(
        allocation,
        destination,
        register_snapshots,
        journal=journal,
        fault_hook=txn.enter,
    )

    # The old bytes return to the heap's free space.
    txn.enter(STEP_RELEASE_OLD)
    if process.heap is not None and process.heap.size_of(old_address) is not None:
        heap_state = process.heap.snapshot_state()
        journal.record(
            STEP_RELEASE_OLD,
            "restore heap allocator metadata (old block free)",
            lambda s=heap_state: process.heap.restore_state(s),
        )
        process.heap.free(old_address)

    txn.enter(STEP_RESUME)
    runtime.stats.moves_serviced += 1
    runtime.stats.move_cost_accum = runtime.stats.move_cost_accum + cost
    if txn.initiated_stop:
        runtime.resume()
    kernel._sanitize("allocation-move")
    return cost, txn.stop_cycles + txn.stalled_cycles + cost.total


def execute_protection_change(
    txn: MoveTransaction,
    kernel,
    process,
    base: int,
    length: int,
    perms: int,
    thread_count: int,
):
    """One attempt of a protection change (world-stop, region entry
    modification, resume — Section 4.4)."""
    runtime = process.runtime
    regions = process.regions
    txn.world_stop(thread_count, reuse_existing=True)

    txn.enter(STEP_REGION_PERMS)
    saved_regions = regions.regions
    txn.journal.record(
        STEP_REGION_PERMS,
        "reinstall pre-change region array",
        lambda saved=saved_regions: regions.replace_all(saved),
    )
    regions.set_range_perms(base, base + length, perms)

    txn.enter(STEP_RESUME)
    if txn.initiated_stop:
        runtime.resume()
    kernel.charge_stat("carat_protection_changes", pid=process.pid)
    kernel._sanitize("protection-change")
    return (
        txn.stop_cycles + txn.stalled_cycles + kernel.costs.alloc_table_update,
    )
