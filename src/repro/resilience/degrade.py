"""Graceful degradation: keep running when moves keep failing.

When a move exhausts its retries the kernel must not wedge the policy
engine or corrupt state — it records a structured :class:`MoveFailure`,
quarantines the un-movable range (its pages become *pinned*: further
move requests are refused at admission, and the policy daemons skip
plans that touch it), and puts the policy engine into a short cooldown
so it stops hammering a struggling protocol.  The program itself never
notices: CARAT moves are transparent, so a move that never happens only
costs the *policy* its placement, not the program its correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class MoveFailure:
    """One exhausted move request, as structured data (never a bare
    string): who, where, which protocol step, and what it cost."""

    pid: int
    operation: str  # "page-move" | "allocation-move" | "protection-change"
    lo: int
    hi: int
    step: str
    error: str
    attempts: int
    cycles_wasted: int
    clock_cycles: int

    def describe(self) -> str:
        return (
            f"{self.operation} [{self.lo:#x}, {self.hi:#x}) pid={self.pid} "
            f"failed at step {self.step!r} after {self.attempts} attempt(s) "
            f"({self.cycles_wasted} cycles wasted): {self.error}"
        )


@dataclass
class DegradationManager:
    """Tracks failed moves and the ranges they poisoned.

    Attach to a kernel via :meth:`Kernel.attach_degradation`.  The
    kernel records every exhausted move here instead of leaving callers
    to crash; the policy engine consults :meth:`allows` before planning
    and :meth:`in_cooldown` before each epoch.
    """

    #: Epochs the policy engine idles after each recorded failure.
    cooldown_epochs: int = 2
    failures: List[MoveFailure] = field(default_factory=list)
    #: Quarantined (pinned) byte ranges — refused at move admission.
    quarantined: List[Tuple[int, int]] = field(default_factory=list)
    _cooldown_left: int = 0

    def record_failure(self, failure: MoveFailure) -> None:
        self.failures.append(failure)
        if failure.hi > failure.lo and not self.is_quarantined(
            failure.lo, failure.hi
        ):
            self.quarantined.append((failure.lo, failure.hi))
        self._cooldown_left = max(self._cooldown_left, self.cooldown_epochs)

    # -- admission -------------------------------------------------------

    def allows(self, lo: int, hi: int) -> bool:
        """May the kernel attempt a move of ``[lo, hi)``?  False once the
        range overlaps a quarantined (pinned) one."""
        return not self.is_quarantined(lo, hi)

    def is_quarantined(self, lo: int, hi: int) -> bool:
        return any(lo < q_hi and q_lo < hi for q_lo, q_hi in self.quarantined)

    def pinned_pages(self, page_size: int = 4096) -> int:
        """Pages covered by quarantined ranges (page-rounded per range)."""
        return sum(
            (hi - lo + page_size - 1) // page_size
            for lo, hi in self.quarantined
        )

    # -- policy cooldown -------------------------------------------------

    def in_cooldown(self) -> bool:
        return self._cooldown_left > 0

    def consume_cooldown_epoch(self) -> bool:
        """Policy-epoch tick: returns True (and decrements) while the
        engine should run this epoch in degraded mode."""
        if self._cooldown_left <= 0:
            return False
        self._cooldown_left -= 1
        return True

    # -- reporting -------------------------------------------------------

    def describe(self) -> str:
        if not self.failures:
            return "no move failures"
        return (
            f"{len(self.failures)} move failure(s), "
            f"{len(self.quarantined)} quarantined range(s) "
            f"({self.pinned_pages()} pinned page(s)); last: "
            f"{self.failures[-1].describe()}"
        )
