"""Graceful degradation: keep running when moves keep failing.

When a move exhausts its retries the kernel must not wedge the policy
engine or corrupt state — it records a structured :class:`MoveFailure`,
quarantines the un-movable range (its pages become *pinned*: further
move requests are refused at admission, and the policy daemons skip
plans that touch it), and puts the policy engine into a short cooldown
so it stops hammering a struggling protocol.  The program itself never
notices: CARAT moves are transparent, so a move that never happens only
costs the *policy* its placement, not the program its correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class MoveFailure:
    """One exhausted move request, as structured data (never a bare
    string): who, where, which protocol step, and what it cost."""

    pid: int
    operation: str  # "page-move" | "allocation-move" | "protection-change"
    lo: int
    hi: int
    step: str
    error: str
    attempts: int
    cycles_wasted: int
    clock_cycles: int

    def describe(self) -> str:
        return (
            f"{self.operation} [{self.lo:#x}, {self.hi:#x}) pid={self.pid} "
            f"failed at step {self.step!r} after {self.attempts} attempt(s) "
            f"({self.cycles_wasted} cycles wasted): {self.error}"
        )


@dataclass
class DegradationManager:
    """Tracks failed moves and the ranges they poisoned.

    Attach to a kernel via :meth:`Kernel.attach_degradation`.  The
    kernel records every exhausted move here instead of leaving callers
    to crash; the policy engine consults :meth:`allows` before planning
    and :meth:`in_cooldown` before each epoch.
    """

    #: Epochs the policy engine idles after each recorded failure.
    cooldown_epochs: int = 2
    failures: List[MoveFailure] = field(default_factory=list)
    #: Quarantined (pinned) byte ranges — refused at move admission.
    quarantined: List[Tuple[int, int]] = field(default_factory=list)
    _cooldown_left: int = 0
    #: Epoch clock for quarantine aging (advanced by long-horizon
    #: drivers via :meth:`advance_epoch`; untouched elsewhere, so
    #: short-run behavior is unchanged: quarantines persist).
    epoch: int = 0
    #: range -> the epoch it was quarantined at.
    quarantine_entered: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Ranges released back to movability, in release order.
    released: List[Tuple[int, int]] = field(default_factory=list)

    def record_failure(self, failure: MoveFailure) -> None:
        self.failures.append(failure)
        if failure.hi > failure.lo and not self.is_quarantined(
            failure.lo, failure.hi
        ):
            self.quarantined.append((failure.lo, failure.hi))
            self.quarantine_entered[(failure.lo, failure.hi)] = self.epoch
        self._cooldown_left = max(self._cooldown_left, self.cooldown_epochs)

    # -- admission -------------------------------------------------------

    def allows(self, lo: int, hi: int) -> bool:
        """May the kernel attempt a move of ``[lo, hi)``?  False once the
        range overlaps a quarantined (pinned) one."""
        return not self.is_quarantined(lo, hi)

    def is_quarantined(self, lo: int, hi: int) -> bool:
        return any(lo < q_hi and q_lo < hi for q_lo, q_hi in self.quarantined)

    def pinned_pages(self, page_size: int = 4096) -> int:
        """Pages covered by quarantined ranges (page-rounded per range)."""
        return sum(
            (hi - lo + page_size - 1) // page_size
            for lo, hi in self.quarantined
        )

    # -- quarantine aging and release ------------------------------------

    def advance_epoch(self) -> None:
        """Tick the quarantine age clock (long-horizon drivers call this
        once per soak epoch)."""
        self.epoch += 1

    def quarantine_age(self, lo: int, hi: int) -> int:
        """Epochs since ``[lo, hi)`` was quarantined."""
        return self.epoch - self.quarantine_entered[(lo, hi)]

    def oldest_quarantine_age(self) -> int:
        """Age of the longest-pinned quarantine (0 when none)."""
        if not self.quarantined:
            return 0
        return max(self.quarantine_age(lo, hi) for lo, hi in self.quarantined)

    def release(self, lo: int, hi: int) -> bool:
        """Un-quarantine the exact range ``[lo, hi)``: its pages become
        movable again.  Returns False when the range is not quarantined."""
        key = (lo, hi)
        if key not in self.quarantine_entered:
            return False
        self.quarantined.remove(key)
        del self.quarantine_entered[key]
        self.released.append(key)
        return True

    def release_expired(
        self, min_age: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Release every quarantined range at least ``min_age`` epochs
        old (default: :attr:`cooldown_epochs`) and return them.  The
        quarantine was protecting the protocol from a range that kept
        failing; once the cooldown has elapsed the fault is presumed
        transient and the range earns another chance — if it fails
        again it is simply re-quarantined with a fresh entry epoch."""
        if min_age is None:
            min_age = self.cooldown_epochs
        expired = [
            (lo, hi)
            for lo, hi in self.quarantined
            if self.quarantine_age(lo, hi) >= min_age
        ]
        for lo, hi in expired:
            self.release(lo, hi)
        return expired

    # -- policy cooldown -------------------------------------------------

    def in_cooldown(self) -> bool:
        return self._cooldown_left > 0

    def consume_cooldown_epoch(self) -> bool:
        """Policy-epoch tick: returns True (and decrements) while the
        engine should run this epoch in degraded mode."""
        if self._cooldown_left <= 0:
            return False
        self._cooldown_left -= 1
        return True

    # -- reporting -------------------------------------------------------

    def describe(self) -> str:
        if not self.failures:
            return "no move failures"
        return (
            f"{len(self.failures)} move failure(s), "
            f"{len(self.quarantined)} quarantined range(s) "
            f"({self.pinned_pages()} pinned page(s)); last: "
            f"{self.failures[-1].describe()}"
        )
