"""The asynchronous move queue: batched, chunked, bounded-pause moves.

The serial protocol stops the world for the *entire* Figure 8 sequence —
negotiate, patch every escape, copy every byte — so a 16-page move costs
the program a multi-thousand-cycle pause.  The :class:`MoveQueue` turns
policy-initiated moves into a three-stage pipeline that bounds what any
single pause can cost:

1. **Enqueue** — compaction/tiering daemons (and the fairness arbiter)
   enqueue a :class:`MoveRequest` instead of calling
   ``request_page_move`` synchronously.  The destination frames are
   already claimed by the daemon; admission control runs immediately so
   a quarantined or CoW-pinned range is refused before any work.
2. **Pre-copy chunks** — at every service point (``advance_clock``,
   between scheduler quanta, between thread rounds) the queue advances
   the in-flight batch by one chunk of at most ``chunk_budget`` cycles:
   escape scanning and data streaming run with the world *running*
   (see :class:`~repro.runtime.patching.IncrementalMove`).  Guards that
   touch an in-flight source range pay a small stall toll and mark the
   page dirty (the write barrier); everything else proceeds untolled —
   that is the fine-grained region locking.
3. **Flip** — once every item in the batch has streamed out, ONE world
   stop covers the whole batch: per item, escapes recorded since the
   window opened are re-scanned, escapes/registers are patched against
   fresh state, dirtied pages re-copied, and the kernel metadata tail
   (:func:`~repro.resilience.transaction.install_move_metadata`)
   installed.  The stop's cost is amortized over the batch.

The whole batch is ONE transaction: every mutation from the first
pre-copy byte to the last metadata install is journaled, so a fault at
any chunk boundary rolls every item back, closes the dirty-tracking
windows, and retries (transient) or degrades (exhausted) exactly like
the serial driver.  A move whose geometry changed between enqueue and
service (the program freed or grew allocations) raises
:class:`StaleMove` — transient, because the retry re-plans and either
shrinks the request or drops it.

Accounting invariant: every chunk and every flip charges ``move_cycles``
and appends to ``kernel.pause_log`` with the *same* number, so per
tenant ``sum(pause_log) == move/fault cycles charged`` holds with the
queue on or off — and p99 pause collapses from the serial protocol's
full-move cost to ``max(chunk_budget, flip cost)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import MoveError, ReproError, RollbackError
from repro.resilience.degrade import MoveFailure
from repro.resilience.journal import (
    STEP_NEGOTIATE,
    STEP_QUIESCE_AGENTS,
    STEP_RESERVE,
    STEP_RESUME,
)
from repro.resilience.retry import InjectedFault, StepTimeout
from repro.resilience.transaction import MoveTransaction, install_move_metadata


class StaleMove(ReproError):
    """The range's geometry changed between enqueue and service."""


@dataclass
class MoveRequest:
    """One deferred policy move, destination frames already claimed."""

    process: object
    lo: int
    page_count: int
    destination: int
    reason: str = "carat-move"
    heat: object = None
    interpreter: object = None
    #: The enqueuing daemon's upper-bound cycle estimate (what it charged
    #: against its epoch budget).
    estimate: int = 0
    #: Whether the destination frames are currently claimed by this
    #: request (a rollback's journal undo releases them).
    destination_claimed: bool = True

    @property
    def hi(self) -> int:
        from repro.kernel.pagetable import PAGE_SIZE

        return self.lo + self.page_count * PAGE_SIZE

    @property
    def dest_hi(self) -> int:
        from repro.kernel.pagetable import PAGE_SIZE

        return self.destination + self.page_count * PAGE_SIZE


@dataclass
class QueueStats:
    enqueued: int = 0
    refused: int = 0
    stale_drops: int = 0
    batches: int = 0
    chunks: int = 0
    flips: int = 0
    serviced: int = 0
    retries: int = 0
    degraded: int = 0


class _Item:
    """One request's in-flight state within the current batch attempt."""

    __slots__ = ("request", "plan", "window", "inc")

    def __init__(self, request: MoveRequest) -> None:
        self.request = request
        self.plan = None
        self.window = None
        self.inc = None


class _Batch:
    """One same-tenant batch sharing a transaction and one flip stop."""

    __slots__ = ("pid", "requests", "items", "txn", "attempts", "wasted")

    def __init__(self, pid: int, requests: List[MoveRequest]) -> None:
        self.pid = pid
        self.requests = requests
        self.items: List[_Item] = []
        self.txn: Optional[MoveTransaction] = None
        self.attempts = 0
        self.wasted = 0


class MoveQueue:
    """Deferred-move service; see module docstring.

    ``batch_size`` caps how many same-tenant requests share one flip
    stop; ``chunk_budget`` caps the cycles any single pre-copy chunk may
    cost (0 = unchunked: the whole pre-copy runs in one service step,
    still without stopping the world).
    """

    def __init__(
        self,
        kernel,
        batch_size: int = 4,
        chunk_budget: int = 0,
        thread_count: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if chunk_budget < 0:
            raise ValueError("chunk_budget must be >= 0")
        self.kernel = kernel
        self.batch_size = batch_size
        self.chunk_budget = chunk_budget
        self.thread_count = thread_count
        self.pending: Deque[MoveRequest] = deque()
        self.stats = QueueStats()
        self._batch: Optional[_Batch] = None
        self._stepping = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def enqueue(self, request: MoveRequest) -> bool:
        """Accept a move whose destination frames the caller has already
        claimed.  Refusal (quarantined / CoW-pinned range) releases the
        destination and returns False — mirroring what a degraded
        synchronous move would leave behind."""
        try:
            self.kernel._check_admission(
                request.process, "page-move", request.lo, request.hi,
                reason=request.reason, destination=request.destination,
            )
        except MoveError:
            if request.destination_claimed:
                self.kernel.frames.free_address(
                    request.destination, request.page_count
                )
                request.destination_claimed = False
            self.stats.refused += 1
            return False
        self.pending.append(request)
        self.stats.enqueued += 1
        return True

    def overlaps_pending(self, pid: int, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` overlaps any queued or in-flight source
        range of tenant ``pid`` — policy daemons skip such extents so a
        range is never selected twice."""
        for request in self.pending:
            if request.process.pid == pid and lo < request.hi and hi > request.lo:
                return True
        if self._batch is not None and self._batch.pid == pid:
            for item in self._batch.items:
                plan = item.plan
                if plan is not None and lo < plan.hi and hi > plan.lo:
                    return True
            for request in self._batch.requests:
                if lo < request.hi and hi > request.lo:
                    return True
        return False

    def destination_ranges(self) -> List[Tuple[int, int]]:
        """Claimed destination byte ranges of every queued and in-flight
        request — the sanitizer's frame-ownership rule exempts these
        (they are owned by the move in flight, not leaked)."""
        ranges = [
            (request.destination, request.dest_hi)
            for request in self.pending
            if request.destination_claimed
        ]
        if self._batch is not None:
            ranges.extend(
                (request.destination, request.dest_hi)
                for request in self._batch.requests
                if request.destination_claimed
            )
        return ranges

    @property
    def idle(self) -> bool:
        return not self.pending and self._batch is None

    # ------------------------------------------------------------------
    # Service side (called from advance_clock / scheduler / thread group)
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Advance the queue by one bounded unit of work: start a batch,
        run one pre-copy chunk, or flip a fully pre-copied batch.
        Returns True if any work was done."""
        if self._stepping:
            return False  # re-entered from a sanitizer/policy callback
        self._stepping = True
        try:
            return self._step()
        finally:
            self._stepping = False

    def drain_all(self) -> None:
        """Run the queue dry (end of run, before the final sanitizer
        checkpoint)."""
        while self.step():
            pass

    # -- batch lifecycle -------------------------------------------------

    def _step(self) -> bool:
        if self._batch is None:
            if not self._start_batch():
                return False
        batch = self._batch
        try:
            self._advance(batch)
        except RollbackError:
            raise
        except ReproError as exc:
            self._handle_fault(batch, exc)
        return True

    def _start_batch(self) -> bool:
        """Form the next batch: the head request plus up to
        ``batch_size - 1`` more from the same tenant (batches share one
        transaction and one flip stop, so they must share a PID)."""
        while self.pending:
            head = self.pending.popleft()
            if not self._still_admissible(head):
                continue
            requests = [head]
            pid = head.process.pid
            kept: List[MoveRequest] = []
            while self.pending and len(requests) < self.batch_size:
                request = self.pending.popleft()
                if request.process.pid != pid:
                    kept.append(request)
                    continue
                if any(
                    request.lo < taken.hi and request.hi > taken.lo
                    for taken in requests
                ):
                    # Overlapping source ranges cannot share a batch: the
                    # first flip rebases the range out from under the
                    # second.  Defer it; re-planning the next batch will
                    # drop it as stale.
                    kept.append(request)
                    continue
                if self._still_admissible(request):
                    requests.append(request)
            self.pending.extendleft(reversed(kept))
            batch = _Batch(pid, requests)
            self._batch = batch
            self.stats.batches += 1
            if self.kernel.fault_injector is not None:
                self.kernel.fault_injector.begin_move()
            self._attempt(batch)
            if self._batch is not None:
                return True
            # The whole batch went stale at planning; try the next
            # pending request rather than stalling the queue this step.
        return False

    def _still_admissible(self, request: MoveRequest) -> bool:
        """Re-run admission at service time (a range may have been
        quarantined or CoW-shared since enqueue); a refused request drops
        and its destination frames return to the kernel."""
        try:
            self.kernel._check_admission(
                request.process, "page-move", request.lo, request.hi,
                reason=request.reason, destination=request.destination,
            )
        except MoveError:
            self._drop(request)
            return False
        return True

    def _drop(self, request: MoveRequest) -> None:
        if request.destination_claimed:
            self.kernel.frames.free_address(
                request.destination, request.page_count
            )
            request.destination_claimed = False
        self.stats.stale_drops += 1

    def _attempt(self, batch: _Batch) -> None:
        """One protected attempt: planning and window/mover construction
        have fault surfaces too (negotiate, reserve), so route their
        failures through the same rollback/retry/degrade discipline as
        chunk and flip faults.  Retries recurse through here, bounded by
        the retry policy's ``max_attempts``."""
        try:
            self._begin_attempt(batch)
        except RollbackError:
            raise
        except ReproError as exc:
            self._handle_fault(batch, exc)

    def _begin_attempt(self, batch: _Batch) -> None:
        """One attempt: re-plan every request, re-claim destinations (a
        prior rollback released them), open the dirty-tracking windows,
        and construct the incremental movers.  Requests whose geometry
        grew or shifted drop here (stale); shrunken ones free their
        destination tail and continue."""
        from repro.kernel.pagetable import PAGE_SIZE

        kernel = self.kernel
        batch.attempts += 1
        kernel.charge_stat("moves_attempted", pid=batch.pid)
        txn = MoveTransaction(
            kernel,
            batch.requests[0].process.runtime,
            "page-move-batch",
            pid=batch.pid,
        )
        batch.txn = txn
        batch.items = []
        journal = txn.journal
        for request in list(batch.requests):
            runtime = request.process.runtime
            txn.enter(STEP_NEGOTIATE)
            plan = runtime.patcher.plan_move(request.lo, request.hi)
            if any(
                request.process.regions.find(page) is None
                for page in range(plan.lo, plan.hi, PAGE_SIZE)
            ):
                # The range is no longer (fully) region-backed — an
                # earlier batch moved it out from under this request
                # while it sat queued.  Moving it now would install a
                # region over dead bytes and double-free the source
                # frames at release.  (Zero table allocations is NOT
                # staleness: compaction legitimately moves region-backed
                # pages that hold no tracked allocation.)
                batch.requests.remove(request)
                self._drop(request)
                continue
            if plan.lo != request.lo or plan.page_count > request.page_count:
                # Expanded (or shifted) since enqueue: the claimed
                # destination no longer fits — drop and let the daemon
                # re-plan next epoch.
                batch.requests.remove(request)
                self._drop(request)
                continue
            if plan.page_count < request.page_count:
                # Shrunk: free the destination tail and move what's left.
                tail = request.page_count - plan.page_count
                kernel.frames.free_address(
                    request.destination + plan.page_count * PAGE_SIZE, tail
                )
                request.page_count = plan.page_count
            txn.enter(STEP_RESERVE)
            if not request.destination_claimed:
                frame = request.destination // PAGE_SIZE
                if not kernel.frames.frame_is_free(frame) or not (
                    kernel.frames.alloc_at(frame, plan.page_count)
                ):
                    # Someone took the frames while we were rolled back.
                    batch.requests.remove(request)
                    self.stats.stale_drops += 1
                    continue
                request.destination_claimed = True

            def release_destination(req=request, n=plan.page_count):
                kernel.frames.free_address(req.destination, n)
                req.destination_claimed = False

            journal.record(
                STEP_RESERVE,
                f"release destination [{request.destination:#x}, "
                f"+{plan.page_count} page(s))",
                release_destination,
            )
            item = _Item(request)
            item.plan = plan
            item.window = runtime.open_move_window(plan.lo, plan.hi)
            try:
                item.inc = runtime.patcher.begin_incremental_move(
                    plan,
                    request.destination,
                    journal=journal,
                    fault_hook=txn.enter,
                    window=item.window,
                )
            except ReproError:
                runtime.close_move_window(item.window)
                raise
            batch.items.append(item)
        if not batch.items:
            self._batch = None  # everything went stale; nothing journaled

    # -- chunk / flip ----------------------------------------------------

    def _advance(self, batch: _Batch) -> None:
        for item in batch.items:
            if not item.inc.done_precopy:
                cycles = item.inc.precopy_step(self.chunk_budget)
                if cycles is None:
                    continue  # raced to done; look for the next item
                self._account(batch, item.request, cycles)
                self.stats.chunks += 1
                if self.kernel.tracer is not None:
                    self.kernel.tracer.instant(
                        "move.chunk", "resilience",
                        {"lo": item.plan.lo, "hi": item.plan.hi,
                         "cycles": cycles,
                         "dirty_pages": len(item.window.dirty_pages)},
                        pid=batch.pid,
                    )
                self.kernel._sanitize("move-chunk")
                return
        self._flip(batch)

    def _account(self, batch: _Batch, request: MoveRequest, cycles: int) -> None:
        """The invariant: every unit of move work charges ``move_cycles``
        and logs the same number as a pause."""
        self.kernel.charge_stat("move_cycles", cycles, pid=batch.pid)
        self.kernel.record_pause(batch.pid, cycles)
        if request.interpreter is not None:
            request.interpreter.stats.cycles += cycles

    def _flip(self, batch: _Batch) -> None:
        """The single stop-the-world tail covering the whole batch."""
        from repro.kernel.pagetable import PAGE_SHIFT

        kernel = self.kernel
        txn = batch.txn
        txn.world_stop(self.thread_count, reuse_existing=True)
        # Drain translation-client leases over every batched source range
        # before the flip rebases it (journaled: rollback re-grants every
        # drained lease).  The step fires even with no mediator attached
        # so the fault campaign reaches it on the queued path too.
        txn.enter(STEP_QUIESCE_AGENTS)
        if kernel.agents is not None:
            for item in batch.items:
                kernel.agents.quiesce_for_move(
                    txn, item.request.process, item.plan.lo, item.plan.hi
                )
        else:
            txn.enter(STEP_QUIESCE_AGENTS, (1, 1))
        flip_total = 0
        flipped = []
        for item in batch.items:
            request = item.request
            runtime = request.process.runtime
            txn.enter(STEP_NEGOTIATE)
            fresh = runtime.patcher.plan_move(item.plan.lo, item.plan.hi)
            if fresh.lo != item.plan.lo or fresh.hi != item.plan.hi:
                raise StaleMove(
                    f"move of [{item.plan.lo:#x}, {item.plan.hi:#x}) went "
                    f"stale mid-flight (now [{fresh.lo:#x}, {fresh.hi:#x}))"
                )
            snapshots = None
            interpreter = request.interpreter
            if interpreter is not None and interpreter.frames:
                snapshots = interpreter.register_snapshots()
            cost = item.inc.flip(fresh, snapshots)
            install_move_metadata(
                txn, kernel, request.process, fresh, request.destination
            )
            flip_total += item.inc.flip_cycles
            flipped.append((item, fresh, cost, snapshots))

        # The commit point: everything after this is observable.
        txn.enter(STEP_RESUME)
        for item, fresh, cost, snapshots in flipped:
            request = item.request
            runtime = request.process.runtime
            request.process.pages_moved += fresh.page_count
            kernel.charge_stat("carat_moves", pid=batch.pid)
            runtime.stats.moves_serviced += 1
            runtime.stats.move_cost_accum = runtime.stats.move_cost_accum + cost
            kernel.notifier.pte_change(
                request.process.pid, fresh.lo >> PAGE_SHIFT,
                kernel.clock_cycles, request.reason,
            )
            if snapshots is not None:
                request.interpreter.apply_snapshots(snapshots)
            if request.heat is not None:
                request.heat.rebase_range(
                    fresh.lo, fresh.hi, request.destination - fresh.lo
                )
            runtime.close_move_window(item.window)
        if txn.initiated_stop:
            batch.requests[0].process.runtime.resume()
        txn.commit()
        kernel.charge_stat("moves_committed", pid=batch.pid)
        total = txn.stop_cycles + txn.stalled_cycles + flip_total + batch.wasted
        self._account(batch, batch.requests[0], total)
        if kernel.tracer is not None:
            kernel.tracer.instant(
                "move.commit", "resilience",
                {"operation": "page-move-batch",
                 "moves": len(batch.items),
                 "attempts": batch.attempts,
                 "wasted_cycles": batch.wasted,
                 "flip_cycles": flip_total},
                pid=batch.pid,
            )
        self.stats.flips += 1
        self.stats.serviced += len(batch.items)
        self._batch = None
        kernel._sanitize("page-move")

    # -- fault handling --------------------------------------------------

    def _handle_fault(self, batch: _Batch, exc: ReproError) -> None:
        """Roll the whole batch back; retry transient faults with
        backoff, degrade on exhaustion — the serial driver's discipline,
        applied batch-wide."""
        kernel = self.kernel
        txn = batch.txn
        for item in batch.items:
            item.request.process.runtime.close_move_window(item.window)
        batch.wasted += txn.stop_cycles + txn.stalled_cycles
        batch.wasted += txn.rollback()
        policy = kernel.retry_policy
        transient = isinstance(exc, (InjectedFault, StepTimeout, StaleMove))
        if transient and policy.should_retry(batch.attempts):
            backoff = policy.backoff_cycles(batch.attempts)
            batch.wasted += backoff
            kernel.charge_stat("move_retries", pid=batch.pid)
            kernel.charge_stat("backoff_cycles", backoff, pid=batch.pid)
            self.stats.retries += 1
            if kernel.tracer is not None:
                kernel.tracer.instant(
                    "move.retry", "resilience",
                    {"operation": "page-move-batch",
                     "attempt": batch.attempts,
                     "backoff_cycles": backoff, "error": str(exc)},
                    pid=batch.pid,
                )
            self._attempt(batch)
            if self._batch is None:
                # Every request went stale during re-planning (or the
                # retry itself faulted out); the wasted cycles still get
                # charged and logged.
                self._settle_wasted(batch)
            return
        for request in batch.requests:
            failure = MoveFailure(
                pid=request.process.pid,
                operation="page-move-batch",
                lo=request.lo,
                hi=request.hi,
                step=txn.current_step,
                error=str(exc),
                attempts=batch.attempts,
                cycles_wasted=batch.wasted,
                clock_cycles=kernel.clock_cycles,
            )
            if kernel.degradation is not None:
                kernel.degradation.record_failure(failure)
                kernel.charge_stat("moves_degraded", pid=batch.pid)
                self.stats.degraded += 1
                if kernel.tracer is not None:
                    kernel.tracer.instant(
                        "move.degraded", "resilience",
                        {"operation": "page-move-batch",
                         "lo": request.lo, "hi": request.hi,
                         "step": txn.current_step,
                         "attempts": batch.attempts},
                        pid=batch.pid,
                    )
        self._settle_wasted(batch)
        self._batch = None
        if kernel.degradation is None:
            raise MoveError(
                f"batched page move ({len(batch.requests)} request(s), "
                f"pid {batch.pid}) failed at step {txn.current_step!r} "
                f"after {batch.attempts} attempt(s): {exc}",
                step=txn.current_step,
                attempts=batch.attempts,
                lo=batch.requests[0].lo if batch.requests else 0,
                hi=batch.requests[-1].hi if batch.requests else 0,
                cycles_wasted=batch.wasted,
            ) from exc

    def _settle_wasted(self, batch: _Batch) -> None:
        if batch.wasted and batch.requests:
            self._account(batch, batch.requests[0], batch.wasted)
            batch.wasted = 0
