"""Retry policy for failed move transactions.

A transient fault (an injected crash, a torn step, a watchdog timeout)
rolls the attempt back; the :class:`RetryPolicy` decides whether the
kernel re-drives the move and how many simulated cycles of exponential
backoff separate the attempts.  Backoff is charged to the requester's
cycle bill (and to ``KernelStats.backoff_cycles``) — it is *simulated*
time, so it never calls back into ``Kernel.advance_clock`` where it
could recursively fire policy epochs mid-move.

The per-step watchdog bounds a stuck runtime: an injected hang stalls
for ``stall_cycles``; when that meets or exceeds ``step_timeout_cycles``
the watchdog charges only the timeout window and converts the hang into
a :class:`StepTimeout`, which is retryable like any transient fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError


class InjectedFault(ReproError):
    """A deliberately injected protocol fault (fail-stop at a step, or a
    torn mid-step failure).  Transient: the transaction layer rolls back
    and may retry.  Lives here (not in :mod:`repro.sanitizer.faults`,
    which re-exports it) so the dependency between the resilience and
    sanitizer packages stays one-way."""

    def __init__(self, step: str, kind: str) -> None:
        super().__init__(f"injected {kind} fault at step {step!r}")
        self.step = step
        self.kind = kind


class InjectedHang(InjectedFault):
    """A stuck runtime: the step stalls for ``stall_cycles`` of simulated
    time.  The transaction layer's watchdog either absorbs the stall
    (charging it) or converts it into a retryable :class:`StepTimeout`."""

    def __init__(self, step: str, stall_cycles: int) -> None:
        super().__init__(step, "hang")
        self.stall_cycles = stall_cycles


class StepTimeout(ReproError):
    """The per-step watchdog fired: a protocol step exceeded the retry
    policy's ``step_timeout_cycles`` without completing."""

    def __init__(self, step: str, timeout_cycles: int) -> None:
        super().__init__(
            f"step {step!r} exceeded the {timeout_cycles}-cycle watchdog"
        )
        self.step = step
        self.timeout_cycles = timeout_cycles


@dataclass
class RetryPolicy:
    """How hard the kernel tries before declaring a move failed."""

    #: Total attempts (first try included).  1 = no retries.
    max_attempts: int = 3
    #: Backoff before retry N (1-based) is ``base * factor**(N-1)``,
    #: capped — exponential in simulated cycles.
    backoff_base_cycles: int = 2_000
    backoff_factor: float = 2.0
    backoff_cap_cycles: int = 1_000_000
    #: Per-step watchdog; ``None`` disables it (a hang then simply
    #: charges its full stall and the step completes).
    step_timeout_cycles: Optional[int] = 200_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_cycles < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def should_retry(self, attempts_made: int) -> bool:
        return attempts_made < self.max_attempts

    def backoff_cycles(self, attempts_made: int) -> int:
        """Backoff charged between attempt ``attempts_made`` and the next."""
        raw = self.backoff_base_cycles * self.backoff_factor ** max(
            0, attempts_made - 1
        )
        return int(min(raw, self.backoff_cap_cycles))
