"""Crash-consistent execution of the kernel↔runtime upcall protocol.

CARAT's value proposition rests on Figure 8's move/protection protocol
executing atomically; this package makes that a property instead of a
hope.  :class:`MoveJournal` records every step's mutations as undoable
entries, :class:`MoveTransaction` brackets one attempt (fault hooks,
watchdog, verified rollback), :class:`RetryPolicy` re-drives transient
failures with exponential backoff in simulated cycles, and
:class:`DegradationManager` keeps the policy engine alive when a range
turns out to be un-movable — quarantined pages, pinned ranges, and
structured :class:`MoveFailure` records instead of corrupt state.
"""

from repro.resilience.degrade import DegradationManager, MoveFailure
from repro.resilience.journal import (
    ALLOCATION_MOVE_STEPS,
    PAGE_MOVE_STEPS,
    PROTECTION_STEPS,
    STEP_COPY_DATA,
    STEP_ESCAPE_FLUSH,
    STEP_KERNEL_METADATA,
    STEP_NEGOTIATE,
    STEP_PATCH_ESCAPES,
    STEP_PATCH_REGISTERS,
    STEP_QUIESCE_AGENTS,
    STEP_REBASE_TRACKING,
    STEP_REGION_INSTALL,
    STEP_REGION_PERMS,
    STEP_RELEASE_FRAMES,
    STEP_RELEASE_OLD,
    STEP_RESERVE,
    STEP_RESUME,
    STEP_WORLD_STOP,
    TORN_CAPABLE_STEPS,
    JournalEntry,
    MoveJournal,
)
from repro.resilience.movequeue import MoveQueue, MoveRequest, StaleMove
from repro.resilience.retry import (
    InjectedFault,
    InjectedHang,
    RetryPolicy,
    StepTimeout,
)
from repro.resilience.transaction import (
    MoveTransaction,
    drive_transaction,
    execute_allocation_move,
    execute_page_move,
    execute_protection_change,
    install_move_metadata,
)

__all__ = [
    "ALLOCATION_MOVE_STEPS",
    "DegradationManager",
    "InjectedFault",
    "InjectedHang",
    "JournalEntry",
    "MoveFailure",
    "MoveJournal",
    "MoveQueue",
    "MoveRequest",
    "MoveTransaction",
    "PAGE_MOVE_STEPS",
    "PROTECTION_STEPS",
    "RetryPolicy",
    "STEP_COPY_DATA",
    "STEP_ESCAPE_FLUSH",
    "STEP_KERNEL_METADATA",
    "STEP_NEGOTIATE",
    "STEP_PATCH_ESCAPES",
    "STEP_PATCH_REGISTERS",
    "STEP_QUIESCE_AGENTS",
    "STEP_REBASE_TRACKING",
    "STEP_REGION_INSTALL",
    "STEP_REGION_PERMS",
    "STEP_RELEASE_FRAMES",
    "STEP_RELEASE_OLD",
    "STEP_RESERVE",
    "STEP_RESUME",
    "STEP_WORLD_STOP",
    "StaleMove",
    "StepTimeout",
    "TORN_CAPABLE_STEPS",
    "drive_transaction",
    "execute_allocation_move",
    "execute_page_move",
    "execute_protection_change",
    "install_move_metadata",
]
