"""The Allocation Table (Section 4.2, "Tracking").

Keeps every allocation the program makes — heap blocks, stack blocks, and
static allocations (globals, recorded at load time) — in a red/black tree
keyed by block address, with the block length as the value.  The table
answers the queries page movement needs:

* which allocation contains address X (guard diagnostics, escape
  resolution);
* which allocations overlap a byte range (the kernel's source-page query
  during move negotiation).

Allocation updates are applied eagerly ("the Allocation Map changes
slowly"); escapes are batched separately in
:class:`~repro.runtime.escape_map.AllocationToEscapeMap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.rbtree import RedBlackTree


class AllocationError(ReproError):
    """Overlapping, zero-sized, or unknown-address table operations."""


@dataclass
class Allocation:
    """One tracked block of physical memory."""

    address: int
    size: int
    kind: str = "heap"  # 'heap' | 'stack' | 'global' | 'code'
    live: bool = True

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.address <= address and address + size <= self.end

    def overlaps(self, lo: int, hi: int) -> bool:
        """Does [address, end) intersect [lo, hi)?"""
        return self.address < hi and lo < self.end

    def __repr__(self) -> str:
        return (
            f"<Allocation {self.kind} [{self.address:#x}, {self.end:#x}) "
            f"size={self.size}>"
        )


class AllocationTable:
    """Address-keyed red/black tree of every live allocation."""

    def __init__(self) -> None:
        self._tree = RedBlackTree()
        #: Statistics for the feasibility figures.
        self.total_allocs = 0
        self.total_frees = 0
        self.peak_count = 0

    def __len__(self) -> int:
        return len(self._tree)

    def __iter__(self) -> Iterator[Allocation]:
        for _, allocation in self._tree.items():
            yield allocation

    # -- updates ---------------------------------------------------------------

    def add(self, address: int, size: int, kind: str = "heap") -> Allocation:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        overlapping = self.overlapping(address, address + size)
        if overlapping:
            raise AllocationError(
                f"new allocation [{address:#x}, {address + size:#x}) overlaps "
                f"{overlapping[0]!r}"
            )
        allocation = Allocation(address, size, kind)
        self._tree.insert(address, allocation)
        self.total_allocs += 1
        self.peak_count = max(self.peak_count, len(self._tree))
        return allocation

    def remove(self, address: int) -> Allocation:
        allocation = self._tree.pop(address)
        if allocation is None:
            raise AllocationError(f"no allocation at {address:#x}")
        allocation.live = False
        self.total_frees += 1
        return allocation

    def remove_if_present(self, address: int) -> Optional[Allocation]:
        allocation = self._tree.pop(address)
        if allocation is not None:
            allocation.live = False
            self.total_frees += 1
        return allocation

    def rebase(self, allocation: Allocation, new_address: int) -> None:
        """Move an allocation's key after page movement relocates it."""
        removed = self._tree.pop(allocation.address)
        if removed is not allocation:
            if removed is not None:
                self._tree.insert(removed.address, removed)
            raise AllocationError(
                f"allocation at {allocation.address:#x} is not in the table"
            )
        allocation.address = new_address
        self._tree.insert(new_address, allocation)

    # -- queries ------------------------------------------------------------------

    def at(self, address: int) -> Optional[Allocation]:
        """Allocation starting exactly at ``address``."""
        return self._tree.get(address)

    def find_containing(self, address: int, size: int = 1) -> Optional[Allocation]:
        """The allocation containing [address, address+size), if any."""
        found = self._tree.floor_item(address)
        if found is None:
            return None
        allocation: Allocation = found[1]
        if allocation.contains(address, size):
            return allocation
        return None

    def overlapping(self, lo: int, hi: int) -> List[Allocation]:
        """All allocations intersecting [lo, hi), ascending by address.

        The floor predecessor must be checked too: it may start before
        ``lo`` but reach into the range.
        """
        result: List[Allocation] = []
        found = self._tree.floor_item(lo)
        if found is not None and found[1].overlaps(lo, hi):
            result.append(found[1])
        for _, allocation in self._tree.items_in_range(lo, hi):
            if allocation not in result and allocation.overlaps(lo, hi):
                result.append(allocation)
        return result

    def live_bytes(self) -> int:
        return sum(a.size for a in self)

    def check_invariants(self) -> None:
        self._tree.check_invariants()
        previous_end = None
        for allocation in self:
            if previous_end is not None and allocation.address < previous_end:
                raise AssertionError(
                    f"allocations overlap at {allocation.address:#x}"
                )
            previous_end = allocation.end
