"""Red-black tree keyed by integers.

The paper's Allocation Table "is currently implemented as a C++ red/black
tree whose key is the address of an allocated block" (Section 4.2); this
is the same structure, written out in full (CLRS-style, with a shared NIL
sentinel) because the allocation table's floor/ceiling and range queries
are the hot path of page-move planning.

Supports: insert, delete, exact search, floor (greatest key <= k),
ceiling, min/max, ordered iteration, and range iteration — everything the
allocation table and the region set need.  ``check_invariants`` verifies
the red-black properties and is exercised by the property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Balanced BST keyed by integers (the Allocation Table's engine)."""

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = 0
        self._nil.value = None
        self._nil.color = BLACK
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not None

    def get(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def _find(self, key: int) -> Optional[_Node]:
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def min_item(self) -> Optional[Tuple[int, Any]]:
        if self._root is self._nil:
            return None
        node = self._minimum(self._root)
        return (node.key, node.value)

    def max_item(self) -> Optional[Tuple[int, Any]]:
        if self._root is self._nil:
            return None
        node = self._maximum(self._root)
        return (node.key, node.value)

    def floor_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Greatest (k, v) with k <= key."""
        best: Optional[_Node] = None
        node = self._root
        while node is not self._nil:
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def ceiling_item(self, key: int) -> Optional[Tuple[int, Any]]:
        """Smallest (k, v) with k >= key."""
        best: Optional[_Node] = None
        node = self._root
        while node is not self._nil:
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (ascending key) iteration."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def items_in_range(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Items with lo <= key < hi, ascending."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                if node.key >= lo:
                    stack.append(node)
                    node = node.left
                else:
                    node = node.right
            if not stack:
                return
            node = stack.pop()
            if node.key >= hi:
                return
            yield (node.key, node.value)
            node = node.right

    # -- mutation -----------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or replace."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when absent."""
        node = self._find(key)
        if node is None:
            return False
        self._delete_node(node)
        self._size -= 1
        return True

    def pop(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        if node is None:
            return default
        value = node.value
        self._delete_node(node)
        self._size -= 1
        return value

    # -- internals ------------------------------------------------------------------

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _maximum(self, node: _Node) -> _Node:
        while node.right is not self._nil:
            node = node.right
        return node

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z: _Node) -> None:
        y = z
        y_original_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color is BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # -- validation (for tests) ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the red-black properties; raises AssertionError on violation."""
        assert self._root.color is BLACK, "root must be black"
        assert self._nil.color is BLACK, "sentinel must be black"

        def walk(node: _Node) -> int:
            if node is self._nil:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK, "red node with red left child"
                assert node.right.color is BLACK, "red node with red right child"
            if node.left is not self._nil:
                assert node.left.key < node.key, "BST order violated (left)"
            if node.right is not self._nil:
                assert node.right.key > node.key, "BST order violated (right)"
            left_black = walk(node.left)
            right_black = walk(node.right)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (0 if node.color is RED else 1)

        walk(self._root)
        assert self._size == sum(1 for _ in self.items()), "size mismatch"
