"""Pointer patching for page movement (Figure 8 steps 4-12, Table 3).

When the kernel wants to move a range of physical pages, the runtime:

4.  negotiates the final page set — **page expansion**: allocations must
    move whole, so the source range grows until no allocation straddles
    its boundary;
5-6. queries the Allocation Table for every allocation overlapping the
    final range;
7-8. finds all escapes of those allocations and patches each one to the
    address its pointer will have after the move (pointer *swizzling*);
9.  patches the register snapshots the threads dumped at the world-stop;
10. moves the bytes;
11-12. rebases the Allocation Table / escape map and reports completion.

Every step's cycle cost is accounted separately because Table 3 reports
exactly this breakdown (Page Expand / Patch Gen & Exec / Register Patch /
Allocation & Movement), and the paper's headline ablation — "prototype
w/o expand" — is the same numbers with the expansion column removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import KernelError
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.runtime.allocation_table import Allocation, AllocationTable
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.regions import RegionSet

PAGE_SIZE = 4096


def page_down(address: int) -> int:
    return address & ~(PAGE_SIZE - 1)


def page_up(address: int) -> int:
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class MemoryInterface(Protocol):
    """What the patcher needs from physical memory."""

    def read_u64(self, address: int) -> int: ...

    def write_u64(self, address: int, value: int) -> None: ...

    def copy(self, src: int, dst: int, length: int) -> None: ...


class RegisterSnapshot:
    """A thread's register file dumped on its stack at the world-stop.

    ``slots`` maps a register identifier to its value; ``pointer_slots``
    names the registers the compiler knows are pointer-typed (the paper
    patches conservatively from the type information available at the IR
    level).
    """

    def __init__(
        self,
        thread_id: int,
        slots: Dict[str, int],
        pointer_slots: Optional[set] = None,
    ) -> None:
        self.thread_id = thread_id
        self.slots = dict(slots)
        self.pointer_slots = (
            set(slots.keys()) if pointer_slots is None else set(pointer_slots)
        )

    def patch(self, lo: int, hi: int, delta: int) -> int:
        """Rewrite every pointer register aimed into [lo, hi).  Returns the
        number patched."""
        patched = 0
        for name in self.pointer_slots:
            value = self.slots.get(name)
            if value is not None and lo <= value < hi:
                self.slots[name] = value + delta
                patched += 1
        return patched


@dataclass
class MoveCost:
    """Cycle breakdown of one page movement — one row of Table 3."""

    page_expand: int = 0
    patch_gen_exec: int = 0
    register_patch: int = 0
    alloc_and_move: int = 0

    @property
    def prototype_cost(self) -> int:
        """Expand + patch + registers (the paper's "Prototype Cost" —
        movement excluded because paging pays it too)."""
        return self.page_expand + self.patch_gen_exec + self.register_patch

    @property
    def prototype_wo_expand(self) -> int:
        return self.patch_gen_exec + self.register_patch

    @property
    def total(self) -> int:
        return self.prototype_cost + self.alloc_and_move

    @property
    def wo_expand_fraction(self) -> float:
        """"Prototype w/o Expand / Total Cost" — the fraction not caused by
        the allocation/page granularity mismatch."""
        return self.prototype_wo_expand / self.total if self.total else 0.0

    def __add__(self, other: "MoveCost") -> "MoveCost":
        return MoveCost(
            self.page_expand + other.page_expand,
            self.patch_gen_exec + other.patch_gen_exec,
            self.register_patch + other.register_patch,
            self.alloc_and_move + other.alloc_and_move,
        )


@dataclass
class MovePlan:
    """The negotiated move: the (possibly expanded) source range and the
    allocations inside it."""

    requested_lo: int
    requested_hi: int
    lo: int
    hi: int
    allocations: List[Allocation]
    expand_lookups: int

    @property
    def length(self) -> int:
        return self.hi - self.lo

    @property
    def expanded(self) -> bool:
        return self.lo != self.requested_lo or self.hi != self.requested_hi

    @property
    def page_count(self) -> int:
        return self.length // PAGE_SIZE


class Patcher:
    """Executes the runtime side of page movement."""

    def __init__(
        self,
        table: AllocationTable,
        escapes: AllocationToEscapeMap,
        memory: MemoryInterface,
        costs: CostModel = DEFAULT_COSTS,
        regions: Optional[RegionSet] = None,
    ) -> None:
        self.table = table
        self.escapes = escapes
        self.memory = memory
        self.costs = costs
        #: Region landing zone to generation-invalidate on moves.  A move
        #: changes what addresses mean *before* the kernel reinstalls the
        #: region array, so any guard cache keyed on the generation must
        #: be killed here, not only at the later region mutation.
        self.regions = regions

    # -- step 4-6: negotiation ---------------------------------------------------

    def plan_move(self, lo: int, hi: int) -> MovePlan:
        """Expand [lo, hi) until no allocation straddles a boundary.

        Each round costs one Allocation Table range query.  The kernel can
        veto the expanded plan (see the kernel module's negotiate logic).
        """
        if lo % PAGE_SIZE or hi % PAGE_SIZE:
            raise KernelError("move range must be page-aligned")
        if hi <= lo:
            raise KernelError("empty move range")
        requested_lo, requested_hi = lo, hi
        lookups = 0
        while True:
            lookups += 1
            overlapping = self.table.overlapping(lo, hi)
            new_lo, new_hi = lo, hi
            for allocation in overlapping:
                if allocation.address < new_lo:
                    new_lo = page_down(allocation.address)
                if allocation.end > new_hi:
                    new_hi = page_up(allocation.end)
            if new_lo == lo and new_hi == hi:
                return MovePlan(
                    requested_lo, requested_hi, lo, hi, overlapping, lookups
                )
            lo, hi = new_lo, new_hi

    # -- steps 7-12: patch + move ----------------------------------------------------

    def execute_move(
        self,
        plan: MovePlan,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        flush_escapes: bool = True,
    ) -> MoveCost:
        """Patch every escape and register, move the data, rebase the
        tracking structures.  Returns the cycle cost breakdown."""
        if destination % PAGE_SIZE:
            raise KernelError("destination must be page-aligned")
        delta = destination - plan.lo
        cost = MoveCost()
        cost.page_expand = plan.expand_lookups * self.costs.expand_lookup + len(
            plan.allocations
        ) * self.costs.expand_lookup // 4

        # Escape records are batched; a move forces resolution first.
        if flush_escapes:
            self.escapes.flush(self.table, self.memory.read_u64)

        # Patch escapes (step 7-8): swizzle every pointer into the source
        # range to its post-move address.
        patched_escapes = 0
        for allocation in plan.allocations:
            for location in self.escapes.escapes_of(allocation):
                current = self.memory.read_u64(location)
                if allocation.address <= current < allocation.end:
                    self.memory.write_u64(location, current + delta)
                    patched_escapes += 1
                # Stale entry (cell was overwritten): skip, drop lazily.
        cost.patch_gen_exec = (
            patched_escapes * self.costs.patch_escape
            + len(plan.allocations) * 4  # escape-set lookups
        )

        # Patch registers (step 9).
        patched_registers = 0
        for snapshot in register_snapshots or []:
            patched_registers += snapshot.patch(plan.lo, plan.hi, delta)
        cost.register_patch = patched_registers * self.costs.patch_register

        # Move the bytes (step 10).
        self.memory.copy(plan.lo, destination, plan.length)
        cost.alloc_and_move = int(
            self.costs.move_alloc_fixed + self.costs.move_per_byte * plan.length
        )

        # Rebase tracking structures (steps 11-12).  When the destination
        # range overlaps the source, one allocation's new base can equal
        # another's not-yet-rebased base: rebase in delta-directed order so
        # the colliding key is always vacated first, and rekey the escape
        # map as one batch (detach every old key, then install new ones).
        rekeys: List[Tuple[int, int]] = []
        for allocation in sorted(
            plan.allocations, key=lambda a: a.address, reverse=delta > 0
        ):
            old_address = allocation.address
            self.table.rebase(allocation, old_address + delta)
            rekeys.append((old_address, allocation.address))
        self.escapes.rekey_all(rekeys)
        # Escape cells that themselves lived in the moved range now sit at
        # new addresses; rewrite their recorded locations.
        self.escapes.rewrite_range(plan.lo, plan.hi, delta)
        if self.regions is not None:
            self.regions.bump_generation()
        return cost

    # -- allocation granularity (Section 6) ------------------------------------------

    def move_allocation(
        self,
        allocation: Allocation,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        flush_escapes: bool = True,
    ) -> MoveCost:
        """Move one *allocation* (not its pages) — the paper's future-work
        design (Section 6): no page-set negotiation, no expansion, and the
        copy is sized by the allocation, so the entire granularity-
        mismatch cost ("Page Expand" plus most of "Allocation & Movement")
        disappears.  Returns a cost breakdown with ``page_expand == 0``.
        """
        cost = MoveCost()
        delta = destination - allocation.address
        if delta == 0:
            return cost
        if flush_escapes:
            self.escapes.flush(self.table, self.memory.read_u64)
        lo, hi = allocation.address, allocation.end

        patched = 0
        for location in self.escapes.escapes_of(allocation):
            current = self.memory.read_u64(location)
            if lo <= current < hi:
                self.memory.write_u64(location, current + delta)
                patched += 1
        cost.patch_gen_exec = patched * self.costs.patch_escape + 4

        patched_registers = 0
        for snapshot in register_snapshots or []:
            patched_registers += snapshot.patch(lo, hi, delta)
        cost.register_patch = patched_registers * self.costs.patch_register

        self.memory.copy(lo, destination, allocation.size)
        cost.alloc_and_move = int(
            self.costs.move_alloc_fixed // 4
            + self.costs.move_per_byte * allocation.size
        )

        old_address = allocation.address
        self.table.rebase(allocation, destination)
        self.escapes.rekey(old_address, destination)
        self.escapes.rewrite_range(lo, hi, delta)
        # No generation bump: an allocation-granularity move shuffles bytes
        # *within* registered regions, so cached region geometry stays valid.
        return cost

    # -- convenience -----------------------------------------------------------------

    def move_pages(
        self,
        lo: int,
        hi: int,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> Tuple[MovePlan, MoveCost]:
        plan = self.plan_move(lo, hi)
        cost = self.execute_move(plan, destination, register_snapshots)
        return plan, cost
