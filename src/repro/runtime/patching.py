"""Pointer patching for page movement (Figure 8 steps 4-12, Table 3).

When the kernel wants to move a range of physical pages, the runtime:

4.  negotiates the final page set — **page expansion**: allocations must
    move whole, so the source range grows until no allocation straddles
    its boundary;
5-6. queries the Allocation Table for every allocation overlapping the
    final range;
7-8. finds all escapes of those allocations and patches each one to the
    address its pointer will have after the move (pointer *swizzling*);
9.  patches the register snapshots the threads dumped at the world-stop;
10. moves the bytes;
11-12. rebases the Allocation Table / escape map and reports completion.

Every step's cycle cost is accounted separately because Table 3 reports
exactly this breakdown (Page Expand / Patch Gen & Exec / Register Patch /
Allocation & Movement), and the paper's headline ablation — "prototype
w/o expand" — is the same numbers with the expansion column removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import KernelError, MoveError
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.resilience.journal import (
    STEP_COPY_DATA,
    STEP_ESCAPE_FLUSH,
    STEP_PATCH_ESCAPES,
    STEP_PATCH_REGISTERS,
    STEP_REBASE_TRACKING,
    STEP_RESERVE,
)
from repro.runtime.allocation_table import Allocation, AllocationTable
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.regions import RegionSet

PAGE_SIZE = 4096


def _no_hook(step: str, progress: Optional[Tuple[int, int]] = None) -> None:
    """Default fault hook: a move outside a transaction has no fault
    surface."""


def page_down(address: int) -> int:
    return address & ~(PAGE_SIZE - 1)


def page_up(address: int) -> int:
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class MemoryInterface(Protocol):
    """What the patcher needs from physical memory."""

    def read_u64(self, address: int) -> int: ...

    def write_u64(self, address: int, value: int) -> None: ...

    def copy(self, src: int, dst: int, length: int) -> None: ...

    def read_bytes(self, address: int, length: int) -> bytes: ...

    def write_bytes(self, address: int, data: bytes) -> None: ...


class RegisterSnapshot:
    """A thread's register file dumped on its stack at the world-stop.

    ``slots`` maps a register identifier to its value; ``pointer_slots``
    names the registers the compiler knows are pointer-typed (the paper
    patches conservatively from the type information available at the IR
    level).
    """

    def __init__(
        self,
        thread_id: int,
        slots: Dict[str, int],
        pointer_slots: Optional[set] = None,
    ) -> None:
        self.thread_id = thread_id
        self.slots = dict(slots)
        self.pointer_slots = (
            set(slots.keys()) if pointer_slots is None else set(pointer_slots)
        )

    def patch(self, lo: int, hi: int, delta: int) -> int:
        """Rewrite every pointer register aimed into [lo, hi).  Returns the
        number patched."""
        patched = 0
        for name in self.pointer_slots:
            value = self.slots.get(name)
            if value is not None and lo <= value < hi:
                self.slots[name] = value + delta
                patched += 1
        return patched


@dataclass
class MoveCost:
    """Cycle breakdown of one page movement — one row of Table 3."""

    page_expand: int = 0
    patch_gen_exec: int = 0
    register_patch: int = 0
    alloc_and_move: int = 0

    @property
    def prototype_cost(self) -> int:
        """Expand + patch + registers (the paper's "Prototype Cost" —
        movement excluded because paging pays it too)."""
        return self.page_expand + self.patch_gen_exec + self.register_patch

    @property
    def prototype_wo_expand(self) -> int:
        return self.patch_gen_exec + self.register_patch

    @property
    def total(self) -> int:
        return self.prototype_cost + self.alloc_and_move

    @property
    def wo_expand_fraction(self) -> float:
        """"Prototype w/o Expand / Total Cost" — the fraction not caused by
        the allocation/page granularity mismatch."""
        return self.prototype_wo_expand / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """Uniform telemetry schema; includes the derived total."""
        return {
            "page_expand": self.page_expand,
            "patch_gen_exec": self.patch_gen_exec,
            "register_patch": self.register_patch,
            "alloc_and_move": self.alloc_and_move,
            "total": self.total,
        }

    def __add__(self, other: "MoveCost") -> "MoveCost":
        return MoveCost(
            self.page_expand + other.page_expand,
            self.patch_gen_exec + other.patch_gen_exec,
            self.register_patch + other.register_patch,
            self.alloc_and_move + other.alloc_and_move,
        )


@dataclass
class MovePlan:
    """The negotiated move: the (possibly expanded) source range and the
    allocations inside it."""

    requested_lo: int
    requested_hi: int
    lo: int
    hi: int
    allocations: List[Allocation]
    expand_lookups: int

    @property
    def length(self) -> int:
        return self.hi - self.lo

    @property
    def expanded(self) -> bool:
        return self.lo != self.requested_lo or self.hi != self.requested_hi

    @property
    def page_count(self) -> int:
        return self.length // PAGE_SIZE


class Patcher:
    """Executes the runtime side of page movement."""

    def __init__(
        self,
        table: AllocationTable,
        escapes: AllocationToEscapeMap,
        memory: MemoryInterface,
        costs: CostModel = DEFAULT_COSTS,
        regions: Optional[RegionSet] = None,
    ) -> None:
        self.table = table
        self.escapes = escapes
        self.memory = memory
        self.costs = costs
        #: Region landing zone to generation-invalidate on moves.  A move
        #: changes what addresses mean *before* the kernel reinstalls the
        #: region array, so any guard cache keyed on the generation must
        #: be killed here, not only at the later region mutation.
        self.regions = regions
        #: Optional :class:`~repro.kernel.physmem.FrameAllocator`; when the
        #: kernel installs it, :meth:`execute_move` refuses an unbacked
        #: destination up front (see :meth:`_validate_destination`).
        self.frames = None

    def _validate_destination(self, destination: int, length: int) -> None:
        """Refuse a destination that is not frame-backed *before* any
        state is mutated.  Historically a bad destination exploded
        mid-copy — after the escapes were already swizzled — with a raw
        low-level error; now it is a structured :class:`MoveError` at the
        reservation step, with nothing yet to roll back."""
        size = getattr(self.memory, "size", None)
        if size is not None and not (0 <= destination and destination + length <= size):
            raise MoveError(
                f"destination [{destination:#x}, {destination + length:#x}) "
                f"is outside physical memory ({size:#x} bytes)",
                step=STEP_RESERVE,
                lo=destination,
                hi=destination + length,
            )
        if self.frames is not None:
            for frame in range(destination // PAGE_SIZE, page_up(destination + length) // PAGE_SIZE):
                if self.frames.frame_is_free(frame):
                    raise MoveError(
                        f"destination frame {frame} "
                        f"([{destination:#x}, {destination + length:#x})) "
                        f"is not allocated — refusing to copy into an "
                        f"unbacked range",
                        step=STEP_RESERVE,
                        lo=destination,
                        hi=destination + length,
                    )

    # -- step 4-6: negotiation ---------------------------------------------------

    def plan_move(self, lo: int, hi: int) -> MovePlan:
        """Expand [lo, hi) until no allocation straddles a boundary.

        Each round costs one Allocation Table range query.  The kernel can
        veto the expanded plan (see the kernel module's negotiate logic).
        """
        if lo % PAGE_SIZE or hi % PAGE_SIZE:
            raise KernelError("move range must be page-aligned")
        if hi <= lo:
            raise KernelError("empty move range")
        requested_lo, requested_hi = lo, hi
        lookups = 0
        while True:
            lookups += 1
            overlapping = self.table.overlapping(lo, hi)
            new_lo, new_hi = lo, hi
            for allocation in overlapping:
                if allocation.address < new_lo:
                    new_lo = page_down(allocation.address)
                if allocation.end > new_hi:
                    new_hi = page_up(allocation.end)
            if new_lo == lo and new_hi == hi:
                return MovePlan(
                    requested_lo, requested_hi, lo, hi, overlapping, lookups
                )
            lo, hi = new_lo, new_hi

    # -- steps 7-12: patch + move ----------------------------------------------------

    def execute_move(
        self,
        plan: MovePlan,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        flush_escapes: bool = True,
        journal=None,
        fault_hook=None,
    ) -> MoveCost:
        """Patch every escape and register, move the data, rebase the
        tracking structures.  Returns the cycle cost breakdown.

        ``journal`` (a :class:`~repro.resilience.journal.MoveJournal`)
        makes every mutation undoable; ``fault_hook(step, progress)`` is
        the transaction's fault surface, fired at each step boundary and
        after every mid-step item (so torn faults can land between two
        escapes, two register frames, or the two halves of the copy).
        """
        if destination % PAGE_SIZE:
            raise KernelError("destination must be page-aligned")
        hook = fault_hook if fault_hook is not None else _no_hook
        self._validate_destination(destination, plan.length)
        delta = destination - plan.lo
        cost = MoveCost()
        cost.page_expand = plan.expand_lookups * self.costs.expand_lookup + len(
            plan.allocations
        ) * self.costs.expand_lookup // 4

        # Escape records are batched; a move forces resolution first.
        # Resolution is not journaled: it is semantically idempotent (a
        # rolled-back retry re-flushes to a no-op, and the resolved map is
        # exactly what a batch-limit flush would have produced anyway).
        hook(STEP_ESCAPE_FLUSH)
        if flush_escapes:
            self.escapes.flush(self.table, self.memory.read_u64)

        # Patch escapes (step 7-8): swizzle every pointer into the source
        # range to its post-move address.
        hook(STEP_PATCH_ESCAPES)
        patch_sites = [
            (allocation, location)
            for allocation in plan.allocations
            for location in self.escapes.escapes_of(allocation)
        ]
        patched_escapes = 0
        for index, (allocation, location) in enumerate(patch_sites):
            current = self.memory.read_u64(location)
            if allocation.address <= current < allocation.end:
                if journal is not None:
                    journal.log_u64(
                        STEP_PATCH_ESCAPES, self.memory, location, current
                    )
                self.memory.write_u64(location, current + delta)
                patched_escapes += 1
            # Stale entry (cell was overwritten): skip, drop lazily.
            hook(STEP_PATCH_ESCAPES, (index + 1, len(patch_sites)))
        cost.patch_gen_exec = (
            patched_escapes * self.costs.patch_escape
            + len(plan.allocations) * 4  # escape-set lookups
        )

        # Patch registers (step 9).
        hook(STEP_PATCH_REGISTERS)
        snapshots = register_snapshots or []
        patched_registers = 0
        for index, snapshot in enumerate(snapshots):
            if journal is not None:
                journal.log_registers(STEP_PATCH_REGISTERS, snapshot)
            patched_registers += snapshot.patch(plan.lo, plan.hi, delta)
            hook(STEP_PATCH_REGISTERS, (index + 1, len(snapshots)))
        cost.register_patch = patched_registers * self.costs.patch_register

        # Move the bytes (step 10).  Under a journal the copy is split so
        # a torn fault can land between its halves: the source is read in
        # full *first* (memmove semantics survive overlapping ranges) and
        # the destination's prior image is journaled for rollback.
        hook(STEP_COPY_DATA)
        if journal is not None:
            journal.log_image(STEP_COPY_DATA, self.memory, destination, plan.length)
            image = self.memory.read_bytes(plan.lo, plan.length)
            half = max(1, plan.length // 2)
            self.memory.write_bytes(destination, image[:half])
            hook(STEP_COPY_DATA, (1, 2))
            self.memory.write_bytes(destination + half, image[half:])
            hook(STEP_COPY_DATA, (2, 2))
        else:
            self.memory.copy(plan.lo, destination, plan.length)
        cost.alloc_and_move = int(
            self.costs.move_alloc_fixed + self.costs.move_per_byte * plan.length
        )

        # Rebase tracking structures (steps 11-12).  When the destination
        # range overlaps the source, one allocation's new base can equal
        # another's not-yet-rebased base: rebase in delta-directed order so
        # the colliding key is always vacated first, and rekey the escape
        # map as one batch (detach every old key, then install new ones).
        # The per-allocation undos run newest-first on rollback, which is
        # the reverse of the delta-directed order — collision-free for the
        # same reason the forward order is.
        hook(STEP_REBASE_TRACKING)
        rekeys: List[Tuple[int, int]] = []
        ordered = sorted(
            plan.allocations, key=lambda a: a.address, reverse=delta > 0
        )
        for index, allocation in enumerate(ordered):
            old_address = allocation.address
            if journal is not None:
                journal.record(
                    STEP_REBASE_TRACKING,
                    f"rebase allocation back to {old_address:#x}",
                    lambda a=allocation, o=old_address: self.table.rebase(a, o),
                )
            self.table.rebase(allocation, old_address + delta)
            rekeys.append((old_address, allocation.address))
            hook(STEP_REBASE_TRACKING, (index + 1, len(ordered)))
        if journal is not None:
            journal.record(
                STEP_REBASE_TRACKING,
                "rekey escape map back to pre-move bases",
                lambda pairs=[(n, o) for o, n in rekeys]: self.escapes.rekey_all(
                    pairs
                ),
            )
        self.escapes.rekey_all(rekeys)
        # Escape cells that themselves lived in the moved range now sit at
        # new addresses; rewrite their recorded locations.  The undo uses
        # the *exact* inverse location pairs, not an inverse window — a
        # window would also drag along stale cells that already sat in the
        # destination range before the move.
        if journal is not None:
            inverse = [
                (loc + delta, loc)
                for loc in self.escapes.locations_in_range(plan.lo, plan.hi)
            ]
            journal.record(
                STEP_REBASE_TRACKING,
                "rewrite escape locations back to the source range",
                lambda moves=inverse: self.escapes.rewrite_locations(moves),
            )
        self.escapes.rewrite_range(plan.lo, plan.hi, delta)
        if self.regions is not None:
            self.regions.bump_generation()
        return cost

    # -- allocation granularity (Section 6) ------------------------------------------

    def move_allocation(
        self,
        allocation: Allocation,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        flush_escapes: bool = True,
        journal=None,
        fault_hook=None,
    ) -> MoveCost:
        """Move one *allocation* (not its pages) — the paper's future-work
        design (Section 6): no page-set negotiation, no expansion, and the
        copy is sized by the allocation, so the entire granularity-
        mismatch cost ("Page Expand" plus most of "Allocation & Movement")
        disappears.  Returns a cost breakdown with ``page_expand == 0``.

        ``journal``/``fault_hook`` work exactly as in :meth:`execute_move`.
        """
        cost = MoveCost()
        delta = destination - allocation.address
        if delta == 0:
            return cost
        hook = fault_hook if fault_hook is not None else _no_hook
        hook(STEP_ESCAPE_FLUSH)
        if flush_escapes:
            self.escapes.flush(self.table, self.memory.read_u64)
        lo, hi = allocation.address, allocation.end

        hook(STEP_PATCH_ESCAPES)
        sites = list(self.escapes.escapes_of(allocation))
        patched = 0
        for index, location in enumerate(sites):
            current = self.memory.read_u64(location)
            if lo <= current < hi:
                if journal is not None:
                    journal.log_u64(STEP_PATCH_ESCAPES, self.memory, location, current)
                self.memory.write_u64(location, current + delta)
                patched += 1
            hook(STEP_PATCH_ESCAPES, (index + 1, len(sites)))
        cost.patch_gen_exec = patched * self.costs.patch_escape + 4

        hook(STEP_PATCH_REGISTERS)
        snapshots = register_snapshots or []
        patched_registers = 0
        for index, snapshot in enumerate(snapshots):
            if journal is not None:
                journal.log_registers(STEP_PATCH_REGISTERS, snapshot)
            patched_registers += snapshot.patch(lo, hi, delta)
            hook(STEP_PATCH_REGISTERS, (index + 1, len(snapshots)))
        cost.register_patch = patched_registers * self.costs.patch_register

        hook(STEP_COPY_DATA)
        if journal is not None:
            journal.log_image(STEP_COPY_DATA, self.memory, destination, allocation.size)
            image = self.memory.read_bytes(lo, allocation.size)
            half = max(1, allocation.size // 2)
            self.memory.write_bytes(destination, image[:half])
            hook(STEP_COPY_DATA, (1, 2))
            self.memory.write_bytes(destination + half, image[half:])
            hook(STEP_COPY_DATA, (2, 2))
        else:
            self.memory.copy(lo, destination, allocation.size)
        cost.alloc_and_move = int(
            self.costs.move_alloc_fixed // 4
            + self.costs.move_per_byte * allocation.size
        )

        hook(STEP_REBASE_TRACKING)
        old_address = allocation.address
        if journal is not None:
            journal.record(
                STEP_REBASE_TRACKING,
                f"rebase allocation back to {old_address:#x}",
                lambda a=allocation, o=old_address: self.table.rebase(a, o),
            )
            journal.record(
                STEP_REBASE_TRACKING,
                f"rekey escape map back to {old_address:#x}",
                lambda d=destination, o=old_address: self.escapes.rekey(d, o),
            )
            inverse = [
                (loc + delta, loc)
                for loc in self.escapes.locations_in_range(lo, hi)
            ]
            journal.record(
                STEP_REBASE_TRACKING,
                "rewrite escape locations back to the old block",
                lambda moves=inverse: self.escapes.rewrite_locations(moves),
            )
        self.table.rebase(allocation, destination)
        self.escapes.rekey(old_address, destination)
        self.escapes.rewrite_range(lo, hi, delta)
        hook(STEP_REBASE_TRACKING, (1, 1))
        # No generation bump: an allocation-granularity move shuffles bytes
        # *within* registered regions, so cached region geometry stays valid.
        return cost

    # -- incremental movement (the bounded-pause protocol) -----------------------------

    def begin_incremental_move(
        self,
        plan: MovePlan,
        destination: int,
        journal=None,
        fault_hook=None,
        window=None,
    ) -> "IncrementalMove":
        """Start an incremental move: pre-copy and escape scanning run in
        chunks with the world *running* (``precopy_step``), and only the
        short reconcile-and-patch tail (``flip``) needs a world stop.
        ``window`` is the runtime's dirty-tracking
        :class:`~repro.runtime.runtime.MoveWindow` over the source range."""
        if destination % PAGE_SIZE:
            raise KernelError("destination must be page-aligned")
        self._validate_destination(destination, plan.length)
        return IncrementalMove(self, plan, destination, journal, fault_hook, window)

    # -- convenience -----------------------------------------------------------------

    def move_pages(
        self,
        lo: int,
        hi: int,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> Tuple[MovePlan, MoveCost]:
        plan = self.plan_move(lo, hi)
        cost = self.execute_move(plan, destination, register_snapshots)
        return plan, cost


class IncrementalMove:
    """One in-flight incremental move: chunked pre-work, short flip.

    Pre-copy chunks (:meth:`precopy_step`) run with the world *running*;
    they mutate nothing the program can see — the destination frames are
    reserved but covered by no region, so guards fault any access — and
    therefore need no stop.  Each chunk does at most ``chunk_budget``
    cycles of escape scanning (patch-candidate generation) and data
    streaming.  The :meth:`flip` runs under the caller's world stop: it
    re-scans escapes recorded while the window was open, patches escapes
    and registers against *fresh* machine state, re-copies the whole
    range (charging cycles only for pages dirtied since the pre-copy),
    and rebases the tracking structures — exactly the serial tail, minus
    the bulk copy that already streamed out.

    Every mutation is journaled through the shared transaction journal,
    so a fault at any chunk boundary rolls the whole move back.
    """

    def __init__(
        self,
        patcher: Patcher,
        plan: MovePlan,
        destination: int,
        journal=None,
        fault_hook=None,
        window=None,
    ) -> None:
        self.patcher = patcher
        self.plan = plan
        self.destination = destination
        self.journal = journal
        self.hook = fault_hook if fault_hook is not None else _no_hook
        self.window = window
        self.cost = MoveCost()
        #: Cycles the flip itself cost (the stop-the-world share).
        self.flip_cycles = 0
        self._sites_total: Optional[int] = None
        self._sites_scanned = 0
        self._bytes_copied = 0
        self._fixed_charged = False
        self._image_logged = False
        self.done_precopy = False

    def precopy_step(self, chunk_budget: int) -> Optional[int]:
        """Advance the pre-work by roughly ``chunk_budget`` cycles
        (unbounded when 0); always makes progress.  Returns the cycles
        charged, or ``None`` once pre-copy is complete."""
        if self.done_precopy:
            return None
        budget = chunk_budget if chunk_budget > 0 else float("inf")
        costs = self.patcher.costs
        plan = self.plan
        memory = self.patcher.memory
        spent = 0

        if self._sites_total is None:
            # First chunk: the negotiation/expansion cost, plus an escape
            # flush so the scan sees a complete map.
            self.hook(STEP_ESCAPE_FLUSH)
            self.patcher.escapes.flush(self.patcher.table, memory.read_u64)
            self.cost.page_expand = (
                plan.expand_lookups * costs.expand_lookup
                + len(plan.allocations) * costs.expand_lookup // 4
            )
            spent += self.cost.page_expand
            self._sites_total = sum(
                len(self.patcher.escapes.escapes_of(allocation))
                for allocation in plan.allocations
            )

        # Scan phase: patch-candidate generation, read-only (the flip
        # patches against fresh state; this phase carries the cost).
        scan_unit = max(1, costs.escape_record)
        while self._sites_scanned < self._sites_total:
            self._sites_scanned += 1
            self.cost.patch_gen_exec += scan_unit
            spent += scan_unit
            if spent >= budget:
                self.hook(
                    STEP_PATCH_ESCAPES,
                    (self._sites_scanned, self._sites_total),
                )
                return spent
        if self._sites_total:
            self.hook(STEP_PATCH_ESCAPES, (self._sites_scanned, self._sites_total))

        # Copy phase: stream source bytes into the reserved destination.
        if not self._image_logged:
            if self.journal is not None:
                self.journal.log_image(
                    STEP_COPY_DATA, memory, self.destination, plan.length
                )
            self._image_logged = True
        if not self._fixed_charged:
            fixed = int(self.patcher.costs.move_alloc_fixed)
            self.cost.alloc_and_move += fixed
            spent += fixed
            self._fixed_charged = True
        per_byte = costs.move_per_byte
        remaining = plan.length - self._bytes_copied
        if remaining > 0:
            if spent >= budget:
                return spent  # out of budget this chunk; copy next time
            room = budget - spent
            if per_byte > 0 and room != float("inf"):
                n = min(remaining, max(1, int(room / per_byte)))
            else:
                n = remaining
            data = memory.read_bytes(plan.lo + self._bytes_copied, n)
            memory.write_bytes(self.destination + self._bytes_copied, data)
            self._bytes_copied += n
            copy_cycles = int(per_byte * n)
            self.cost.alloc_and_move += copy_cycles
            spent += copy_cycles
            self.hook(STEP_COPY_DATA, (self._bytes_copied, plan.length))
        if self._bytes_copied >= plan.length:
            self.done_precopy = True
        return spent

    def flip(
        self,
        fresh_plan: MovePlan,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> MoveCost:
        """The stop-the-world tail.  The caller holds the world stopped
        and has re-negotiated ``fresh_plan`` over the same page bounds (a
        geometry change must retry the whole move before getting here).
        Returns the accumulated :class:`MoveCost`; the flip's own cycles
        are in :attr:`flip_cycles`."""
        patcher = self.patcher
        costs = patcher.costs
        memory = patcher.memory
        plan = fresh_plan
        delta = self.destination - plan.lo
        journal = self.journal
        hook = self.hook
        window = self.window
        flip_cycles = 0

        # Escapes recorded while the world ran re-scan now (the
        # write-barrier dirty check); resolution itself is idempotent.
        hook(STEP_ESCAPE_FLUSH)
        patcher.escapes.flush(patcher.table, memory.read_u64)
        dirty_escapes = window.dirty_escapes if window is not None else 0
        rescan = dirty_escapes * max(1, costs.escape_record)
        self.cost.patch_gen_exec += rescan
        flip_cycles += rescan

        # Patch escapes against fresh state (the pre-scan was the cost
        # model; the machine is the authority).
        hook(STEP_PATCH_ESCAPES)
        patch_sites = [
            (allocation, location)
            for allocation in plan.allocations
            for location in patcher.escapes.escapes_of(allocation)
        ]
        patched_escapes = 0
        for index, (allocation, location) in enumerate(patch_sites):
            current = memory.read_u64(location)
            if allocation.address <= current < allocation.end:
                if journal is not None:
                    journal.log_u64(STEP_PATCH_ESCAPES, memory, location, current)
                memory.write_u64(location, current + delta)
                patched_escapes += 1
            hook(STEP_PATCH_ESCAPES, (index + 1, len(patch_sites)))
        exec_cost = (
            patched_escapes * costs.patch_escape + len(plan.allocations) * 4
        )
        self.cost.patch_gen_exec += exec_cost
        flip_cycles += exec_cost

        # Patch registers from snapshots taken at *this* stop.
        hook(STEP_PATCH_REGISTERS)
        snapshots = register_snapshots or []
        patched_registers = 0
        for index, snapshot in enumerate(snapshots):
            if journal is not None:
                journal.log_registers(STEP_PATCH_REGISTERS, snapshot)
            patched_registers += snapshot.patch(plan.lo, plan.hi, delta)
            hook(STEP_PATCH_REGISTERS, (index + 1, len(snapshots)))
        register_cost = patched_registers * costs.patch_register
        self.cost.register_patch += register_cost
        flip_cycles += register_cost

        # Reconcile the copy.  The escape patches above may have
        # rewritten cells *inside* the source range, and the program may
        # have written it between chunks — physically re-copy the whole
        # range (memmove semantics; the destination's pre-move image is
        # already journaled), charging cycles only for the dirty pages.
        hook(STEP_COPY_DATA)
        image = memory.read_bytes(plan.lo, plan.length)
        half = max(1, plan.length // 2)
        memory.write_bytes(self.destination, image[:half])
        hook(STEP_COPY_DATA, (1, 2))
        memory.write_bytes(self.destination + half, image[half:])
        hook(STEP_COPY_DATA, (2, 2))
        dirty_pages = len(window.dirty_pages) if window is not None else 0
        recopy = int(costs.move_per_byte * dirty_pages * PAGE_SIZE)
        self.cost.alloc_and_move += recopy
        flip_cycles += recopy

        # Rebase tracking structures — identical to the serial tail.
        hook(STEP_REBASE_TRACKING)
        rekeys: List[Tuple[int, int]] = []
        ordered = sorted(
            plan.allocations, key=lambda a: a.address, reverse=delta > 0
        )
        for index, allocation in enumerate(ordered):
            old_address = allocation.address
            if journal is not None:
                journal.record(
                    STEP_REBASE_TRACKING,
                    f"rebase allocation back to {old_address:#x}",
                    lambda a=allocation, o=old_address: patcher.table.rebase(a, o),
                )
            patcher.table.rebase(allocation, old_address + delta)
            rekeys.append((old_address, allocation.address))
            hook(STEP_REBASE_TRACKING, (index + 1, len(ordered)))
        if journal is not None:
            journal.record(
                STEP_REBASE_TRACKING,
                "rekey escape map back to pre-move bases",
                lambda pairs=[(n, o) for o, n in rekeys]: patcher.escapes.rekey_all(
                    pairs
                ),
            )
        patcher.escapes.rekey_all(rekeys)
        if journal is not None:
            inverse = [
                (loc + delta, loc)
                for loc in patcher.escapes.locations_in_range(plan.lo, plan.hi)
            ]
            journal.record(
                STEP_REBASE_TRACKING,
                "rewrite escape locations back to the source range",
                lambda moves=inverse: patcher.escapes.rewrite_locations(moves),
            )
        patcher.escapes.rewrite_range(plan.lo, plan.hi, delta)
        if patcher.regions is not None:
            patcher.regions.bump_generation()
        self.flip_cycles = flip_cycles
        return self.cost
