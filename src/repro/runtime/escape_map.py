"""The Allocation-to-Escape Map (Section 4.2).

For every allocation, the set of memory locations that currently hold a
pointer into it ("escapes").  The paper implements the per-allocation set
as a C++ ``unordered_set`` and *batches* escape updates, because the
escape map changes much faster than the allocation map and stale entries
are cheap to skip at patch time; both choices are reproduced here.

An escape record is just the address of the 8-byte cell that received a
pointer store.  Resolution — figuring out *which* allocation the stored
pointer targets — is deferred to :meth:`flush`, which reads the cell's
current value through the machine and drops records that no longer hold a
pointer into any tracked allocation (that is how "destroyed" escapes age
out).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.runtime.allocation_table import Allocation, AllocationTable

#: Reads the 8-byte little-endian value at a physical address.
PointerReader = Callable[[int], int]


@dataclass
class EscapeStats:
    """Lifetime counters for the escape pipeline (record/resolve/drop)."""

    recorded: int = 0
    resolved: int = 0
    stale_dropped: int = 0
    flushes: int = 0
    #: Escape *locations* shifted because the cells holding them moved
    #: (Figure-5/ablation accounting for :meth:`rewrite_range`).
    rewritten: int = 0

    def to_dict(self) -> dict:
        """Uniform telemetry schema (``repro.telemetry.metrics``)."""
        return dataclasses.asdict(self)


class AllocationToEscapeMap:
    def __init__(self, batch_limit: int = 4096) -> None:
        #: allocation base address -> set of escape locations.
        self._escapes: Dict[int, Set[int]] = {}
        #: pending (unresolved) escape locations.
        self._pending: List[int] = []
        self.batch_limit = batch_limit
        self.stats = EscapeStats()

    # -- recording -------------------------------------------------------------

    def record(self, location: int) -> None:
        """A pointer was just stored at ``location``.  O(1): batched."""
        self._pending.append(location)
        self.stats.recorded += 1

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def needs_flush(self) -> bool:
        return len(self._pending) >= self.batch_limit

    # -- resolution --------------------------------------------------------------

    def flush(self, table: AllocationTable, read_pointer: PointerReader) -> int:
        """Resolve all pending escape records against the current
        allocation table.  Returns the number resolved."""
        if not self._pending:
            return 0
        self.stats.flushes += 1
        resolved = 0
        pending, self._pending = self._pending, []
        for location in pending:
            target = read_pointer(location)
            allocation = table.find_containing(target)
            if allocation is None:
                self.stats.stale_dropped += 1
                continue
            self._escapes.setdefault(allocation.address, set()).add(location)
            resolved += 1
        self.stats.resolved += resolved
        return resolved

    # -- queries ---------------------------------------------------------------------

    def escapes_of(self, allocation: Allocation) -> Set[int]:
        """Locations recorded as holding pointers into ``allocation``.

        May contain stale entries (overwritten cells); the patcher
        re-validates each location's current value before patching.
        """
        return set(self._escapes.get(allocation.address, ()))

    def escape_count(self, allocation: Allocation) -> int:
        return len(self._escapes.get(allocation.address, ()))

    def histogram(self) -> Dict[int, int]:
        """escapes-per-allocation -> number of allocations (Figure 5)."""
        counts: Dict[int, int] = {}
        for locations in self._escapes.values():
            n = len(locations)
            counts[n] = counts.get(n, 0) + 1
        return counts

    def tracked_allocations(self) -> int:
        return len(self._escapes)

    def resolved_items(self) -> List[Tuple[int, Set[int]]]:
        """Snapshot of the resolved map: (allocation base, escape
        locations) pairs.  For invariant checkers and debugging."""
        return [(base, set(locs)) for base, locs in self._escapes.items()]

    def pending_locations(self) -> List[int]:
        """Snapshot of the unresolved (batched) escape locations."""
        return list(self._pending)

    def memory_footprint_bytes(self) -> int:
        """Approximate footprint of the tracking structures (Figure 6):
        one 8-byte cell pointer per escape plus per-set overhead, plus the
        pending buffer."""
        per_entry = 16  # hash set entry: pointer + bucket overhead
        per_set = 64  # set header
        total = len(self._pending) * 8
        for locations in self._escapes.values():
            total += per_set + per_entry * len(locations)
        return total

    # -- maintenance --------------------------------------------------------------------

    def rekey(self, old_address: int, new_address: int) -> None:
        """Follow an allocation that was rebased by page movement."""
        locations = self._escapes.pop(old_address, None)
        if locations is not None:
            existing = self._escapes.setdefault(new_address, set())
            existing.update(locations)

    def rekey_all(self, moves: Iterable[Tuple[int, int]]) -> None:
        """Batched :meth:`rekey` for a group move.  All old keys are
        detached before any new key is installed, so a move whose
        destination base equals another allocation's not-yet-rekeyed base
        cannot merge the two escape sets."""
        detached: List[Tuple[int, Optional[Set[int]]]] = [
            (new_address, self._escapes.pop(old_address, None))
            for old_address, new_address in moves
        ]
        for new_address, locations in detached:
            if locations is not None:
                self._escapes.setdefault(new_address, set()).update(locations)

    def drop_allocation(self, address: int) -> None:
        self._escapes.pop(address, None)

    def locations_in_range(self, lo: int, hi: int) -> List[int]:
        """Every recorded location (resolved or pending) in ``[lo, hi)``,
        deduplicated and ascending — what :meth:`rewrite_range` over the
        same window would touch.  Read-only; the transactional move path
        captures this *before* rewriting so rollback can reverse exactly
        these locations (a window-based inverse would also drag along
        stale cells that already sat in the destination window)."""
        found = {
            loc
            for locations in self._escapes.values()
            for loc in locations
            if lo <= loc < hi
        }
        found.update(loc for loc in self._pending if lo <= loc < hi)
        return sorted(found)

    def rewrite_locations(self, moves: Iterable[Tuple[int, int]]) -> int:
        """Rewrite exactly the given ``(old, new)`` recorded locations —
        the precise inverse :meth:`rewrite_range` needs for rollback.
        Returns the number of occurrences rewritten."""
        mapping = dict(moves)
        if not mapping:
            return 0
        rewritten = 0
        for address, locations in list(self._escapes.items()):
            if not locations & mapping.keys():
                continue
            updated = set()
            for loc in locations:
                target = mapping.get(loc, loc)
                if target != loc:
                    rewritten += 1
                updated.add(target)
            self._escapes[address] = updated
        for i, loc in enumerate(self._pending):
            target = mapping.get(loc, loc)
            if target != loc:
                self._pending[i] = target
                rewritten += 1
        self.stats.rewritten += rewritten
        return rewritten

    def rewrite_range(self, lo: int, hi: int, delta: int) -> int:
        """When the cells *holding* escapes themselves move (they lived in a
        moved page), their recorded locations must shift too.  Rewrites
        every recorded and pending location in [lo, hi) by ``delta``;
        returns the number rewritten."""
        rewritten = 0
        for address, locations in list(self._escapes.items()):
            updated = set()
            for loc in locations:
                if lo <= loc < hi:
                    updated.add(loc + delta)
                    rewritten += 1
                else:
                    updated.add(loc)
            self._escapes[address] = updated
        for i, loc in enumerate(self._pending):
            if lo <= loc < hi:
                self._pending[i] = loc + delta
                rewritten += 1
        self.stats.rewritten += rewritten
        return rewritten
