"""CryptSan-style memory safety on top of the allocation table.

The same metadata CARAT keeps to *move* memory can police it: every
guard already proves an access lands in a kernel-permitted region, and
safety mode (``--safety``) adds the CryptSan question — does it land in
memory the program currently *owns*?  The allocation table answers
liveness; HMAC provenance tags (from :mod:`repro.carat.signing`'s
toolchain keys) ride on every allocation so violation reports carry
cryptographic provenance rather than a bare address.

Detection matrix (checked only after the ordinary region guard passed,
so every verdict concerns *region-legal* memory):

========================  =====================================  =========
access lands in…          meaning                                verdict
========================  =====================================  =========
a live allocation         the program owns those bytes           ok
a live allocation's       index ran off the end of a             oob
start, but overruns it    heap/global block (``a[n]`` of
(heap/global kinds)       ``a[0..n)``)
a tombstone (freed        dangling pointer dereference           uaf
allocation's old range)
none of the above         wild pointer into free heap space      oob
========================  =====================================  =========

Stack and code blocks are exempt from the overrun refinement: the stack
is tracked as machine-managed block(s) that legal frames may straddle
(stack growth appends a second block), so only containment is enforced
there — which the region guard already did.

Why this is zero-false-positive by construction: the loader primes the
table with every global, the stack block, and the code block, and every
``malloc`` is tracked — so each access a *legal* program makes starts
inside a live tracked allocation and stays inside it, short-circuiting
at the first (cheap) probe.  The expensive tombstone scan runs only on
accesses that already miss every live allocation, i.e. actual bugs.
"""

from __future__ import annotations

import hmac
import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.carat.signing import DEFAULT_TOOLCHAIN, toolchain_key
from repro.errors import SafetyFault

#: Verdict strings carried by :class:`SafetyViolation`.
KIND_UAF = "use-after-free"
KIND_OOB = "out-of-bounds"

#: How many freed-allocation tombstones the checker retains.  Bounded:
#: a tombstone only ever *adds* detection (live allocations are checked
#: first), so evicting old ones degrades UAF coverage gracefully
#: instead of growing without bound.
TOMBSTONE_LIMIT = 4096


@dataclass(frozen=True)
class SafetyViolation:
    """One structured safety verdict — everything a report needs."""

    kind: str           # KIND_UAF | KIND_OOB
    address: int
    size: int
    access: str
    #: The allocation the verdict is about: the freed one (uaf), the
    #: overrun one (oob off a live block), or ``None`` (wild oob).
    allocation_base: Optional[int] = None
    allocation_size: Optional[int] = None
    allocation_kind: Optional[str] = None
    #: Provenance: the allocation's HMAC tag and birth sequence number.
    tag: Optional[str] = None
    seq: Optional[int] = None

    def describe(self) -> str:
        where = f"{self.access} of {self.size} byte(s) at {self.address:#x}"
        if self.kind == KIND_UAF:
            return (
                f"use-after-free: {where} hits freed allocation "
                f"#{self.seq} [{self.allocation_base:#x}, "
                f"{self.allocation_base + self.allocation_size:#x}) "
                f"(tag {self.tag})"
            )
        if self.allocation_base is not None:
            return (
                f"out-of-bounds: {where} overruns live "
                f"{self.allocation_kind} allocation #{self.seq} "
                f"[{self.allocation_base:#x}, "
                f"{self.allocation_base + self.allocation_size:#x}) "
                f"(tag {self.tag})"
            )
        return (
            f"out-of-bounds: {where} lands in region-legal memory no "
            f"live allocation owns (wild pointer)"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "address": self.address,
            "size": self.size,
            "access": self.access,
            "allocation_base": self.allocation_base,
            "allocation_size": self.allocation_size,
            "allocation_kind": self.allocation_kind,
            "tag": self.tag,
            "seq": self.seq,
        }


class _Tombstone:
    """A freed allocation's ghost: range + provenance, for UAF verdicts."""

    __slots__ = ("lo", "hi", "kind", "seq", "tag")

    def __init__(self, lo: int, hi: int, kind: str, seq: int, tag: str):
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.seq = seq
        self.tag = tag


class SafetyChecker:
    """The ``--safety`` oracle one runtime consults at guard time.

    Attached as ``runtime.safety`` by
    :meth:`~repro.runtime.runtime.CaratRuntime.enable_safety`; the three
    guard entry points call :meth:`scan` on every *allowed* access and
    raise :class:`~repro.errors.SafetyFault` on a verdict.  With safety
    off (``runtime.safety is None``) no guard path changes by a single
    cycle, which is what keeps fingerprints bit-identical.
    """

    def __init__(self, runtime, toolchain: str = DEFAULT_TOOLCHAIN) -> None:
        self.runtime = runtime
        self.toolchain = toolchain
        self._key = toolchain_key(toolchain)
        #: Extra cycles per safety-checked access: the liveness probe is
        #: a second walk of the same rb-tree the guard's region check
        #: models, plus the end-bound comparison.
        self.check_cycles = 2 * runtime.costs.binary_search_probe
        self._next_seq = 0
        self.tombstones: Deque[_Tombstone] = deque(maxlen=TOMBSTONE_LIMIT)
        #: Every violation this checker found, in order (the structured
        #: report the session and tests consume).
        self.violations: List[SafetyViolation] = []
        self.checks = 0
        # Allocations that predate safety (globals, stack, code — primed
        # at load) get their provenance tags now.
        for allocation in runtime.table:
            self._ensure_tag(allocation)

    # -- provenance --------------------------------------------------------

    def _sign(self, seq: int, size: int, kind: str) -> str:
        message = f"{seq}:{size}:{kind}".encode()
        return hmac.new(self._key, message, hashlib.sha256).hexdigest()[:16]

    def _ensure_tag(self, allocation) -> None:
        if getattr(allocation, "safety_seq", None) is not None:
            return
        seq = self._next_seq
        self._next_seq += 1
        # Deliberately address-independent: the tag survives a page move
        # (``AllocationTable.rebase`` mutates the address in place, and
        # these attributes travel with the object).
        allocation.safety_seq = seq
        allocation.safety_tag = self._sign(
            seq, allocation.size, allocation.kind
        )

    # -- allocation lifecycle hooks ---------------------------------------

    def note_alloc(self, allocation) -> None:
        self._ensure_tag(allocation)

    def note_free(self, allocation) -> None:
        self._ensure_tag(allocation)
        self.tombstones.append(
            _Tombstone(
                allocation.address,
                allocation.address + allocation.size,
                allocation.kind,
                allocation.safety_seq,
                allocation.safety_tag,
            )
        )

    # -- the guard-time oracle --------------------------------------------

    def scan(
        self, address: int, size: int, access: str
    ) -> Optional[SafetyViolation]:
        """Classify one region-legal access; records and returns the
        violation (``None`` when the program owns the bytes)."""
        self.checks += 1
        table = self.runtime.table
        size = max(1, size)
        containing = table.find_containing(address, size)
        if containing is not None and containing.live:
            return None
        violation = self._classify(table, address, size, access)
        if violation is not None:
            self.violations.append(violation)
        return violation

    def _classify(
        self, table, address: int, size: int, access: str
    ) -> Optional[SafetyViolation]:
        start = table.find_containing(address, 1)
        if start is not None and start.live:
            if start.kind in ("stack", "code"):
                # Machine-managed blocks: legal frames may straddle the
                # boundary stack growth introduces.  Containment there
                # is the region guard's job, already done.
                return None
            return SafetyViolation(
                kind=KIND_OOB,
                address=address,
                size=size,
                access=access,
                allocation_base=start.address,
                allocation_size=start.size,
                allocation_kind=start.kind,
                tag=getattr(start, "safety_tag", None),
                seq=getattr(start, "safety_seq", None),
            )
        for tomb in reversed(self.tombstones):
            if address < tomb.hi and tomb.lo < address + size:
                return SafetyViolation(
                    kind=KIND_UAF,
                    address=address,
                    size=size,
                    access=access,
                    allocation_base=tomb.lo,
                    allocation_size=tomb.hi - tomb.lo,
                    allocation_kind=tomb.kind,
                    tag=tomb.tag,
                    seq=tomb.seq,
                )
        return SafetyViolation(
            kind=KIND_OOB, address=address, size=size, access=access
        )

    def raise_violation(self, violation: SafetyViolation) -> None:
        raise SafetyFault(violation)

    def describe(self) -> str:
        if not self.violations:
            return f"safety: {self.checks} check(s), clean"
        return (
            f"safety: {self.checks} check(s), "
            f"{len(self.violations)} violation(s); first: "
            f"{self.violations[0].describe()}"
        )
