"""Regions and guard mechanisms (Sections 2.3, 3, 4.2 "Protection").

The kernel partitions the physical address space into *regions* —
contiguous runs of addresses with access permissions — and writes the
current set into a landing zone in the runtime.  A guard checks a
prospective access against this set.

Three guard mechanisms are modelled, matching Figures 3 and 4:

* **MPX**: a single-cycle bounds-register check; exact for one region,
  falling back to a search for more.
* **binary search** over the address-ordered region array.
* **if-tree**: the statically laid out search whose branches become
  predictable under strided access patterns.

Every check returns both the verdict and its cycle cost under the machine
cost model, so the interpreter can charge guards correctly and Figure 4
can measure mechanisms in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ProtectionFault
from repro.machine.costs import DEFAULT_COSTS, CostModel

PERM_READ = 0x1
PERM_WRITE = 0x2
PERM_EXEC = 0x4
PERM_RW = PERM_READ | PERM_WRITE
PERM_RWX = PERM_RW | PERM_EXEC

_ACCESS_TO_PERM = {"read": PERM_READ, "write": PERM_WRITE, "exec": PERM_EXEC}


@dataclass(frozen=True)
class Region:
    """A contiguous run of physical addresses with permissions."""

    base: int
    length: int
    perms: int = PERM_RW

    @property
    def end(self) -> int:
        return self.base + self.length

    def covers(self, address: int, size: int) -> bool:
        return self.base <= address and address + size <= self.end

    def allows(self, access: str) -> bool:
        return bool(self.perms & _ACCESS_TO_PERM[access])

    def __repr__(self) -> str:
        perms = "".join(
            ch if self.perms & bit else "-"
            for ch, bit in (("r", PERM_READ), ("w", PERM_WRITE), ("x", PERM_EXEC))
        )
        return f"<Region [{self.base:#x}, {self.end:#x}) {perms}>"


class RegionSet:
    """The address-ordered region array the kernel shares with the runtime.

    A version counter ticks on every change; the interpreter uses it to
    notice region updates between guard evaluations.  The same counter is
    the *generation* that epoch-invalidated guard caches key on: any
    cached ``Region`` is valid only while the generation it was filled
    under is still current, so a mutation (or a page move, which bumps
    the generation through :meth:`bump_generation` even before the
    kernel reinstalls the region array) makes a stale hit impossible by
    construction.
    """

    def __init__(self, regions: Optional[List[Region]] = None) -> None:
        self._regions: List[Region] = []
        self.version = 0
        for region in regions or []:
            self.add(region)

    @property
    def generation(self) -> int:
        """Alias of :attr:`version` under its cache-invalidation role."""
        return self.version

    def bump_generation(self) -> None:
        """Force-invalidate every cache keyed on this set's generation.

        Called by agents that change what addresses *mean* without going
        through a region mutation — most importantly
        :meth:`~repro.runtime.patching.Patcher.execute_move`, which moves
        bytes before the kernel reinstalls the region array."""
        self.version += 1

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    # -- mutation (kernel-driven) ----------------------------------------------

    @staticmethod
    def _validate(regions: List[Region]) -> List[Region]:
        """Admission check shared by every bulk/incremental install:
        positive lengths and pairwise disjointness.  Returns the regions
        sorted by base; raises ``ValueError`` without side effects."""
        ordered = sorted(regions, key=lambda r: r.base)
        previous: Optional[Region] = None
        for region in ordered:
            if region.length <= 0:
                raise ValueError(f"region length must be positive: {region!r}")
            if previous is not None and region.base < previous.end:
                raise ValueError(f"{region!r} overlaps {previous!r}")
            previous = region
        return ordered

    def add(self, region: Region) -> None:
        self._regions = self._validate(self._regions + [region])
        self.version += 1

    def remove(self, base: int) -> Region:
        for i, region in enumerate(self._regions):
            if region.base == base:
                self.version += 1
                return self._regions.pop(i)
        raise KeyError(f"no region based at {base:#x}")

    def set_perms(self, base: int, perms: int) -> Region:
        for i, region in enumerate(self._regions):
            if region.base == base:
                updated = Region(region.base, region.length, perms)
                self._regions[i] = updated
                self.version += 1
                return updated
        raise KeyError(f"no region based at {base:#x}")

    def replace_all(self, regions: List[Region]) -> None:
        """Install a whole new region set atomically.  The replacement is
        validated exactly like :meth:`add` admissions; on failure the
        current set (and version) are left untouched."""
        self._regions = self._validate(list(regions))
        self.version += 1

    def remove_range(self, lo: int, hi: int) -> int:
        """Withdraw [lo, hi) from the set, splitting any region that
        straddles a boundary.  Returns the number of regions affected."""
        if hi <= lo:
            return 0
        affected = 0
        updated: List[Region] = []
        for region in self._regions:
            if region.end <= lo or hi <= region.base:
                updated.append(region)
                continue
            affected += 1
            if region.base < lo:
                updated.append(Region(region.base, lo - region.base, region.perms))
            if hi < region.end:
                updated.append(Region(hi, region.end - hi, region.perms))
        if affected:
            self._regions = sorted(updated, key=lambda r: r.base)
            self.version += 1
        return affected

    def set_range_perms(self, lo: int, hi: int, perms: int) -> None:
        """Give [lo, hi) the permissions ``perms``, splitting and merging
        as needed.  The range must currently be covered by the set."""
        covered = lo
        for region in self._regions:
            if region.end <= lo or hi <= region.base:
                continue
            if region.base > covered:
                raise ValueError(
                    f"range [{lo:#x}, {hi:#x}) is not fully covered "
                    f"(hole at {covered:#x})"
                )
            covered = max(covered, region.end)
        if covered < hi:
            raise ValueError(
                f"range [{lo:#x}, {hi:#x}) is not fully covered "
                f"(hole at {covered:#x})"
            )
        self.remove_range(lo, hi)
        self.add(Region(lo, hi - lo, perms))
        self.coalesce()

    def coalesce(self) -> int:
        """Merge adjacent regions with identical permissions — the
        "run-time adaptation (to minimize the number of regions)" the
        paper calls essential for performance.  Returns merges done."""
        if not self._regions:
            return 0
        merged: List[Region] = [self._regions[0]]
        merges = 0
        for region in self._regions[1:]:
            last = merged[-1]
            if last.end == region.base and last.perms == region.perms:
                merged[-1] = Region(last.base, last.length + region.length, last.perms)
                merges += 1
            else:
                merged.append(region)
        if merges:
            self._regions = merged
            self.version += 1
        return merges

    # -- lookup (runtime-driven) -------------------------------------------------

    def find(self, address: int) -> Optional[Region]:
        """Binary search for the region containing ``address``."""
        lo, hi = 0, len(self._regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if address < region.base:
                hi = mid - 1
            elif address >= region.end:
                lo = mid + 1
            else:
                return region
        return None

    def check(self, address: int, size: int, access: str) -> bool:
        """Would [address, address+size) be permitted for ``access``?

        The whole range must sit inside one region (regions are the unit
        of permission; allocations never straddle them by construction).
        """
        if size <= 0:
            return True
        # One probe: ``find`` already established base <= address < end,
        # so only the range's upper bound and the permission bit remain.
        region = self.find(address)
        return (
            region is not None
            and address + size <= region.end
            and region.allows(access)
        )


@dataclass
class GuardOutcome:
    """One guard evaluation: the verdict and the cycles it cost."""

    allowed: bool
    cycles: int
    region: Optional[Region] = None


class GuardMechanism:
    """Strategy interface: evaluate one guard, reporting its cycle cost."""

    name = "abstract"

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    def check(
        self, regions: RegionSet, address: int, size: int, access: str
    ) -> GuardOutcome:
        raise NotImplementedError

    def check_known(
        self,
        regions: RegionSet,
        region: Region,
        address: int,
        size: int,
        access: str,
    ) -> GuardOutcome:
        """Evaluate a guard whose containing region is already known.

        Precondition: ``region`` is the member of ``regions`` with
        ``region.base <= address < region.end`` under the *current*
        generation (what :meth:`RegionSet.find` would return).  Must be
        indistinguishable from :meth:`check` — same verdict, same cycle
        charge, same predictor-state transitions — it merely skips the
        redundant search.  The default conservatively re-runs ``check``.
        """
        return self.check(regions, address, size, access)

    def steady_cycles(self, regions: RegionSet) -> Optional[int]:
        """Cycle charge of a *steady-state hit* under the current region
        geometry, or ``None`` if this mechanism has no constant hit cost.

        The trace tier bakes this number into a specialized guard check
        (BranchFreeTranslator-style): the value is only valid while
        ``regions.version`` is unchanged *and* any mechanism predictor
        state matches what the specialization captured — the caller's
        fast-path condition must enforce both, and re-derive the number
        after every generation bump.  Must equal what :meth:`check_known`
        would charge on the corresponding hit.
        """
        return None


class BinarySearchGuard(GuardMechanism):
    """Probe the ordered region array by binary search; cost is one probe
    per halving (Figure 4's "Binary Search" series)."""

    name = "binary_search"

    def check(
        self, regions: RegionSet, address: int, size: int, access: str
    ) -> GuardOutcome:
        n = len(regions)
        if n == 0:
            return GuardOutcome(False, self.costs.range_guard_single)
        if n == 1:
            region = regions.regions[0]
            allowed = region.covers(address, size) and region.allows(access)
            return GuardOutcome(allowed, self.costs.range_guard_single, region)
        cycles = self.costs.binary_search_probe * max(
            1, math.ceil(math.log2(n + 1))
        )
        region = regions.find(address)
        allowed = (
            region is not None
            and region.covers(address, size)
            and region.allows(access)
        )
        return GuardOutcome(allowed, cycles, region)

    def check_known(
        self,
        regions: RegionSet,
        region: Region,
        address: int,
        size: int,
        access: str,
    ) -> GuardOutcome:
        n = len(regions)
        allowed = address + size <= region.end and region.allows(access)
        if n == 1:
            return GuardOutcome(allowed, self.costs.range_guard_single, region)
        cycles = self.costs.binary_search_probe * max(
            1, math.ceil(math.log2(n + 1))
        )
        return GuardOutcome(allowed, cycles, region)

    def steady_cycles(self, regions: RegionSet) -> Optional[int]:
        n = len(regions)
        if n == 0:
            return None
        if n == 1:
            return self.costs.range_guard_single
        return self.costs.binary_search_probe * max(
            1, math.ceil(math.log2(n + 1))
        )


class IfTreeGuard(GuardMechanism):
    """The statically laid out comparison tree.  Its branches follow the
    access pattern: a strided sweep keeps taking the same path, so the
    predictor learns it (Figure 4b); random probes pay mispredictions.

    ``stride_hint`` tells the cost model which regime the caller is in;
    the interpreter passes its measured access locality.
    """

    name = "if_tree"

    def __init__(
        self, costs: CostModel = DEFAULT_COSTS, stride_hint: bool = False
    ) -> None:
        super().__init__(costs)
        self.stride_hint = stride_hint
        self._last_leaf: Optional[int] = None

    def check(
        self, regions: RegionSet, address: int, size: int, access: str
    ) -> GuardOutcome:
        n = len(regions)
        region = regions.find(address)
        leaf = region.base if region is not None else -1
        predictable = self.stride_hint or leaf == self._last_leaf
        self._last_leaf = leaf
        cycles = self.costs.guard_cost("if_tree", n, strided=predictable)
        allowed = (
            region is not None
            and region.covers(address, size)
            and region.allows(access)
        )
        return GuardOutcome(allowed, cycles, region)

    def check_known(
        self,
        regions: RegionSet,
        region: Region,
        address: int,
        size: int,
        access: str,
    ) -> GuardOutcome:
        leaf = region.base
        predictable = self.stride_hint or leaf == self._last_leaf
        self._last_leaf = leaf
        cycles = self.costs.guard_cost(
            "if_tree", len(regions), strided=predictable
        )
        allowed = address + size <= region.end and region.allows(access)
        return GuardOutcome(allowed, cycles, region)

    def steady_cycles(self, regions: RegionSet) -> Optional[int]:
        # The constant cost exists only on the predictable path; the
        # specializer's fast-path condition must check the predictor
        # (``stride_hint`` or a repeated leaf) before charging this.
        return self.costs.guard_cost("if_tree", len(regions), strided=True)


class MPXGuard(GuardMechanism):
    """Bounds-register check: single cycle against the hottest region, a
    software fallback for the rest (Figure 3's "MPX Guard" bars)."""

    name = "mpx"

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        super().__init__(costs)
        self._bound: Optional[Region] = None
        self._bound_version = -1

    def check(
        self, regions: RegionSet, address: int, size: int, access: str
    ) -> GuardOutcome:
        if self._bound_version != regions.version:
            self._bound = None
            self._bound_version = regions.version
        if (
            self._bound is not None
            and self._bound.covers(address, size)
            and self._bound.allows(access)
        ):
            return GuardOutcome(True, self.costs.mpx_guard, self._bound)
        # Bounds-register miss: fall back to binary search and reload the
        # register with the region that served the access.
        cycles = self.costs.guard_cost("mpx", len(regions))
        region = regions.find(address)
        allowed = (
            region is not None
            and region.covers(address, size)
            and region.allows(access)
        )
        if allowed:
            self._bound = region
        return GuardOutcome(allowed, cycles, region)

    def check_known(
        self,
        regions: RegionSet,
        region: Region,
        address: int,
        size: int,
        access: str,
    ) -> GuardOutcome:
        if self._bound_version != regions.version:
            self._bound = None
            self._bound_version = regions.version
        bound = self._bound
        if (
            bound is not None
            and bound.covers(address, size)
            and bound.allows(access)
        ):
            # Regions are disjoint and both contain ``address``, so the
            # loaded bounds register necessarily holds ``region`` itself.
            return GuardOutcome(True, self.costs.mpx_guard, bound)
        cycles = self.costs.guard_cost("mpx", len(regions))
        allowed = address + size <= region.end and region.allows(access)
        if allowed:
            self._bound = region
        return GuardOutcome(allowed, cycles, region)

    def steady_cycles(self, regions: RegionSet) -> Optional[int]:
        # Valid only while the bounds register still holds the region the
        # specialization captured (a register reload by any interleaved
        # guard must demote the site back to the generic path).
        return self.costs.mpx_guard


def make_guard(name: str, costs: CostModel = DEFAULT_COSTS) -> GuardMechanism:
    if name == "mpx":
        return MPXGuard(costs)
    if name == "binary_search":
        return BinarySearchGuard(costs)
    if name == "if_tree":
        return IfTreeGuard(costs)
    raise ValueError(f"unknown guard mechanism {name!r}")
