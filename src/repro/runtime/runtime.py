"""The CARAT runtime (Section 4.2).

Linked into every CARAT process (here: bound to the interpreter at load
time), it is the backend for the injected instrumentation and the
interface to the kernel:

* **tracking** — ``on_alloc`` / ``on_free`` update the Allocation Table
  eagerly; ``on_escape`` appends to the batched escape buffer;
* **protection** — ``guard_*`` validate accesses against the kernel's
  region landing zone through a pluggable guard mechanism, raising
  :class:`~repro.errors.ProtectionFault` (the analog of a #GP) on failure
  and accounting every guard's cycles;
* **mapping** — ``service_move_request`` runs the Figure 8 protocol:
  world-stop, negotiate, patch, move, resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtectionFault
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.runtime.allocation_table import Allocation, AllocationTable
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.patching import (
    MemoryInterface,
    MoveCost,
    MovePlan,
    Patcher,
    RegisterSnapshot,
)
from repro.runtime.regions import GuardMechanism, RegionSet, make_guard


@dataclass
class RuntimeStats:
    """Counters behind Figures 3, 5, 6, 7, 9 and Table 3."""

    guards_executed: int = 0
    guard_cycles: int = 0
    guard_faults: int = 0
    tracking_events: int = 0
    tracking_cycles: int = 0
    world_stops: int = 0
    moves_serviced: int = 0
    move_cost_accum: MoveCost = field(default_factory=MoveCost)


class CaratRuntime:
    """The per-process runtime: tracking, guards, and patching backend."""

    #: Per-entry cost (bytes) of an Allocation Table node: key, length,
    #: kind, two child pointers, parent, color — matching a C++ rb-tree node.
    TABLE_ENTRY_BYTES = 64

    def __init__(
        self,
        memory: MemoryInterface,
        regions: Optional[RegionSet] = None,
        guard_mechanism: str = "mpx",
        costs: CostModel = DEFAULT_COSTS,
        escape_batch_limit: int = 4096,
    ) -> None:
        self.memory = memory
        self.regions = regions if regions is not None else RegionSet()
        self.costs = costs
        self.guard: GuardMechanism = make_guard(guard_mechanism, costs)
        self.table = AllocationTable()
        self.escapes = AllocationToEscapeMap(batch_limit=escape_batch_limit)
        self.patcher = Patcher(self.table, self.escapes, memory, costs)
        self.stats = RuntimeStats()
        self._stopped = False
        #: escapes-at-free-time -> allocation count, accumulated over the
        #: whole run (Figure 5 reports lifetime histograms, so freed
        #: allocations must keep contributing).
        self._lifetime_escape_counts: Dict[int, int] = {}
        #: High-water mark of the tracking structures (Figure 6 reports
        #: the footprint the run *needed*, not what is live at exit).
        self.peak_tracking_bytes = 0

    # ------------------------------------------------------------------
    # Tracking callbacks (carat.alloc / carat.free / carat.escape)
    # ------------------------------------------------------------------

    def on_alloc(self, address: int, size: int, kind: str = "heap") -> Allocation:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.alloc_table_update
        # Stack allocas land inside the stack block the loader registered;
        # the table tracks "the stack" as one entry (Section 4.2), so a
        # covered sub-allocation needs no new node.
        containing = self.table.find_containing(address, max(1, size))
        if containing is not None and containing.kind == "stack":
            return containing
        allocation = self.table.add(address, size, kind)
        self._note_footprint()
        return allocation

    def on_free(self, address: int) -> Optional[Allocation]:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.alloc_table_update
        if self.table.find_containing(address) is not None:
            # Attribute pending records before the allocation disappears so
            # the lifetime histogram (Figure 5) sees them.
            self.escapes.flush(self.table, self.memory.read_u64)
        allocation = self.table.remove_if_present(address)
        if allocation is not None:
            count = self.escapes.escape_count(allocation)
            self._lifetime_escape_counts[count] = (
                self._lifetime_escape_counts.get(count, 0) + 1
            )
            self.escapes.drop_allocation(allocation.address)
        return allocation

    def on_escape(self, location: int) -> None:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.escape_record
        self.escapes.record(location)
        if self.escapes.needs_flush():
            self.flush_escapes()

    def flush_escapes(self) -> int:
        resolved = self.escapes.flush(self.table, self.memory.read_u64)
        # Batch resolution costs one table lookup per record.
        self.stats.tracking_cycles += resolved * (self.costs.escape_record * 2)
        if resolved:
            self._note_footprint()
        return resolved

    def _note_footprint(self) -> None:
        current = self.tracking_footprint_bytes()
        if current > self.peak_tracking_bytes:
            self.peak_tracking_bytes = current

    # ------------------------------------------------------------------
    # Guards (carat.guard.*)
    # ------------------------------------------------------------------

    def guard_access(self, address: int, size: int, access: str) -> int:
        """Validate a data access; returns cycles charged, raises
        :class:`ProtectionFault` when disallowed."""
        outcome = self.guard.check(self.regions, address, size, access)
        self.stats.guards_executed += 1
        self.stats.guard_cycles += outcome.cycles
        if not outcome.allowed:
            self.stats.guard_faults += 1
            raise ProtectionFault(address, size, access)
        return outcome.cycles

    def guard_range(self, address: int, length: int, access: str = "read") -> int:
        """Merged (Opt-2) guard: the whole byte range must be permitted for
        ``access``.  Zero-length ranges always pass — emitted for loops
        whose trip count may be zero."""
        self.stats.guards_executed += 1
        if length <= 0:
            self.stats.guard_cycles += self.costs.instruction
            return self.costs.instruction
        outcome = self.guard.check(self.regions, address, length, access)
        self.stats.guard_cycles += outcome.cycles
        if not outcome.allowed:
            self.stats.guard_faults += 1
            raise ProtectionFault(address, length, "range")
        return outcome.cycles

    def guard_call(self, stack_pointer: int, frame_size: int) -> int:
        """Call guard: the callee's worst-case frame [sp-frame, sp) must be
        inside a writable region (the stack grows down)."""
        base = stack_pointer - frame_size
        outcome = self.guard.check(self.regions, base, frame_size, "write")
        self.stats.guards_executed += 1
        self.stats.guard_cycles += outcome.cycles
        if not outcome.allowed:
            self.stats.guard_faults += 1
            # A failed stack guard aborts to the kernel, which may choose
            # to expand the stack (Section 2.2); the interpreter surfaces
            # this as a fault the kernel can catch.
            raise ProtectionFault(base, frame_size, "stack")
        return outcome.cycles

    # ------------------------------------------------------------------
    # Kernel-driven changes (Figure 8)
    # ------------------------------------------------------------------

    def world_stop(self, thread_count: int = 1) -> int:
        """Steps 2-4: signal threads, dump registers, barrier.  Returns the
        cycles charged."""
        self._stopped = True
        self.stats.world_stops += 1
        cycles = self.costs.world_stop_per_thread * max(1, thread_count)
        return cycles

    def resume(self) -> None:
        self._stopped = False

    @property
    def is_stopped(self) -> bool:
        return self._stopped

    def service_move_request(
        self,
        lo: int,
        hi: int,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> Tuple[MovePlan, MoveCost]:
        """Steps 4-12 for one move request.  The caller (kernel module) is
        responsible for the world-stop bracket and for updating the region
        set afterwards."""
        plan, cost = self.patcher.move_pages(
            lo, hi, destination, register_snapshots
        )
        self.stats.moves_serviced += 1
        self.stats.move_cost_accum = self.stats.move_cost_accum + cost
        return plan, cost

    # ------------------------------------------------------------------
    # Introspection (feasibility figures)
    # ------------------------------------------------------------------

    def tracking_footprint_bytes(self) -> int:
        """Memory dedicated to the tracking structures (Figure 6)."""
        return (
            len(self.table) * self.TABLE_ENTRY_BYTES
            + self.escapes.memory_footprint_bytes()
        )

    def escape_histogram(self) -> Dict[int, int]:
        """Escapes-per-allocation over the whole run (Figure 5): freed
        allocations contribute their count at free time, live ones their
        current count.  Flushes first so pending records are attributed."""
        self.flush_escapes()
        histogram = dict(self._lifetime_escape_counts)
        for count, allocations in self.escapes.histogram().items():
            histogram[count] = histogram.get(count, 0) + allocations
        zero_live = sum(
            1 for a in self.table if self.escapes.escape_count(a) == 0
        )
        if zero_live:
            histogram[0] = histogram.get(0, 0) + zero_live
        return histogram

    def worst_case_allocation(self) -> Optional[Allocation]:
        """The live allocation with the most escapes — the page the
        Figure 9 experiment keeps moving."""
        self.flush_escapes()
        best: Optional[Allocation] = None
        best_count = -1
        for allocation in self.table:
            count = self.escapes.escape_count(allocation)
            if count > best_count:
                best, best_count = allocation, count
        return best
