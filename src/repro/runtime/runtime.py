"""The CARAT runtime (Section 4.2).

Linked into every CARAT process (here: bound to the interpreter at load
time), it is the backend for the injected instrumentation and the
interface to the kernel:

* **tracking** — ``on_alloc`` / ``on_free`` update the Allocation Table
  eagerly; ``on_escape`` appends to the batched escape buffer;
* **protection** — ``guard_*`` validate accesses against the kernel's
  region landing zone through a pluggable guard mechanism, raising
  :class:`~repro.errors.ProtectionFault` (the analog of a #GP) on failure
  and accounting every guard's cycles;
* **mapping** — ``service_move_request`` runs the Figure 8 protocol:
  world-stop, negotiate, patch, move, resume.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtectionFault, SafetyFault
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.runtime.allocation_table import Allocation, AllocationTable
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.patching import (
    PAGE_SIZE,
    MemoryInterface,
    MoveCost,
    MovePlan,
    Patcher,
    RegisterSnapshot,
)

from repro.runtime.regions import (
    GuardMechanism,
    GuardOutcome,
    Region,
    RegionSet,
    make_guard,
)

#: Extra cycles a guard pays when its access overlaps an in-flight
#: incremental move's source range: the access must consult the move's
#: forwarding state before it can proceed (the fine-grained region lock
#: — only the moving range stalls; every other region is untouched).
MOVE_WINDOW_STALL_CYCLES = 60


class MoveWindow:
    """One in-flight incremental move's source range, as the guards and
    tracking callbacks see it between chunks.

    While a window is open the world keeps running: writes into the
    range mark their pages dirty (the flip re-copies exactly those),
    new escape records bump ``dirty_escapes`` (the flip re-scans them),
    and an allocation appearing or vanishing inside the range sets
    ``structurally_dirty`` (the flip must re-negotiate the plan).
    """

    __slots__ = ("lo", "hi", "dirty_pages", "dirty_escapes", "structurally_dirty")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        #: Page indices (absolute) written since the window opened.
        self.dirty_pages: set = set()
        #: Escape records made since the window opened (re-scanned at flip).
        self.dirty_escapes = 0
        self.structurally_dirty = False

    def overlaps(self, address: int, size: int) -> bool:
        return address < self.hi and address + size > self.lo

    def mark_write(self, address: int, size: int) -> None:
        lo = max(address, self.lo)
        hi = min(address + max(1, size), self.hi)
        for page in range(lo // PAGE_SIZE, (hi + PAGE_SIZE - 1) // PAGE_SIZE):
            self.dirty_pages.add(page)


@dataclass
class RuntimeStats:
    """Counters behind Figures 3, 5, 6, 7, 9 and Table 3."""

    guards_executed: int = 0
    guard_cycles: int = 0
    guard_faults: int = 0
    tracking_events: int = 0
    tracking_cycles: int = 0
    world_stops: int = 0
    moves_serviced: int = 0
    #: Move attempts this runtime rolled back (the transactional path).
    moves_rolled_back: int = 0
    move_cost_accum: MoveCost = field(default_factory=MoveCost)
    #: Epoch-invalidated region cache telemetry (fast engine only; the
    #: reference engine leaves these at zero).  Cycle accounting is not
    #: affected by the cache — these count saved *searches*, not cycles.
    region_cache_hits: int = 0
    region_cache_misses: int = 0
    region_cache_invalidations: int = 0

    def region_cache_hit_rate(self) -> float:
        total = self.region_cache_hits + self.region_cache_misses
        return self.region_cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """Uniform telemetry schema; the accumulated move cost nests."""
        out = dataclasses.asdict(self)
        out["move_cost_accum"] = self.move_cost_accum.to_dict()
        return out


class GuardSiteCell:
    """One guard site's memoized last-hit region.

    Valid only while ``regions`` is the same landing zone *object* and
    ``gen`` matches its current generation — identity protects against
    cross-run reuse of compiled code, the generation against any kernel
    mutation or page move in between.
    """

    __slots__ = ("regions", "region", "gen")

    def __init__(self) -> None:
        self.regions: Optional[RegionSet] = None
        self.region: Optional[Region] = None
        self.gen = -1

    def fill(self, regions: RegionSet, region: Region, gen: int) -> None:
        self.regions = regions
        self.region = region
        self.gen = gen


class CaratRuntime:
    """The per-process runtime: tracking, guards, and patching backend."""

    #: Per-entry cost (bytes) of an Allocation Table node: key, length,
    #: kind, two child pointers, parent, color — matching a C++ rb-tree node.
    TABLE_ENTRY_BYTES = 64

    def __init__(
        self,
        memory: MemoryInterface,
        regions: Optional[RegionSet] = None,
        guard_mechanism: str = "mpx",
        costs: CostModel = DEFAULT_COSTS,
        escape_batch_limit: int = 4096,
    ) -> None:
        self.memory = memory
        self.regions = regions if regions is not None else RegionSet()
        self.costs = costs
        self.guard: GuardMechanism = make_guard(guard_mechanism, costs)
        self.table = AllocationTable()
        self.escapes = AllocationToEscapeMap(batch_limit=escape_batch_limit)
        self.patcher = Patcher(
            self.table, self.escapes, memory, costs, regions=self.regions
        )
        self.stats = RuntimeStats()
        self._stopped = False
        #: Open :class:`MoveWindow` list — normally empty, so the guard
        #: fast path pays one falsy check.  Only accesses overlapping an
        #: open window's range pay the stall toll.
        self._move_windows: List[MoveWindow] = []
        #: Attached :class:`~repro.telemetry.Tracer` (set by the session).
        #: Guard faults always emit; per-check and per-tracking-callback
        #: instants only at ``fine`` detail.  Never charges cycles.
        self.tracer = None
        #: Epoch-invalidated region cache (the fast engine's part (b)).
        #: Off by default: the reference engine keeps the pristine
        #: guard-per-access behaviour that the figures are calibrated on.
        self.region_cache_enabled = False
        self._last_hit_cell = GuardSiteCell()
        #: escapes-at-free-time -> allocation count, accumulated over the
        #: whole run (Figure 5 reports lifetime histograms, so freed
        #: allocations must keep contributing).
        self._lifetime_escape_counts: Dict[int, int] = {}
        #: High-water mark of the tracking structures (Figure 6 reports
        #: the footprint the run *needed*, not what is live at exit).
        self.peak_tracking_bytes = 0
        #: Attached :class:`~repro.runtime.safety.SafetyChecker`
        #: (``--safety`` mode); ``None`` keeps every guard path — and
        #: every fingerprinted cycle — exactly as before.
        self.safety = None

    def enable_safety(self, toolchain: Optional[str] = None):
        """Turn on CryptSan-style guard-time memory safety: every
        allowed access is additionally checked against allocation-table
        liveness, and violations raise
        :class:`~repro.errors.SafetyFault` with HMAC provenance tags.
        Returns the attached checker."""
        from repro.runtime.safety import SafetyChecker

        if self.safety is None:
            if toolchain is None:
                self.safety = SafetyChecker(self)
            else:
                self.safety = SafetyChecker(self, toolchain)
        return self.safety

    # ------------------------------------------------------------------
    # Tracking callbacks (carat.alloc / carat.free / carat.escape)
    # ------------------------------------------------------------------

    def on_alloc(self, address: int, size: int, kind: str = "heap") -> Allocation:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.alloc_table_update
        # Stack allocas land inside the stack block the loader registered;
        # the table tracks "the stack" as one entry (Section 4.2), so a
        # covered sub-allocation needs no new node.
        containing = self.table.find_containing(address, max(1, size))
        if containing is not None and containing.kind == "stack":
            return containing
        if self._move_windows:
            for window in self._move_windows:
                if window.overlaps(address, max(1, size)):
                    window.structurally_dirty = True
        allocation = self.table.add(address, size, kind)
        if self.safety is not None:
            self.safety.note_alloc(allocation)
        self._note_footprint()
        tracer = self.tracer
        if tracer is not None and tracer.fine:
            tracer.instant(
                "tracking.alloc", "tracking",
                {"address": address, "size": size, "kind": kind},
            )
        return allocation

    def on_free(self, address: int) -> Optional[Allocation]:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.alloc_table_update
        if self.table.find_containing(address) is not None:
            # Attribute pending records before the allocation disappears so
            # the lifetime histogram (Figure 5) sees them.
            self.escapes.flush(self.table, self.memory.read_u64)
        allocation = self.table.remove_if_present(address)
        if allocation is not None and self._move_windows:
            for window in self._move_windows:
                if window.overlaps(allocation.address, allocation.size):
                    window.structurally_dirty = True
        if allocation is not None:
            if self.safety is not None:
                self.safety.note_free(allocation)
            count = self.escapes.escape_count(allocation)
            self._lifetime_escape_counts[count] = (
                self._lifetime_escape_counts.get(count, 0) + 1
            )
            self.escapes.drop_allocation(allocation.address)
        tracer = self.tracer
        if tracer is not None and tracer.fine:
            tracer.instant("tracking.free", "tracking", {"address": address})
        return allocation

    def on_escape(self, location: int) -> None:
        self.stats.tracking_events += 1
        self.stats.tracking_cycles += self.costs.escape_record
        if self._move_windows:
            # An escape matters to an in-flight move only if the stored
            # pointer lands in its range — those are what the flip must
            # re-scan (and the write dirties the holding page like any
            # other store).
            try:
                value = self.memory.read_u64(location)
            except Exception:
                value = None
            for window in self._move_windows:
                if value is None or window.lo <= value < window.hi:
                    window.dirty_escapes += 1
                if window.overlaps(location, 8):
                    window.mark_write(location, 8)
        self.escapes.record(location)
        if self.escapes.needs_flush():
            self.flush_escapes()

    def flush_escapes(self) -> int:
        resolved = self.escapes.flush(self.table, self.memory.read_u64)
        # Batch resolution costs one table lookup per record.
        self.stats.tracking_cycles += resolved * (self.costs.escape_record * 2)
        if resolved:
            self._note_footprint()
            if self.tracer is not None:
                self.tracer.instant(
                    "tracking.flush", "tracking", {"resolved": resolved}
                )
        return resolved

    def _note_footprint(self) -> None:
        current = self.tracking_footprint_bytes()
        if current > self.peak_tracking_bytes:
            self.peak_tracking_bytes = current

    # ------------------------------------------------------------------
    # Move windows (the incremental protocol's write barrier)
    # ------------------------------------------------------------------

    def open_move_window(self, lo: int, hi: int) -> MoveWindow:
        """Open a dirty-tracking window over an in-flight move's source
        range.  Guards overlapping it pay :data:`MOVE_WINDOW_STALL_CYCLES`
        and writes mark dirty pages; everything else runs untouched."""
        window = MoveWindow(lo, hi)
        self._move_windows.append(window)
        return window

    def close_move_window(self, window: MoveWindow) -> None:
        try:
            self._move_windows.remove(window)
        except ValueError:
            pass  # already closed (rollback path)

    def _window_toll(self, address: int, size: int, access: str) -> int:
        """Cycles an access overlapping any open move window pays, plus
        the write-barrier side effect (dirty-page marking)."""
        extra = 0
        for window in self._move_windows:
            if window.overlaps(address, size):
                extra += MOVE_WINDOW_STALL_CYCLES
                if access == "write":
                    window.mark_write(address, size)
        return extra

    # ------------------------------------------------------------------
    # Guards (carat.guard.*)
    # ------------------------------------------------------------------

    def enable_region_cache(self) -> None:
        """Turn on the epoch-invalidated guard fast path (the fast engine
        calls this when it binds to the process)."""
        self.region_cache_enabled = True

    def _check_cached(
        self,
        address: int,
        size: int,
        access: str,
        cell: Optional[GuardSiteCell],
    ) -> GuardOutcome:
        """One guard evaluation through the region cache.

        Probes the per-site cell first, then the runtime-wide last-hit
        cell; a valid probe needs only ``base <= address < end`` — the
        mechanism's :meth:`check_known` settles size/permission and
        charges exactly what the uncached path would.  Any generation
        mismatch (region mutation or page move since the fill) demotes
        the probe to the full search, so stale hits cannot happen.
        """
        regions = self.regions
        guard = self.guard
        if not self.region_cache_enabled:
            return guard.check(regions, address, size, access)
        gen = regions.version
        stats = self.stats
        last = self._last_hit_cell
        stale = False
        for probe in (cell, last) if cell is not None else (last,):
            region = probe.region
            if region is None or probe.regions is not regions:
                continue
            if probe.gen != gen:
                stale = True
                continue
            if region.base <= address < region.end:
                stats.region_cache_hits += 1
                if probe is cell:
                    last.fill(regions, region, gen)
                elif cell is not None:
                    cell.fill(regions, region, gen)
                return guard.check_known(regions, region, address, size, access)
        if stale:
            stats.region_cache_invalidations += 1
        stats.region_cache_misses += 1
        outcome = guard.check(regions, address, size, access)
        if outcome.allowed and outcome.region is not None:
            last.fill(regions, outcome.region, gen)
            if cell is not None:
                cell.fill(regions, outcome.region, gen)
        return outcome

    def _safety_scan(
        self, address: int, size: int, access: str, cycles: int
    ) -> int:
        """Safety-mode liveness check for an access the region guard
        already allowed.  Returns the cycle total including the check;
        on a violation, finalizes this guard's accounting (cycles,
        fault count, trace instant) and raises
        :class:`~repro.errors.SafetyFault`."""
        safety = self.safety
        cycles += safety.check_cycles
        violation = safety.scan(address, size, access)
        if violation is None:
            return cycles
        self.stats.guard_cycles += cycles
        self.stats.guard_faults += 1
        if self.tracer is not None:
            self.tracer.instant(
                "guard.safety-fault", "guard", violation.to_dict()
            )
        raise SafetyFault(violation)

    def guard_access(
        self,
        address: int,
        size: int,
        access: str,
        cell: Optional[GuardSiteCell] = None,
    ) -> int:
        """Validate a data access; returns cycles charged, raises
        :class:`ProtectionFault` when disallowed.  ``cell`` is the call
        site's memoization cell when the compiled engine can name sites."""
        outcome = self._check_cached(address, size, access, cell)
        self.stats.guards_executed += 1
        cycles = outcome.cycles
        if self._move_windows:
            cycles += self._window_toll(address, size, access)
        if outcome.allowed and self.safety is not None:
            cycles = self._safety_scan(address, size, access, cycles)
        self.stats.guard_cycles += cycles
        tracer = self.tracer
        if not outcome.allowed:
            self.stats.guard_faults += 1
            if tracer is not None:
                tracer.instant(
                    "guard.fault", "guard",
                    {"address": address, "size": size, "access": access},
                )
            raise ProtectionFault(address, size, access)
        if tracer is not None and tracer.fine:
            tracer.instant(
                "guard.check", "guard",
                {"address": address, "size": size, "access": access,
                 "cycles": cycles},
            )
        return cycles

    def guard_range(
        self,
        address: int,
        length: int,
        access: str = "read",
        cell: Optional[GuardSiteCell] = None,
    ) -> int:
        """Merged (Opt-2) guard: the whole byte range must be permitted for
        ``access``.  Zero-length ranges always pass — emitted for loops
        whose trip count may be zero."""
        self.stats.guards_executed += 1
        if length <= 0:
            self.stats.guard_cycles += self.costs.instruction
            return self.costs.instruction
        outcome = self._check_cached(address, length, access, cell)
        cycles = outcome.cycles
        if self._move_windows:
            cycles += self._window_toll(address, length, access)
        if outcome.allowed and self.safety is not None:
            cycles = self._safety_scan(address, length, access, cycles)
        self.stats.guard_cycles += cycles
        tracer = self.tracer
        if not outcome.allowed:
            self.stats.guard_faults += 1
            if tracer is not None:
                tracer.instant(
                    "guard.fault", "guard",
                    {"address": address, "size": length, "access": "range"},
                )
            raise ProtectionFault(address, length, "range")
        if tracer is not None and tracer.fine:
            tracer.instant(
                "guard.check", "guard",
                {"address": address, "size": length, "access": access,
                 "cycles": cycles},
            )
        return cycles

    def guard_call(
        self,
        stack_pointer: int,
        frame_size: int,
        cell: Optional[GuardSiteCell] = None,
    ) -> int:
        """Call guard: the callee's worst-case frame [sp-frame, sp) must be
        inside a writable region (the stack grows down)."""
        base = stack_pointer - frame_size
        outcome = self._check_cached(base, frame_size, "write", cell)
        self.stats.guards_executed += 1
        cycles = outcome.cycles
        if self._move_windows:
            cycles += self._window_toll(base, frame_size, "write")
        if outcome.allowed and self.safety is not None:
            cycles = self._safety_scan(base, frame_size, "write", cycles)
        self.stats.guard_cycles += cycles
        tracer = self.tracer
        if tracer is not None and outcome.allowed and tracer.fine:
            tracer.instant(
                "guard.check", "guard",
                {"address": base, "size": frame_size, "access": "stack",
                 "cycles": cycles},
            )
        if not outcome.allowed:
            self.stats.guard_faults += 1
            if tracer is not None:
                tracer.instant(
                    "guard.fault", "guard",
                    {"address": base, "size": frame_size, "access": "stack"},
                )
            # A failed stack guard aborts to the kernel, which may choose
            # to expand the stack (Section 2.2); the interpreter surfaces
            # this as a fault the kernel can catch.
            raise ProtectionFault(base, frame_size, "stack")
        return cycles

    # ------------------------------------------------------------------
    # Kernel-driven changes (Figure 8)
    # ------------------------------------------------------------------

    def world_stop(self, thread_count: int = 1) -> int:
        """Steps 2-4: signal threads, dump registers, barrier.  Returns the
        cycles charged."""
        self._stopped = True
        self.stats.world_stops += 1
        cycles = self.costs.world_stop_per_thread * max(1, thread_count)
        return cycles

    def resume(self) -> None:
        self._stopped = False

    def on_move_rollback(self) -> None:
        """A move attempt was rolled back.  Whatever the journal undid,
        addresses may have changed meaning mid-attempt, so every guard
        cache keyed on the region generation must be invalidated — the
        undo restored the *data*, not other agents' memoized lookups."""
        self.stats.moves_rolled_back += 1
        self.regions.bump_generation()

    @property
    def is_stopped(self) -> bool:
        return self._stopped

    def service_move_request(
        self,
        lo: int,
        hi: int,
        destination: int,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> Tuple[MovePlan, MoveCost]:
        """Steps 4-12 for one move request.  The caller (kernel module) is
        responsible for the world-stop bracket and for updating the region
        set afterwards."""
        plan, cost = self.patcher.move_pages(
            lo, hi, destination, register_snapshots
        )
        self.stats.moves_serviced += 1
        self.stats.move_cost_accum = self.stats.move_cost_accum + cost
        return plan, cost

    # ------------------------------------------------------------------
    # Introspection (feasibility figures)
    # ------------------------------------------------------------------

    def tracking_footprint_bytes(self) -> int:
        """Memory dedicated to the tracking structures (Figure 6)."""
        return (
            len(self.table) * self.TABLE_ENTRY_BYTES
            + self.escapes.memory_footprint_bytes()
        )

    def escape_histogram(self) -> Dict[int, int]:
        """Escapes-per-allocation over the whole run (Figure 5): freed
        allocations contribute their count at free time, live ones their
        current count.  Flushes first so pending records are attributed."""
        self.flush_escapes()
        histogram = dict(self._lifetime_escape_counts)
        for count, allocations in self.escapes.histogram().items():
            histogram[count] = histogram.get(count, 0) + allocations
        zero_live = sum(
            1 for a in self.table if self.escapes.escape_count(a) == 0
        )
        if zero_live:
            histogram[0] = histogram.get(0, 0) + zero_live
        return histogram

    def worst_case_allocation(self) -> Optional[Allocation]:
        """The live allocation with the most escapes — the page the
        Figure 9 experiment keeps moving."""
        self.flush_escapes()
        best: Optional[Allocation] = None
        best_count = -1
        for allocation in self.table:
            count = self.escapes.escape_count(allocation)
            if count > best_count:
                best, best_count = allocation, count
        return best
