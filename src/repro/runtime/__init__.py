"""The CARAT runtime: tracking, protection, and patching (Section 4.2).

* :mod:`repro.runtime.rbtree` — the red/black tree under the table
* :mod:`repro.runtime.allocation_table` — the Allocation Table
* :mod:`repro.runtime.escape_map` — the Allocation-to-Escape Map
* :mod:`repro.runtime.regions` — regions and guard mechanisms
* :mod:`repro.runtime.patching` — page-move planning and execution
* :mod:`repro.runtime.runtime` — the :class:`CaratRuntime` facade
"""

from repro.runtime.allocation_table import Allocation, AllocationTable
from repro.runtime.escape_map import AllocationToEscapeMap
from repro.runtime.patching import (
    PAGE_SIZE,
    MoveCost,
    MovePlan,
    Patcher,
    RegisterSnapshot,
    page_down,
    page_up,
)
from repro.runtime.rbtree import RedBlackTree
from repro.runtime.regions import (
    PERM_EXEC,
    PERM_READ,
    PERM_RW,
    PERM_RWX,
    PERM_WRITE,
    BinarySearchGuard,
    GuardMechanism,
    GuardOutcome,
    IfTreeGuard,
    MPXGuard,
    Region,
    RegionSet,
    make_guard,
)
from repro.runtime.runtime import CaratRuntime, RuntimeStats

__all__ = [
    "Allocation",
    "AllocationTable",
    "AllocationToEscapeMap",
    "PAGE_SIZE",
    "MoveCost",
    "MovePlan",
    "Patcher",
    "RegisterSnapshot",
    "page_down",
    "page_up",
    "RedBlackTree",
    "PERM_EXEC",
    "PERM_READ",
    "PERM_RW",
    "PERM_RWX",
    "PERM_WRITE",
    "BinarySearchGuard",
    "GuardMechanism",
    "GuardOutcome",
    "IfTreeGuard",
    "MPXGuard",
    "Region",
    "RegionSet",
    "make_guard",
    "CaratRuntime",
    "RuntimeStats",
]
