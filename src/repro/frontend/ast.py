"""Abstract syntax tree for Mini-C.

Nodes are small dataclasses with source positions for diagnostics.  Types
in the AST are *syntactic* (:class:`TypeSpec`); semantic analysis resolves
them to IR types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# -- types (syntactic) ---------------------------------------------------------


@dataclass
class TypeSpec(Node):
    """``base`` is one of 'char', 'int', 'long', 'double', 'void', or
    'struct <name>'; ``pointer_depth`` counts trailing ``*``; an optional
    array length applies to declarations like ``long a[100]``."""

    base: str = ""
    struct_name: Optional[str] = None
    pointer_depth: int = 0
    array_length: Optional[int] = None

    def with_pointer(self) -> "TypeSpec":
        return TypeSpec(
            base=self.base,
            struct_name=self.struct_name,
            pointer_depth=self.pointer_depth + 1,
            array_length=None,
            line=self.line,
            col=self.col,
        )

    def __str__(self) -> str:
        name = f"struct {self.struct_name}" if self.base == "struct" else self.base
        stars = "*" * self.pointer_depth
        suffix = f"[{self.array_length}]" if self.array_length is not None else ""
        return f"{name}{stars}{suffix}"


# -- expressions ----------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    value: bytes = b""


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class BinaryOp(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnaryOp(Expr):
    """op in {'-', '!', '~', '*', '&'}."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Assignment(Expr):
    """``target = value`` (or compound ``op`` like '+"='"); target must be
    an lvalue."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Optional[Expr] = None
    field_name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: Optional[TypeSpec] = None
    operand: Optional[Expr] = None


@dataclass
class SizeOf(Expr):
    target_type: Optional[TypeSpec] = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


# -- statements --------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    type_spec: Optional[TypeSpec] = None
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Stmt] = None
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # VarDecl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class InlineAsm(Stmt):
    """Parsed only so semantic analysis can reject it (CARAT restriction 3)."""

    text: str = ""


# -- top level ----------------------------------------------------------------------


@dataclass
class Param(Node):
    type_spec: Optional[TypeSpec] = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: Optional[TypeSpec] = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None  # None => declaration only


@dataclass
class StructDef(Node):
    name: str = ""
    fields: List[Tuple[TypeSpec, str]] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    type_spec: Optional[TypeSpec] = None
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class Program(Node):
    items: List[Union[FunctionDef, StructDef, GlobalDecl]] = field(
        default_factory=list
    )
