"""Lexer for Mini-C, the small C subset the workloads are written in.

Mini-C covers the parts of C the paper's benchmarks exercise: scalar types
(char/int/long/double), pointers, arrays, structs, functions, the usual
expression operators, and if/while/for/do control flow.  Inline assembly
is tokenized (``asm``) so semantic analysis can *reject* it — CARAT's
restriction 3 demands compilation failure, not silent acceptance.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "char",
        "int",
        "long",
        "double",
        "void",
        "struct",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "asm",
        "null",
    }
)

_TOKEN_SPEC = [
    ("ws", r"[ \t\r\n]+"),
    ("line_comment", r"//[^\n]*"),
    ("block_comment", r"/\*.*?\*/"),
    ("float", r"\d+\.\d*(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+|\.\d+(?:[eE][-+]?\d+)?"),
    ("int", r"0[xX][0-9a-fA-F]+|\d+"),
    ("char_lit", r"'(?:\\.|[^'\\])'"),
    ("string", r'"(?:\\.|[^"\\])*"'),
    ("ident", r"[A-Za-z_][A-Za-z0-9_]*"),
    (
        "punct",
        r"->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|"
        r"[-+*/%&|^~!<>=(){}\[\],;.?:]",
    ),
]

_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
    re.DOTALL,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Token(NamedTuple):
    """One lexeme with its kind and source position."""

    kind: str  # 'int', 'float', 'char', 'string', 'ident', 'keyword', 'punct', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.col}>"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line, col = 1, 1
    while pos < len(source):
        match = _MASTER_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind == "char_lit":
            kind = "char"
        if kind not in ("ws", "line_comment", "block_comment"):
            tokens.append(Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = match.end()
    tokens.append(Token("eof", "", line, col))
    return tokens


def decode_char_literal(text: str, line: int = 0, col: int = 0) -> int:
    """Numeric value of a character literal like ``'a'`` or ``'\\n'``."""
    inner = text[1:-1]
    if inner.startswith("\\"):
        escape = inner[1]
        if escape not in _ESCAPES:
            raise ParseError(f"unknown escape sequence \\{escape}", line, col)
        return ord(_ESCAPES[escape])
    return ord(inner)


def decode_string_literal(text: str, line: int = 0, col: int = 0) -> bytes:
    """Bytes of a string literal, NUL-terminated."""
    inner = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(inner):
        ch = inner[i]
        if ch == "\\":
            i += 1
            if i >= len(inner):
                raise ParseError("dangling escape in string literal", line, col)
            escape = inner[i]
            if escape not in _ESCAPES:
                raise ParseError(f"unknown escape sequence \\{escape}", line, col)
            out.append(ord(_ESCAPES[escape]))
        else:
            out.append(ord(ch))
        i += 1
    out.append(0)
    return bytes(out)
