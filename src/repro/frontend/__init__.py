"""Mini-C: the C-subset frontend used to author workloads.

The pipeline is ``parse`` (text -> AST), ``analyze`` (types + CARAT source
restrictions), and ``compile_source`` (all the way to a verified IR
module).
"""

from repro.frontend.lower import compile_source
from repro.frontend.parser import parse
from repro.frontend.sema import BUILTIN_FUNCTIONS, SemanticAnalyzer, analyze

__all__ = [
    "compile_source",
    "parse",
    "analyze",
    "SemanticAnalyzer",
    "BUILTIN_FUNCTIONS",
]
