"""Semantic analysis for Mini-C.

Resolves syntactic types to IR types, builds symbol tables, type-checks
every expression, and — critically for CARAT — enforces the source
restrictions of Section 2.2:

1. detected undefined behavior fails compilation (e.g. division by a
   constant zero, out-of-range constant array indexing of globals);
2. no casts between function and data pointers, no pointer arithmetic on
   functions (Mini-C cannot even express function pointers; using a
   function name as a value is rejected here);
3. no inline assembly (``asm("...")`` parses, then is rejected here).

The analysis leaves its results in side tables consumed by the lowering
pass: ``expr_type[id(node)]`` and the ``lvalue`` set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RestrictionError, SemanticError
from repro.frontend import ast
from repro.ir.types import (
    ArrayType,
    F64,
    FloatType,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    ptr,
)

CHAR = I8
INT = I32
LONG = I64
DOUBLE = F64

#: External functions every Mini-C program may call without declaring.
#: These are provided by the simulated environment (libc analogs).
BUILTIN_FUNCTIONS: Dict[str, Tuple[Type, List[Type]]] = {
    "malloc": (ptr(I8), [I64]),
    "calloc": (ptr(I8), [I64, I64]),
    "free": (VOID, [ptr(I8)]),
    "print_long": (VOID, [I64]),
    "print_double": (VOID, [F64]),
    "print_str": (VOID, [ptr(I8)]),
    "sqrt": (F64, [F64]),
    "exp": (F64, [F64]),
    "log": (F64, [F64]),
    "fabs": (F64, [F64]),
    "floor": (F64, [F64]),
    "abort": (VOID, []),
}


class FunctionSignature:
    """A callable's resolved return/parameter types (builtin or user)."""

    __slots__ = ("name", "return_type", "param_types", "is_builtin")

    def __init__(
        self,
        name: str,
        return_type: Type,
        param_types: List[Type],
        is_builtin: bool = False,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self.param_types = param_types
        self.is_builtin = is_builtin


class SemanticInfo:
    """Everything lowering needs: resolved types and symbol kinds."""

    def __init__(self) -> None:
        self.expr_type: Dict[int, Type] = {}
        self.lvalues: Set[int] = set()
        self.structs: Dict[str, StructType] = {}
        self.struct_fields: Dict[str, List[str]] = {}
        self.functions: Dict[str, FunctionSignature] = {}
        self.globals: Dict[str, Type] = {}
        #: id(Identifier node) -> ('local'|'global'|'param', declared type)
        self.symbol_kind: Dict[int, Tuple[str, Type]] = {}
        #: id(node) -> resolved declared type for VarDecl / GlobalDecl / casts
        self.declared_type: Dict[int, Type] = {}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, Tuple[str, Type]] = {}

    def define(self, name: str, kind: str, ty: Type) -> None:
        if name in self.symbols:
            raise SemanticError(f"redefinition of {name!r}")
        self.symbols[name] = (kind, ty)

    def lookup(self, name: str) -> Optional[Tuple[str, Type]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


def _err(node: ast.Node, message: str) -> SemanticError:
    return SemanticError(f"{message} (at {node.line}:{node.col})")


def _restriction(node: ast.Node, message: str) -> RestrictionError:
    return RestrictionError(
        f"CARAT restriction violated: {message} (at {node.line}:{node.col})"
    )


class SemanticAnalyzer:
    def __init__(self) -> None:
        self.info = SemanticInfo()
        self._current_return: Optional[Type] = None
        self._loop_depth = 0

    # -- entry point -----------------------------------------------------------------

    def analyze(self, program: ast.Program) -> SemanticInfo:
        for name, (ret, params) in BUILTIN_FUNCTIONS.items():
            self.info.functions[name] = FunctionSignature(
                name, ret, list(params), is_builtin=True
            )
        # First pass: struct definitions, then function signatures & globals,
        # so forward calls and recursive types work.
        for item in program.items:
            if isinstance(item, ast.StructDef):
                self._declare_struct(item)
        for item in program.items:
            if isinstance(item, ast.StructDef):
                self._define_struct(item)
        for item in program.items:
            if isinstance(item, ast.FunctionDef):
                self._declare_function(item)
            elif isinstance(item, ast.GlobalDecl):
                self._declare_global(item)
        for item in program.items:
            if isinstance(item, ast.FunctionDef) and item.body is not None:
                self._check_function(item)
        return self.info

    # -- declarations --------------------------------------------------------------------

    def _declare_struct(self, node: ast.StructDef) -> None:
        if node.name in self.info.structs:
            raise _err(node, f"duplicate struct {node.name!r}")
        self.info.structs[node.name] = StructType([], name=node.name)

    def _define_struct(self, node: ast.StructDef) -> None:
        st = self.info.structs[node.name]
        field_types: List[Type] = []
        field_names: List[str] = []
        for spec, fname in node.fields:
            fty = self.resolve_type(spec, allow_void=False)
            if isinstance(fty, StructType) and not fty.fields and fty is st:
                raise _err(node, f"struct {node.name!r} directly contains itself")
            field_types.append(fty)
            if fname in field_names:
                raise _err(node, f"duplicate field {fname!r} in struct {node.name!r}")
            field_names.append(fname)
        st.fields = tuple(field_types)
        st.field_names = tuple(field_names)
        self.info.struct_fields[node.name] = field_names

    def _declare_function(self, node: ast.FunctionDef) -> None:
        assert node.return_type is not None
        ret = self.resolve_type(node.return_type, allow_void=True)
        params = [
            self.resolve_type(p.type_spec, allow_void=False) for p in node.params
        ]
        existing = self.info.functions.get(node.name)
        if existing is not None:
            if existing.return_type != ret or existing.param_types != params:
                raise _err(node, f"conflicting declaration of {node.name!r}")
            return
        self.info.functions[node.name] = FunctionSignature(node.name, ret, params)

    def _declare_global(self, node: ast.GlobalDecl) -> None:
        assert node.type_spec is not None
        ty = self.resolve_type(node.type_spec, allow_void=False)
        if node.name in self.info.globals or node.name in self.info.functions:
            raise _err(node, f"redefinition of {node.name!r}")
        self.info.globals[node.name] = ty
        self.info.declared_type[id(node)] = ty
        if node.initializer is not None:
            init_ty = self._literal_type(node.initializer)
            if init_ty is None:
                raise _err(
                    node, f"global {node.name!r} initializer must be a constant"
                )
            if not self._assignable(ty, init_ty):
                raise _err(
                    node,
                    f"cannot initialize {node.name!r} of type {ty} "
                    f"from {init_ty}",
                )

    def _literal_type(self, expr: ast.Expr) -> Optional[Type]:
        if isinstance(expr, ast.IntLiteral):
            return LONG
        if isinstance(expr, ast.FloatLiteral):
            return DOUBLE
        if isinstance(expr, ast.NullLiteral):
            return ptr(I8)
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            assert expr.operand is not None
            return self._literal_type(expr.operand)
        return None

    # -- type resolution -----------------------------------------------------------------

    def resolve_type(self, spec: Optional[ast.TypeSpec], allow_void: bool) -> Type:
        assert spec is not None
        base: Type
        if spec.base == "char":
            base = CHAR
        elif spec.base == "int":
            base = INT
        elif spec.base == "long":
            base = LONG
        elif spec.base == "double":
            base = DOUBLE
        elif spec.base == "void":
            if spec.pointer_depth == 0:
                if not allow_void:
                    raise _err(spec, "void is not a value type here")
                return VOID
            base = I8  # void* is modelled as char*
        elif spec.base == "struct":
            assert spec.struct_name is not None
            st = self.info.structs.get(spec.struct_name)
            if st is None:
                raise _err(spec, f"unknown struct {spec.struct_name!r}")
            base = st
        else:  # pragma: no cover - parser restricts bases
            raise _err(spec, f"unknown type {spec.base!r}")
        for _ in range(spec.pointer_depth):
            base = ptr(base)
        if spec.array_length is not None:
            if spec.array_length <= 0:
                raise _err(spec, "array length must be positive")
            base = ArrayType(base, spec.array_length)
        return base

    # -- functions ---------------------------------------------------------------------------

    def _check_function(self, node: ast.FunctionDef) -> None:
        signature = self.info.functions[node.name]
        self._current_return = signature.return_type
        scope = _Scope()
        for param, pty in zip(node.params, signature.param_types):
            scope.define(param.name, "param", pty)
        assert node.body is not None
        self._check_block(node.body, _Scope(scope))
        self._current_return = None

    # -- statements ------------------------------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.VarDecl):
            ty = self.resolve_type(stmt.type_spec, allow_void=False)
            self.info.declared_type[id(stmt)] = ty
            if stmt.initializer is not None:
                init_ty = self._check_expr(stmt.initializer, scope)
                if not self._assignable(ty, init_ty):
                    raise _err(
                        stmt,
                        f"cannot initialize {stmt.name!r} ({ty}) from {init_ty}",
                    )
            scope.define(stmt.name, "local", ty)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then_body is not None
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then_body, _Scope(scope))
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, ast.While):
            assert stmt.cond is not None and stmt.body is not None
            self._check_condition(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, _Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            assert stmt.cond is not None and stmt.body is not None
            self._loop_depth += 1
            self._check_stmt(stmt.body, _Scope(scope))
            self._loop_depth -= 1
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            assert stmt.body is not None
            self._loop_depth += 1
            self._check_stmt(stmt.body, _Scope(inner))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current_return is not None
            if stmt.value is None:
                if not self._current_return.is_void:
                    raise _err(stmt, "return without a value in a non-void function")
            else:
                value_ty = self._check_expr(stmt.value, scope)
                if self._current_return.is_void:
                    raise _err(stmt, "return with a value in a void function")
                if not self._assignable(self._current_return, value_ty):
                    raise _err(
                        stmt,
                        f"cannot return {value_ty} from a function returning "
                        f"{self._current_return}",
                    )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else "continue"
                raise _err(stmt, f"{keyword} outside of a loop")
        elif isinstance(stmt, ast.InlineAsm):
            raise _restriction(stmt, "inline assembly is not allowed")
        else:  # pragma: no cover
            raise _err(stmt, f"unknown statement kind {type(stmt).__name__}")

    def _check_condition(self, expr: ast.Expr, scope: _Scope) -> Type:
        ty = self._check_expr(expr, scope)
        if not (ty.is_integer or ty.is_pointer):
            raise _err(expr, f"condition must be integer or pointer, got {ty}")
        return ty

    # -- expressions ---------------------------------------------------------------------------------

    def _set_type(self, expr: ast.Expr, ty: Type, lvalue: bool = False) -> Type:
        self.info.expr_type[id(expr)] = ty
        if lvalue:
            self.info.lvalues.add(id(expr))
        return ty

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return self._set_type(expr, LONG)
        if isinstance(expr, ast.FloatLiteral):
            return self._set_type(expr, DOUBLE)
        if isinstance(expr, ast.StringLiteral):
            return self._set_type(expr, ptr(I8))
        if isinstance(expr, ast.NullLiteral):
            return self._set_type(expr, ptr(I8))
        if isinstance(expr, ast.Identifier):
            return self._check_identifier(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.Assignment):
            return self._check_assignment(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Member):
            return self._check_member(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._check_cast(expr, scope)
        if isinstance(expr, ast.SizeOf):
            ty = self.resolve_type(expr.target_type, allow_void=False)
            self.info.declared_type[id(expr)] = ty
            return self._set_type(expr, LONG)
        if isinstance(expr, ast.Conditional):
            assert expr.cond and expr.if_true and expr.if_false
            self._check_condition(expr.cond, scope)
            true_ty = self._check_expr(expr.if_true, scope)
            false_ty = self._check_expr(expr.if_false, scope)
            merged = self._common_type(true_ty, false_ty)
            if merged is None:
                raise _err(expr, f"incompatible ternary arms: {true_ty} vs {false_ty}")
            return self._set_type(expr, merged)
        raise _err(expr, f"unknown expression kind {type(expr).__name__}")

    def _check_identifier(self, expr: ast.Identifier, scope: _Scope) -> Type:
        found = scope.lookup(expr.name)
        if found is not None:
            kind, ty = found
            self.info.symbol_kind[id(expr)] = (kind, ty)
            decayed = self._decay(ty)
            return self._set_type(expr, decayed, lvalue=not isinstance(ty, ArrayType))
        if expr.name in self.info.globals:
            ty = self.info.globals[expr.name]
            self.info.symbol_kind[id(expr)] = ("global", ty)
            decayed = self._decay(ty)
            return self._set_type(expr, decayed, lvalue=not isinstance(ty, ArrayType))
        if expr.name in self.info.functions:
            raise _restriction(
                expr,
                f"function {expr.name!r} used as a value (function pointers "
                f"cannot mix with data pointers)",
            )
        raise _err(expr, f"undeclared identifier {expr.name!r}")

    @staticmethod
    def _decay(ty: Type) -> Type:
        """Arrays decay to pointers to their element type in expressions."""
        if isinstance(ty, ArrayType):
            return ptr(ty.element)
        return ty

    def _check_binary(self, expr: ast.BinaryOp, scope: _Scope) -> Type:
        assert expr.lhs is not None and expr.rhs is not None
        lhs = self._check_expr(expr.lhs, scope)
        rhs = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            for ty, node in ((lhs, expr.lhs), (rhs, expr.rhs)):
                if not (ty.is_integer or ty.is_pointer):
                    raise _err(node, f"logical operand must be scalar, got {ty}")
            return self._set_type(expr, LONG)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lhs.is_pointer and rhs.is_pointer:
                return self._set_type(expr, LONG)
            if lhs.is_pointer and rhs.is_integer:
                return self._set_type(expr, LONG)  # ptr vs 0
            if rhs.is_pointer and lhs.is_integer:
                return self._set_type(expr, LONG)
            common = self._common_type(lhs, rhs)
            if common is None:
                raise _err(expr, f"cannot compare {lhs} and {rhs}")
            return self._set_type(expr, LONG)
        if op in ("+", "-"):
            if lhs.is_pointer and rhs.is_integer:
                return self._set_type(expr, lhs)
            if op == "+" and lhs.is_integer and rhs.is_pointer:
                return self._set_type(expr, rhs)
            if op == "-" and lhs.is_pointer and rhs.is_pointer:
                if lhs != rhs:
                    raise _err(expr, f"subtracting incompatible pointers {lhs}, {rhs}")
                return self._set_type(expr, LONG)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (lhs.is_integer and rhs.is_integer):
                raise _err(expr, f"{op!r} requires integer operands")
        if op == "/" and isinstance(expr.rhs, ast.IntLiteral) and expr.rhs.value == 0:
            raise _restriction(expr, "division by constant zero (undefined behavior)")
        if op == "%" and isinstance(expr.rhs, ast.IntLiteral) and expr.rhs.value == 0:
            raise _restriction(expr, "modulo by constant zero (undefined behavior)")
        common = self._common_type(lhs, rhs)
        if common is None:
            raise _err(expr, f"incompatible operands for {op!r}: {lhs} and {rhs}")
        if common.is_float and op in ("%", "<<", ">>", "&", "|", "^"):
            raise _err(expr, f"{op!r} is not defined for floats")
        return self._set_type(expr, common)

    def _check_unary(self, expr: ast.UnaryOp, scope: _Scope) -> Type:
        assert expr.operand is not None
        operand = self._check_expr(expr.operand, scope)
        if expr.op == "-":
            if not (operand.is_integer or operand.is_float):
                raise _err(expr, f"cannot negate {operand}")
            return self._set_type(expr, self._promote(operand))
        if expr.op == "!":
            if not (operand.is_integer or operand.is_pointer):
                raise _err(expr, f"cannot apply ! to {operand}")
            return self._set_type(expr, LONG)
        if expr.op == "~":
            if not operand.is_integer:
                raise _err(expr, f"cannot apply ~ to {operand}")
            return self._set_type(expr, self._promote(operand))
        if expr.op == "*":
            if not isinstance(operand, PointerType):
                raise _err(expr, f"cannot dereference non-pointer {operand}")
            pointee = operand.pointee
            decayed = self._decay(pointee)
            return self._set_type(
                expr, decayed, lvalue=not isinstance(pointee, ArrayType)
            )
        if expr.op == "&":
            if id(expr.operand) not in self.info.lvalues:
                raise _err(expr, "cannot take the address of a non-lvalue")
            return self._set_type(expr, ptr(operand))
        raise _err(expr, f"unknown unary operator {expr.op!r}")

    def _check_assignment(self, expr: ast.Assignment, scope: _Scope) -> Type:
        assert expr.target is not None and expr.value is not None
        target_ty = self._check_expr(expr.target, scope)
        if id(expr.target) not in self.info.lvalues:
            raise _err(expr, "assignment target is not an lvalue")
        value_ty = self._check_expr(expr.value, scope)
        if expr.op != "=":
            binary_op = expr.op[:-1]
            if target_ty.is_pointer and binary_op in ("+", "-") and value_ty.is_integer:
                pass  # p += n
            else:
                common = self._common_type(target_ty, value_ty)
                if common is None:
                    raise _err(
                        expr,
                        f"incompatible compound assignment: {target_ty} {expr.op} "
                        f"{value_ty}",
                    )
        elif not self._assignable(target_ty, value_ty):
            raise _err(expr, f"cannot assign {value_ty} to {target_ty}")
        return self._set_type(expr, target_ty)

    def _check_call(self, expr: ast.Call, scope: _Scope) -> Type:
        if scope.lookup(expr.name) is not None:
            raise _restriction(
                expr,
                f"calling through a variable {expr.name!r} (indirect calls via "
                f"data pointers are not allowed)",
            )
        signature = self.info.functions.get(expr.name)
        if signature is None:
            raise _err(expr, f"call to undeclared function {expr.name!r}")
        if len(expr.args) != len(signature.param_types):
            raise _err(
                expr,
                f"{expr.name!r} expects {len(signature.param_types)} argument(s), "
                f"got {len(expr.args)}",
            )
        for arg, pty in zip(expr.args, signature.param_types):
            arg_ty = self._check_expr(arg, scope)
            if not self._assignable(pty, arg_ty):
                raise _err(arg, f"argument type {arg_ty} incompatible with {pty}")
        return self._set_type(expr, signature.return_type)

    def _check_index(self, expr: ast.Index, scope: _Scope) -> Type:
        assert expr.base is not None and expr.index is not None
        base_ty = self._check_expr(expr.base, scope)
        index_ty = self._check_expr(expr.index, scope)
        if not index_ty.is_integer:
            raise _err(expr, f"array index must be an integer, got {index_ty}")
        if not isinstance(base_ty, PointerType):
            raise _err(expr, f"cannot index into {base_ty}")
        element = base_ty.pointee
        decayed = self._decay(element)
        return self._set_type(
            expr, decayed, lvalue=not isinstance(element, ArrayType)
        )

    def _check_member(self, expr: ast.Member, scope: _Scope) -> Type:
        assert expr.base is not None
        base_ty = self._check_expr(expr.base, scope)
        if expr.arrow:
            if not (
                isinstance(base_ty, PointerType)
                and isinstance(base_ty.pointee, StructType)
            ):
                raise _err(expr, f"-> requires a struct pointer, got {base_ty}")
            struct_ty = base_ty.pointee
        else:
            if not isinstance(base_ty, StructType):
                raise _err(expr, f". requires a struct, got {base_ty}")
            if id(expr.base) not in self.info.lvalues:
                raise _err(expr, "member access on a non-lvalue struct")
            struct_ty = base_ty
        index = struct_ty.field_index(expr.field_name)
        field_ty = struct_ty.fields[index]
        decayed = self._decay(field_ty)
        return self._set_type(
            expr, decayed, lvalue=not isinstance(field_ty, ArrayType)
        )

    def _check_cast(self, expr: ast.Cast, scope: _Scope) -> Type:
        assert expr.operand is not None
        source = self._check_expr(expr.operand, scope)
        target = self.resolve_type(expr.target_type, allow_void=False)
        self.info.declared_type[id(expr)] = target
        if isinstance(target, (ArrayType, StructType)):
            raise _err(expr, f"cannot cast to aggregate type {target}")
        if isinstance(source, StructType):
            raise _err(expr, f"cannot cast from struct {source}")
        # int<->int, int<->float, ptr<->ptr, ptr<->long are allowed.
        if source.is_pointer and target.is_integer and target != LONG:
            raise _err(expr, "pointers may only be cast to long")
        if source.is_integer and target.is_pointer and source != LONG:
            # Small ints to pointer would be suspicious; allow long only.
            raise _err(expr, "only long may be cast to a pointer")
        if source.is_float and target.is_pointer:
            raise _err(expr, "cannot cast a float to a pointer")
        if source.is_pointer and target.is_float:
            raise _err(expr, "cannot cast a pointer to a float")
        return self._set_type(expr, target)

    # -- conversions ---------------------------------------------------------------------

    @staticmethod
    def _promote(ty: Type) -> Type:
        if isinstance(ty, IntType) and ty.bits < 32:
            return INT
        return ty

    def _common_type(self, a: Type, b: Type) -> Optional[Type]:
        if a == b:
            return a
        if a.is_float or b.is_float:
            if (a.is_float or a.is_integer) and (b.is_float or b.is_integer):
                return DOUBLE
            return None
        if a.is_integer and b.is_integer:
            assert isinstance(a, IntType) and isinstance(b, IntType)
            return a if a.bits >= b.bits else b
        if a.is_pointer and b.is_pointer:
            if a == b:
                return a
            if a == ptr(I8):
                return b
            if b == ptr(I8):
                return a
            return None
        return None

    def _assignable(self, target: Type, value: Type) -> bool:
        if target == value:
            return True
        if target.is_integer and value.is_integer:
            return True  # implicit widening/narrowing as in C
        if target.is_float and (value.is_float or value.is_integer):
            return True
        if target.is_integer and value.is_float:
            return True
        if target.is_pointer and value.is_pointer:
            # void* (char*) converts freely both ways.
            return target == value or target == ptr(I8) or value == ptr(I8)
        return False


def analyze(program: ast.Program) -> SemanticInfo:
    """Run semantic analysis; raises on type or restriction errors."""
    return SemanticAnalyzer().analyze(program)
