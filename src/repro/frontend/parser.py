"""Recursive-descent parser for Mini-C.

Grammar (informal):

    program     := (struct_def | function | global_decl)*
    struct_def  := 'struct' IDENT '{' (type declarator ';')* '}' ';'
    function    := type IDENT '(' params? ')' (block | ';')
    global_decl := type IDENT ('[' INT ']')? ('=' expr)? ';'
    block       := '{' statement* '}'

Expressions use precedence climbing; casts are unambiguous because Mini-C
has no typedefs — a parenthesized type keyword always begins a cast.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import (
    Token,
    decode_char_literal,
    decode_string_literal,
    tokenize,
)

_TYPE_KEYWORDS = frozenset({"char", "int", "long", "double", "void", "struct"})

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%="})


class Parser:
    """Recursive-descent Mini-C parser; see the module grammar sketch."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r}, found {tok.text!r}", tok.line, tok.col
            )
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def at_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS

    # -- top level -------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.kind == "keyword" and tok.text == "struct" and (
                self.peek(2).text == "{"
            ):
                program.items.append(self.parse_struct_def())
                continue
            if not self.at_type():
                raise ParseError(
                    f"expected a declaration, found {tok.text!r}", tok.line, tok.col
                )
            program.items.append(self.parse_top_level_decl())
        return program

    def parse_struct_def(self) -> ast.StructDef:
        start = self.expect("keyword", "struct")
        name = self.expect("ident").text
        self.expect("punct", "{")
        fields = []
        while not self.accept("punct", "}"):
            field_type = self.parse_type_spec()
            field_name = self.expect("ident").text
            if self.accept("punct", "["):
                length = int(self.expect("int").text, 0)
                self.expect("punct", "]")
                field_type.array_length = length
            self.expect("punct", ";")
            fields.append((field_type, field_name))
        self.expect("punct", ";")
        return ast.StructDef(name=name, fields=fields, line=start.line, col=start.col)

    def parse_top_level_decl(self):
        type_spec = self.parse_type_spec()
        name_tok = self.expect("ident")
        if self.peek().text == "(":
            return self.parse_function_rest(type_spec, name_tok)
        # Global variable.
        if self.accept("punct", "["):
            length = int(self.expect("int").text, 0)
            self.expect("punct", "]")
            type_spec.array_length = length
        initializer = None
        if self.accept("punct", "="):
            initializer = self.parse_expression()
        self.expect("punct", ";")
        return ast.GlobalDecl(
            type_spec=type_spec,
            name=name_tok.text,
            initializer=initializer,
            line=name_tok.line,
            col=name_tok.col,
        )

    def parse_function_rest(
        self, return_type: ast.TypeSpec, name_tok: Token
    ) -> ast.FunctionDef:
        self.expect("punct", "(")
        params: List[ast.Param] = []
        if not self.accept("punct", ")"):
            if self.peek().kind == "keyword" and self.peek().text == "void" and self.peek(1).text == ")":
                self.next()
                self.expect("punct", ")")
            else:
                while True:
                    ptype = self.parse_type_spec()
                    pname = self.expect("ident")
                    params.append(
                        ast.Param(
                            type_spec=ptype,
                            name=pname.text,
                            line=pname.line,
                            col=pname.col,
                        )
                    )
                    if self.accept("punct", ")"):
                        break
                    self.expect("punct", ",")
        body: Optional[ast.Block] = None
        if not self.accept("punct", ";"):
            body = self.parse_block()
        return ast.FunctionDef(
            return_type=return_type,
            name=name_tok.text,
            params=params,
            body=body,
            line=name_tok.line,
            col=name_tok.col,
        )

    # -- types --------------------------------------------------------------------------

    def parse_type_spec(self) -> ast.TypeSpec:
        tok = self.expect("keyword")
        if tok.text not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.line, tok.col)
        struct_name: Optional[str] = None
        if tok.text == "struct":
            struct_name = self.expect("ident").text
        spec = ast.TypeSpec(
            base=tok.text, struct_name=struct_name, line=tok.line, col=tok.col
        )
        while self.accept("punct", "*"):
            spec = spec.with_pointer()
        return spec

    # -- statements ------------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("punct", "{")
        block = ast.Block(line=start.line, col=start.col)
        while not self.accept("punct", "}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "punct" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "keyword":
            if tok.text in _TYPE_KEYWORDS and tok.text != "void":
                return self.parse_var_decl()
            if tok.text == "void" and self.peek(1).text == "*":
                return self.parse_var_decl()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "do":
                return self.parse_do_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.next()
                value = None
                if self.peek().text != ";":
                    value = self.parse_expression()
                self.expect("punct", ";")
                return ast.Return(value=value, line=tok.line, col=tok.col)
            if tok.text == "break":
                self.next()
                self.expect("punct", ";")
                return ast.Break(line=tok.line, col=tok.col)
            if tok.text == "continue":
                self.next()
                self.expect("punct", ";")
                return ast.Continue(line=tok.line, col=tok.col)
            if tok.text == "asm":
                self.next()
                self.expect("punct", "(")
                text_tok = self.expect("string")
                self.expect("punct", ")")
                self.expect("punct", ";")
                return ast.InlineAsm(text=text_tok.text, line=tok.line, col=tok.col)
        if tok.kind == "punct" and tok.text == ";":
            self.next()
            return ast.ExprStmt(expr=None, line=tok.line, col=tok.col)
        expr = self.parse_expression()
        self.expect("punct", ";")
        return ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def parse_var_decl(self) -> ast.VarDecl:
        type_spec = self.parse_type_spec()
        name_tok = self.expect("ident")
        if self.accept("punct", "["):
            length = int(self.expect("int").text, 0)
            self.expect("punct", "]")
            type_spec.array_length = length
        initializer = None
        if self.accept("punct", "="):
            initializer = self.parse_expression()
        self.expect("punct", ";")
        return ast.VarDecl(
            type_spec=type_spec,
            name=name_tok.text,
            initializer=initializer,
            line=name_tok.line,
            col=name_tok.col,
        )

    def parse_if(self) -> ast.If:
        start = self.expect("keyword", "if")
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self.parse_statement()
        return ast.If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            line=start.line,
            col=start.col,
        )

    def parse_while(self) -> ast.While:
        start = self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body, line=start.line, col=start.col)

    def parse_do_while(self) -> ast.DoWhile:
        start = self.expect("keyword", "do")
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return ast.DoWhile(body=body, cond=cond, line=start.line, col=start.col)

    def parse_for(self) -> ast.For:
        start = self.expect("keyword", "for")
        self.expect("punct", "(")
        init: Optional[ast.Stmt] = None
        if not self.accept("punct", ";"):
            if self.at_type():
                init = self.parse_var_decl()  # consumes ';'
            else:
                expr = self.parse_expression()
                self.expect("punct", ";")
                init = ast.ExprStmt(expr=expr, line=start.line, col=start.col)
        cond: Optional[ast.Expr] = None
        if not self.accept("punct", ";"):
            cond = self.parse_expression()
            self.expect("punct", ";")
        step: Optional[ast.Expr] = None
        if self.peek().text != ")":
            step = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.For(
            init=init, cond=cond, step=step, body=body, line=start.line, col=start.col
        )

    # -- expressions --------------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()  # right-associative
            return ast.Assignment(
                target=lhs, value=rhs, op=tok.text, line=tok.line, col=tok.col
            )
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        tok = self.peek()
        if tok.kind == "punct" and tok.text == "?":
            self.next()
            if_true = self.parse_expression()
            self.expect("punct", ":")
            if_false = self.parse_conditional()
            return ast.Conditional(
                cond=cond,
                if_true=if_true,
                if_false=if_false,
                line=tok.line,
                col=tok.col,
            )
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinaryOp(
                op=tok.text, lhs=lhs, rhs=rhs, line=tok.line, col=tok.col
            )

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "punct" and tok.text in ("-", "!", "~", "*", "&"):
            self.next()
            operand = self.parse_unary()
            return ast.UnaryOp(
                op=tok.text, operand=operand, line=tok.line, col=tok.col
            )
        if tok.kind == "punct" and tok.text in ("++", "--"):
            # Pre-increment sugar: ++x  =>  x = x + 1.
            self.next()
            operand = self.parse_unary()
            one = ast.IntLiteral(value=1, line=tok.line, col=tok.col)
            return ast.Assignment(
                target=operand,
                value=one,
                op="+=" if tok.text == "++" else "-=",
                line=tok.line,
                col=tok.col,
            )
        if tok.kind == "keyword" and tok.text == "sizeof":
            self.next()
            self.expect("punct", "(")
            target = self.parse_type_spec()
            self.expect("punct", ")")
            return ast.SizeOf(target_type=target, line=tok.line, col=tok.col)
        if tok.kind == "punct" and tok.text == "(" and self.at_type(1):
            # Cast: '(' type ')' unary
            self.next()
            target = self.parse_type_spec()
            self.expect("punct", ")")
            operand = self.parse_unary()
            return ast.Cast(
                target_type=target, operand=operand, line=tok.line, col=tok.col
            )
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind != "punct":
                return expr
            if tok.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("punct", "]")
                expr = ast.Index(base=expr, index=index, line=tok.line, col=tok.col)
            elif tok.text == ".":
                self.next()
                name = self.expect("ident").text
                expr = ast.Member(
                    base=expr, field_name=name, arrow=False, line=tok.line, col=tok.col
                )
            elif tok.text == "->":
                self.next()
                name = self.expect("ident").text
                expr = ast.Member(
                    base=expr, field_name=name, arrow=True, line=tok.line, col=tok.col
                )
            elif tok.text in ("++", "--"):
                # Post-increment sugar, valid only as a statement expression;
                # Mini-C treats it as pre-increment (the workloads never rely
                # on the returned value).
                self.next()
                one = ast.IntLiteral(value=1, line=tok.line, col=tok.col)
                expr = ast.Assignment(
                    target=expr,
                    value=one,
                    op="+=" if tok.text == "++" else "-=",
                    line=tok.line,
                    col=tok.col,
                )
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "int":
            return ast.IntLiteral(value=int(tok.text, 0), line=tok.line, col=tok.col)
        if tok.kind == "float":
            return ast.FloatLiteral(value=float(tok.text), line=tok.line, col=tok.col)
        if tok.kind == "char":
            return ast.IntLiteral(
                value=decode_char_literal(tok.text, tok.line, tok.col),
                line=tok.line,
                col=tok.col,
            )
        if tok.kind == "string":
            return ast.StringLiteral(
                value=decode_string_literal(tok.text, tok.line, tok.col),
                line=tok.line,
                col=tok.col,
            )
        if tok.kind == "keyword" and tok.text == "null":
            return ast.NullLiteral(line=tok.line, col=tok.col)
        if tok.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: List[ast.Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if self.accept("punct", ")"):
                            break
                        self.expect("punct", ",")
                return ast.Call(name=tok.text, args=args, line=tok.line, col=tok.col)
            return ast.Identifier(name=tok.text, line=tok.line, col=tok.col)
        if tok.kind == "punct" and tok.text == "(":
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse(source: str) -> ast.Program:
    """Parse Mini-C source into an AST."""
    return Parser(source).parse_program()
