"""Lowering: Mini-C AST -> IR.

The classic "simple lowering": every local variable and parameter becomes
an entry-block ``alloca`` accessed through loads and stores; mem2reg later
promotes them to SSA.  Expressions are generated in two modes — *address*
(for lvalues) and *value* — with explicit conversion casts inserted
wherever semantic analysis allowed an implicit conversion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import remove_unreachable_blocks
from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.sema import BUILTIN_FUNCTIONS, SemanticInfo, analyze
from repro.frontend.parser import parse
from repro.ir.builder import IRBuilder
from repro.ir.instructions import AllocaInst
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.types import (
    ArrayType,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    ptr,
    size_of,
)
from repro.ir.values import (
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantZero,
    Value,
)


def compile_source(source: str, module_name: str = "minic") -> Module:
    """Front door: Mini-C source text to a verified IR module."""
    program = parse(source)
    info = analyze(program)
    module = Lowering(info, module_name).lower(program)
    from repro.ir.verifier import verify_module

    verify_module(module)
    return module


class _FunctionContext:
    def __init__(self, fn: Function, builder: IRBuilder) -> None:
        self.fn = fn
        self.builder = builder
        self.locals: List[Dict[str, Tuple[AllocaInst, Type]]] = [{}]
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []

    def push_scope(self) -> None:
        self.locals.append({})

    def pop_scope(self) -> None:
        self.locals.pop()

    def define(self, name: str, slot: AllocaInst, ty: Type) -> None:
        self.locals[-1][name] = (slot, ty)

    def lookup(self, name: str) -> Optional[Tuple[AllocaInst, Type]]:
        for scope in reversed(self.locals):
            if name in scope:
                return scope[name]
        return None


class Lowering:
    """AST-to-IR translation; consumes SemanticInfo side tables."""

    def __init__(self, info: SemanticInfo, module_name: str) -> None:
        self.info = info
        self.module = Module(module_name)
        self._string_counter = 0

    # -- module level ---------------------------------------------------------------

    def lower(self, program: ast.Program) -> Module:
        for st in self.info.structs.values():
            self.module.add_struct_type(st)
        for item in program.items:
            if isinstance(item, ast.GlobalDecl):
                self._lower_global(item)
        # Declare every function signature before lowering bodies.
        for name, signature in self.info.functions.items():
            if signature.is_builtin:
                continue
            self.module.get_or_declare(
                name, FunctionType(signature.return_type, signature.param_types)
            )
        for item in program.items:
            if isinstance(item, ast.FunctionDef) and item.body is not None:
                self._lower_function(item)
        return self.module

    def _lower_global(self, node: ast.GlobalDecl) -> None:
        ty = self.info.declared_type[id(node)]
        initializer = self._constant_initializer(ty, node.initializer)
        self.module.add_global(GlobalVariable(node.name, ty, initializer))

    def _constant_initializer(self, ty: Type, expr: Optional[ast.Expr]):
        if expr is None:
            return ConstantZero(ty)
        value = _fold_constant(expr)
        if value is None:
            raise SemanticError(
                f"global initializer must be constant (at {expr.line}:{expr.col})"
            )
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(value))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(value))
        if isinstance(ty, PointerType):
            if value == 0:
                return ConstantNull(ty)
            raise SemanticError("pointer globals may only be initialized to null")
        raise SemanticError(f"cannot initialize a global of type {ty} from a constant")

    def _intern_string(self, data: bytes) -> GlobalVariable:
        name = f".str.{self._string_counter}"
        self._string_counter += 1
        array_ty = ArrayType(I8, len(data))
        init = ConstantArray(
            array_ty, [ConstantInt(I8, byte) for byte in data]
        )
        return self.module.add_global(
            GlobalVariable(name, array_ty, init, is_constant=True)
        )

    def _get_function(self, name: str) -> Function:
        signature = self.info.functions[name]
        return self.module.get_or_declare(
            name, FunctionType(signature.return_type, signature.param_types)
        )

    # -- functions ---------------------------------------------------------------------

    def _lower_function(self, node: ast.FunctionDef) -> None:
        fn = self._get_function(node.name)
        for arg, param in zip(fn.args, node.params):
            arg.name = param.name
        entry = fn.add_block("entry")
        builder = IRBuilder(entry)
        ctx = _FunctionContext(fn, builder)
        signature = self.info.functions[node.name]
        for arg, pty in zip(fn.args, signature.param_types):
            slot = builder.alloca(pty, name=f"{arg.name}.addr")
            builder.store(arg, slot)
            ctx.define(arg.name, slot, pty)
        assert node.body is not None
        self._lower_block(ctx, node.body)
        # Terminate any fall-through block.
        for block in fn.blocks:
            if not block.is_terminated:
                builder.position_at_end(block)
                if fn.return_type.is_void:
                    builder.ret()
                elif isinstance(fn.return_type, IntType):
                    builder.ret(ConstantInt(fn.return_type, 0))
                elif isinstance(fn.return_type, FloatType):
                    builder.ret(ConstantFloat(fn.return_type, 0.0))
                elif isinstance(fn.return_type, PointerType):
                    builder.ret(ConstantNull(fn.return_type))
                else:
                    builder.unreachable()
        remove_unreachable_blocks(fn)

    # -- statements -----------------------------------------------------------------------

    def _lower_block(self, ctx: _FunctionContext, block: ast.Block) -> None:
        ctx.push_scope()
        for stmt in block.statements:
            self._lower_stmt(ctx, stmt)
        ctx.pop_scope()

    def _lower_stmt(self, ctx: _FunctionContext, stmt: ast.Stmt) -> None:
        b = ctx.builder
        if isinstance(stmt, ast.Block):
            self._lower_block(ctx, stmt)
        elif isinstance(stmt, ast.VarDecl):
            ty = self.info.declared_type[id(stmt)]
            # Allocas go to the current block (CARAT treats dynamic stack
            # allocation uniformly); mem2reg only needs scalar entry allocas,
            # and ours are all statically sized so the entry block is best.
            entry = ctx.fn.entry
            saved_block, saved_anchor = b._block, b._anchor
            terminator = entry.terminator
            if terminator is not None:
                b.position_before(terminator)
            else:
                b.position_at_end(entry)
            slot = b.alloca(ty, name=stmt.name)
            b._block, b._anchor = saved_block, saved_anchor
            ctx.define(stmt.name, slot, ty)
            if stmt.initializer is not None:
                value = self._rvalue(ctx, stmt.initializer)
                value = self._convert(
                    ctx, value, self.info.expr_type[id(stmt.initializer)], ty
                )
                b.store(value, slot)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(ctx, stmt.expr, discard=True)
        elif isinstance(stmt, ast.If):
            self._lower_if(ctx, stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(ctx, stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(ctx, stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(ctx, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                b.ret()
            else:
                value = self._rvalue(ctx, stmt.value)
                value = self._convert(
                    ctx,
                    value,
                    self.info.expr_type[id(stmt.value)],
                    ctx.fn.return_type,
                )
                b.ret(value)
            self._start_dead_block(ctx)
        elif isinstance(stmt, ast.Break):
            b.br(ctx.break_targets[-1])
            self._start_dead_block(ctx)
        elif isinstance(stmt, ast.Continue):
            b.br(ctx.continue_targets[-1])
            self._start_dead_block(ctx)
        else:  # pragma: no cover - sema rejects InlineAsm
            raise SemanticError(f"cannot lower {type(stmt).__name__}")

    def _start_dead_block(self, ctx: _FunctionContext) -> None:
        dead = ctx.fn.add_block("dead")
        ctx.builder.position_at_end(dead)

    def _lower_if(self, ctx: _FunctionContext, stmt: ast.If) -> None:
        b = ctx.builder
        assert stmt.cond is not None and stmt.then_body is not None
        then_bb = ctx.fn.add_block("if.then")
        merge_bb = ctx.fn.add_block("if.end")
        else_bb = ctx.fn.add_block("if.else") if stmt.else_body else merge_bb
        cond = self._condition(ctx, stmt.cond)
        b.cond_br(cond, then_bb, else_bb)
        b.position_at_end(then_bb)
        self._lower_stmt(ctx, stmt.then_body)
        if not b.block.is_terminated:
            b.br(merge_bb)
        if stmt.else_body is not None:
            b.position_at_end(else_bb)
            self._lower_stmt(ctx, stmt.else_body)
            if not b.block.is_terminated:
                b.br(merge_bb)
        b.position_at_end(merge_bb)

    def _lower_while(self, ctx: _FunctionContext, stmt: ast.While) -> None:
        b = ctx.builder
        assert stmt.cond is not None and stmt.body is not None
        header = ctx.fn.add_block("while.cond")
        body = ctx.fn.add_block("while.body")
        exit_bb = ctx.fn.add_block("while.end")
        b.br(header)
        b.position_at_end(header)
        cond = self._condition(ctx, stmt.cond)
        b.cond_br(cond, body, exit_bb)
        b.position_at_end(body)
        ctx.break_targets.append(exit_bb)
        ctx.continue_targets.append(header)
        self._lower_stmt(ctx, stmt.body)
        ctx.break_targets.pop()
        ctx.continue_targets.pop()
        if not b.block.is_terminated:
            b.br(header)
        b.position_at_end(exit_bb)

    def _lower_do_while(self, ctx: _FunctionContext, stmt: ast.DoWhile) -> None:
        b = ctx.builder
        assert stmt.cond is not None and stmt.body is not None
        body = ctx.fn.add_block("do.body")
        cond_bb = ctx.fn.add_block("do.cond")
        exit_bb = ctx.fn.add_block("do.end")
        b.br(body)
        b.position_at_end(body)
        ctx.break_targets.append(exit_bb)
        ctx.continue_targets.append(cond_bb)
        self._lower_stmt(ctx, stmt.body)
        ctx.break_targets.pop()
        ctx.continue_targets.pop()
        if not b.block.is_terminated:
            b.br(cond_bb)
        b.position_at_end(cond_bb)
        cond = self._condition(ctx, stmt.cond)
        b.cond_br(cond, body, exit_bb)
        b.position_at_end(exit_bb)

    def _lower_for(self, ctx: _FunctionContext, stmt: ast.For) -> None:
        b = ctx.builder
        assert stmt.body is not None
        ctx.push_scope()
        if stmt.init is not None:
            self._lower_stmt(ctx, stmt.init)
        header = ctx.fn.add_block("for.cond")
        body = ctx.fn.add_block("for.body")
        step_bb = ctx.fn.add_block("for.step")
        exit_bb = ctx.fn.add_block("for.end")
        b.br(header)
        b.position_at_end(header)
        if stmt.cond is not None:
            cond = self._condition(ctx, stmt.cond)
            b.cond_br(cond, body, exit_bb)
        else:
            b.br(body)
        b.position_at_end(body)
        ctx.break_targets.append(exit_bb)
        ctx.continue_targets.append(step_bb)
        self._lower_stmt(ctx, stmt.body)
        ctx.break_targets.pop()
        ctx.continue_targets.pop()
        if not b.block.is_terminated:
            b.br(step_bb)
        b.position_at_end(step_bb)
        if stmt.step is not None:
            self._rvalue(ctx, stmt.step, discard=True)
        b.br(header)
        b.position_at_end(exit_bb)
        ctx.pop_scope()

    # -- expression helpers ----------------------------------------------------------------

    def _expr_type(self, expr: ast.Expr) -> Type:
        return self.info.expr_type[id(expr)]

    def _condition(self, ctx: _FunctionContext, expr: ast.Expr) -> Value:
        """Lower ``expr`` to an i1 truth value."""
        value = self._rvalue(ctx, expr)
        return self._truthy(ctx, value)

    def _truthy(self, ctx: _FunctionContext, value: Value) -> Value:
        b = ctx.builder
        ty = value.type
        if ty == I1:
            return value
        if isinstance(ty, IntType):
            return b.icmp("ne", value, ConstantInt(ty, 0))
        if isinstance(ty, PointerType):
            return b.icmp("ne", value, ConstantNull(ty))
        if isinstance(ty, FloatType):
            return b.fcmp("one", value, ConstantFloat(ty, 0.0))
        raise SemanticError(f"cannot use {ty} as a condition")

    def _convert(
        self, ctx: _FunctionContext, value: Value, source: Type, target: Type
    ) -> Value:
        b = ctx.builder
        if source == target:
            return value
        if isinstance(source, IntType) and isinstance(target, IntType):
            if isinstance(value, ConstantInt):
                return ConstantInt(target, value.value)
            if source.bits < target.bits:
                return b.sext(value, target)
            if source.bits > target.bits:
                return b.trunc(value, target)
            return value
        if isinstance(source, IntType) and isinstance(target, FloatType):
            if isinstance(value, ConstantInt):
                return ConstantFloat(target, float(value.value))
            return b.sitofp(value, target)
        if isinstance(source, FloatType) and isinstance(target, IntType):
            return b.fptosi(value, target)
        if isinstance(source, PointerType) and isinstance(target, PointerType):
            if isinstance(value, ConstantNull):
                return ConstantNull(target)
            return b.bitcast(value, target)
        if isinstance(source, PointerType) and isinstance(target, IntType):
            return b.ptrtoint(value, target)
        if isinstance(source, IntType) and isinstance(target, PointerType):
            return b.inttoptr(value, target)
        raise SemanticError(f"no conversion from {source} to {target}")

    # -- lvalues -----------------------------------------------------------------------------

    def _address(self, ctx: _FunctionContext, expr: ast.Expr) -> Value:
        """Address of an lvalue expression (a pointer value)."""
        b = ctx.builder
        if isinstance(expr, ast.Identifier):
            local = ctx.lookup(expr.name)
            if local is not None:
                return local[0]
            if expr.name in self.info.globals:
                return self.module.get_global(expr.name)
            raise SemanticError(f"no address for identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            assert expr.operand is not None
            return self._rvalue(ctx, expr.operand)
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base = self._rvalue(ctx, expr.base)
            index = self._rvalue(ctx, expr.index)
            index = self._convert(ctx, index, self._expr_type(expr.index), I64)
            return b.gep(base, [index])
        if isinstance(expr, ast.Member):
            assert expr.base is not None
            if expr.arrow:
                base_ptr = self._rvalue(ctx, expr.base)
                struct_ty = base_ptr.type.pointee  # type: ignore[union-attr]
            else:
                base_ptr = self._address(ctx, expr.base)
                struct_ty = base_ptr.type.pointee  # type: ignore[union-attr]
            assert isinstance(struct_ty, StructType)
            field_index = struct_ty.field_index(expr.field_name)
            return b.gep(
                base_ptr,
                [ConstantInt(I64, 0), ConstantInt(I64, field_index)],
            )
        raise SemanticError(
            f"expression is not an lvalue (at {expr.line}:{expr.col})"
        )

    # -- rvalues ------------------------------------------------------------------------------

    def _rvalue(
        self, ctx: _FunctionContext, expr: ast.Expr, discard: bool = False
    ) -> Value:
        b = ctx.builder
        if isinstance(expr, ast.IntLiteral):
            return ConstantInt(I64, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return ConstantFloat(F64, expr.value)
        if isinstance(expr, ast.NullLiteral):
            return ConstantNull(ptr(I8))
        if isinstance(expr, ast.StringLiteral):
            gv = self._intern_string(expr.value)
            zero = ConstantInt(I64, 0)
            return b.gep(gv, [zero, zero])
        if isinstance(expr, ast.Identifier):
            kind, declared = self.info.symbol_kind[id(expr)]
            address = self._address(ctx, expr)
            if isinstance(declared, ArrayType):
                zero = ConstantInt(I64, 0)
                return b.gep(address, [zero, zero])
            return b.load(address)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(ctx, expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(ctx, expr)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(ctx, expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(ctx, expr, discard)
        if isinstance(expr, ast.Index):
            element_ty = self._storage_type_of(expr)
            address = self._address_of_access(ctx, expr)
            if isinstance(element_ty, ArrayType):
                zero = ConstantInt(I64, 0)
                return b.gep(address, [zero, zero])
            return b.load(address)
        if isinstance(expr, ast.Member):
            field_ty = self._storage_type_of(expr)
            address = self._address(ctx, expr)
            if isinstance(field_ty, ArrayType):
                zero = ConstantInt(I64, 0)
                return b.gep(address, [zero, zero])
            return b.load(address)
        if isinstance(expr, ast.Cast):
            assert expr.operand is not None
            value = self._rvalue(ctx, expr.operand)
            return self._convert(
                ctx, value, self._expr_type(expr.operand), self._expr_type(expr)
            )
        if isinstance(expr, ast.SizeOf):
            ty = self.info.declared_type[id(expr)]
            return ConstantInt(I64, size_of(ty))
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(ctx, expr)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}")

    def _storage_type_of(self, expr: ast.Expr) -> Type:
        """The declared (pre-decay) type of the storage an Index/Member
        expression denotes."""
        if isinstance(expr, ast.Index):
            assert expr.base is not None
            base_ty = self._expr_type(expr.base)
            assert isinstance(base_ty, PointerType)
            return base_ty.pointee
        if isinstance(expr, ast.Member):
            assert expr.base is not None
            base_ty = self._expr_type(expr.base)
            if expr.arrow:
                assert isinstance(base_ty, PointerType)
                struct_ty = base_ty.pointee
            else:
                struct_ty = base_ty
            assert isinstance(struct_ty, StructType)
            return struct_ty.fields[struct_ty.field_index(expr.field_name)]
        raise AssertionError("storage type only defined for Index/Member")

    def _address_of_access(self, ctx: _FunctionContext, expr: ast.Index) -> Value:
        assert expr.base is not None and expr.index is not None
        b = ctx.builder
        base = self._rvalue(ctx, expr.base)
        index = self._rvalue(ctx, expr.index)
        index = self._convert(ctx, index, self._expr_type(expr.index), I64)
        return b.gep(base, [index])

    def _lower_binary(self, ctx: _FunctionContext, expr: ast.BinaryOp) -> Value:
        assert expr.lhs is not None and expr.rhs is not None
        b = ctx.builder
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(ctx, expr)
        lhs_ty = self._expr_type(expr.lhs)
        rhs_ty = self._expr_type(expr.rhs)
        result_ty = self._expr_type(expr)

        # Pointer arithmetic.
        if op in ("+", "-") and (lhs_ty.is_pointer or rhs_ty.is_pointer):
            if lhs_ty.is_pointer and rhs_ty.is_pointer:
                lhs = self._rvalue(ctx, expr.lhs)
                rhs = self._rvalue(ctx, expr.rhs)
                li = b.ptrtoint(lhs, I64)
                ri = b.ptrtoint(rhs, I64)
                diff = b.sub(li, ri)
                assert isinstance(lhs_ty, PointerType)
                element = size_of(lhs_ty.pointee)
                if element > 1:
                    return b.sdiv(diff, ConstantInt(I64, element))
                return diff
            if lhs_ty.is_pointer:
                pointer = self._rvalue(ctx, expr.lhs)
                offset = self._rvalue(ctx, expr.rhs)
                offset = self._convert(ctx, offset, rhs_ty, I64)
            else:
                pointer = self._rvalue(ctx, expr.rhs)
                offset = self._rvalue(ctx, expr.lhs)
                offset = self._convert(ctx, offset, lhs_ty, I64)
            if op == "-":
                offset = b.sub(ConstantInt(I64, 0), offset)
            return b.gep(pointer, [offset])

        # Comparisons.
        if op in ("==", "!=", "<", "<=", ">", ">="):
            pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}[op]
            lhs = self._rvalue(ctx, expr.lhs)
            rhs = self._rvalue(ctx, expr.rhs)
            if lhs_ty.is_pointer or rhs_ty.is_pointer:
                # Normalize: compare as integers (handles ptr vs 0/null).
                if lhs.type.is_pointer:
                    lhs = b.ptrtoint(lhs, I64)
                else:
                    lhs = self._convert(ctx, lhs, lhs_ty, I64)
                if rhs.type.is_pointer:
                    rhs = b.ptrtoint(rhs, I64)
                else:
                    rhs = self._convert(ctx, rhs, rhs_ty, I64)
                flag = b.icmp(pred, lhs, rhs)
            else:
                common = self._arith_common(lhs_ty, rhs_ty)
                lhs = self._convert(ctx, lhs, lhs_ty, common)
                rhs = self._convert(ctx, rhs, rhs_ty, common)
                if common.is_float:
                    fpred = {"eq": "oeq", "ne": "one", "slt": "olt", "sle": "ole", "sgt": "ogt", "sge": "oge"}[pred]
                    flag = b.fcmp(fpred, lhs, rhs)
                else:
                    flag = b.icmp(pred, lhs, rhs)
            return b.zext(flag, I64)

        # Plain arithmetic / bitwise.
        common = self._arith_common(lhs_ty, rhs_ty)
        lhs = self._convert(ctx, self._rvalue(ctx, expr.lhs), lhs_ty, common)
        rhs = self._convert(ctx, self._rvalue(ctx, expr.rhs), rhs_ty, common)
        if common.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
        else:
            opcode = {
                "+": "add",
                "-": "sub",
                "*": "mul",
                "/": "sdiv",
                "%": "srem",
                "&": "and",
                "|": "or",
                "^": "xor",
                "<<": "shl",
                ">>": "ashr",
            }[op]
        result = b.binop(opcode, lhs, rhs)
        return self._convert(ctx, result, common, result_ty)

    @staticmethod
    def _arith_common(a: Type, b: Type) -> Type:
        if a.is_float or b.is_float:
            return F64
        assert isinstance(a, IntType) and isinstance(b, IntType)
        return a if a.bits >= b.bits else b

    def _lower_logical(self, ctx: _FunctionContext, expr: ast.BinaryOp) -> Value:
        """Short-circuit && / || producing 0/1 as i64."""
        assert expr.lhs is not None and expr.rhs is not None
        b = ctx.builder
        rhs_bb = ctx.fn.add_block("logic.rhs")
        merge_bb = ctx.fn.add_block("logic.end")
        lhs_flag = self._condition(ctx, expr.lhs)
        lhs_end = b.block
        if expr.op == "&&":
            b.cond_br(lhs_flag, rhs_bb, merge_bb)
            short_value = ConstantInt(I1, 0)
        else:
            b.cond_br(lhs_flag, merge_bb, rhs_bb)
            short_value = ConstantInt(I1, 1)
        b.position_at_end(rhs_bb)
        rhs_flag = self._condition(ctx, expr.rhs)
        rhs_end = b.block
        b.br(merge_bb)
        b.position_at_end(merge_bb)
        phi = b.phi(I1, "logic")
        phi.add_incoming(short_value, lhs_end)
        phi.add_incoming(rhs_flag, rhs_end)
        return b.zext(phi, I64)

    def _lower_unary(self, ctx: _FunctionContext, expr: ast.UnaryOp) -> Value:
        assert expr.operand is not None
        b = ctx.builder
        if expr.op == "*":
            pointee_ty = self._expr_type(expr)
            address = self._rvalue(ctx, expr.operand)
            operand_ty = self._expr_type(expr.operand)
            assert isinstance(operand_ty, PointerType)
            if isinstance(operand_ty.pointee, ArrayType):
                zero = ConstantInt(I64, 0)
                return b.gep(address, [zero, zero])
            return b.load(address)
        if expr.op == "&":
            return self._address(ctx, expr.operand)
        value = self._rvalue(ctx, expr.operand)
        source_ty = self._expr_type(expr.operand)
        result_ty = self._expr_type(expr)
        if expr.op == "-":
            value = self._convert(ctx, value, source_ty, result_ty)
            if result_ty.is_float:
                return b.fsub(ConstantFloat(F64, 0.0), value)
            assert isinstance(result_ty, IntType)
            return b.sub(ConstantInt(result_ty, 0), value)
        if expr.op == "!":
            flag = self._truthy(ctx, value)
            inverted = b.xor(flag, ConstantInt(I1, 1))
            return b.zext(inverted, I64)
        if expr.op == "~":
            value = self._convert(ctx, value, source_ty, result_ty)
            assert isinstance(result_ty, IntType)
            return b.xor(value, ConstantInt(result_ty, -1))
        raise SemanticError(f"unknown unary operator {expr.op!r}")

    def _lower_assignment(self, ctx: _FunctionContext, expr: ast.Assignment) -> Value:
        assert expr.target is not None and expr.value is not None
        b = ctx.builder
        address = self._address(ctx, expr.target)
        target_ty = address.type.pointee  # type: ignore[union-attr]
        value = self._rvalue(ctx, expr.value)
        value_ty = self._expr_type(expr.value)
        if expr.op == "=":
            stored = self._convert(ctx, value, value_ty, target_ty)
        else:
            binary_op = expr.op[0]
            current = b.load(address)
            if isinstance(target_ty, PointerType):
                offset = self._convert(ctx, value, value_ty, I64)
                if binary_op == "-":
                    offset = b.sub(ConstantInt(I64, 0), offset)
                stored = b.gep(current, [offset])
            elif target_ty.is_float:
                value_f = self._convert(ctx, value, value_ty, F64)
                opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[binary_op]
                stored = b.binop(opcode, current, value_f)
            else:
                assert isinstance(target_ty, IntType)
                value_i = self._convert(ctx, value, value_ty, target_ty)
                opcode = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem"}[binary_op]
                stored = b.binop(opcode, current, value_i)
        b.store(stored, address)
        return stored

    def _lower_call(
        self, ctx: _FunctionContext, expr: ast.Call, discard: bool
    ) -> Value:
        b = ctx.builder
        signature = self.info.functions[expr.name]
        fn = self.module.get_or_declare(
            expr.name, FunctionType(signature.return_type, signature.param_types)
        )
        args: List[Value] = []
        for arg, pty in zip(expr.args, signature.param_types):
            value = self._rvalue(ctx, arg)
            args.append(self._convert(ctx, value, self._expr_type(arg), pty))
        call = b.call(fn, args)
        if signature.return_type.is_void and not discard:
            # Void value used in an expression; sema only allows this in
            # expression statements, so reaching here is a bug.
            pass
        return call

    def _lower_conditional(self, ctx: _FunctionContext, expr: ast.Conditional) -> Value:
        assert expr.cond and expr.if_true and expr.if_false
        b = ctx.builder
        result_ty = self._expr_type(expr)
        true_bb = ctx.fn.add_block("cond.true")
        false_bb = ctx.fn.add_block("cond.false")
        merge_bb = ctx.fn.add_block("cond.end")
        cond = self._condition(ctx, expr.cond)
        b.cond_br(cond, true_bb, false_bb)
        b.position_at_end(true_bb)
        true_value = self._rvalue(ctx, expr.if_true)
        true_value = self._convert(
            ctx, true_value, self._expr_type(expr.if_true), result_ty
        )
        true_end = b.block
        b.br(merge_bb)
        b.position_at_end(false_bb)
        false_value = self._rvalue(ctx, expr.if_false)
        false_value = self._convert(
            ctx, false_value, self._expr_type(expr.if_false), result_ty
        )
        false_end = b.block
        b.br(merge_bb)
        b.position_at_end(merge_bb)
        phi = b.phi(result_ty, "cond")
        phi.add_incoming(true_value, true_end)
        phi.add_incoming(false_value, false_end)
        return phi


def _fold_constant(expr: ast.Expr):
    """Fold a constant initializer expression to a Python number, or None."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.NullLiteral):
        return 0
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" and expr.operand is not None:
        inner = _fold_constant(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.BinaryOp) and expr.lhs is not None and expr.rhs is not None:
        lhs = _fold_constant(expr.lhs)
        rhs = _fold_constant(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                return lhs // rhs if isinstance(lhs, int) and isinstance(rhs, int) else lhs / rhs
        except ZeroDivisionError:
            return None
    return None
