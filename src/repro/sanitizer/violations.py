"""Structured findings for the cross-layer invariant checker.

A :class:`Violation` is one broken invariant, attributed to the rule that
caught it, the process it belongs to (when one does), and the address or
frame it is about.  A :class:`SanitizerReport` collects the violations of
one checkpoint (or of a whole run, when reports are merged).

``error`` severity means the memory state is provably inconsistent —
something the Figure 8 protocol promises can never happen.  ``warning``
severity flags states that are legal under CARAT's stale-tolerant design
(e.g. an escape cell whose pointer was overwritten) but worth surfacing,
because a real corruption can hide behind the same signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One broken (or suspicious) invariant."""

    rule: str
    message: str
    severity: str = SEVERITY_ERROR
    pid: Optional[int] = None
    #: The address/frame/vpn the finding is about, when one applies.
    subject: Optional[int] = None

    def describe(self) -> str:
        who = f" pid={self.pid}" if self.pid is not None else ""
        what = f" @{self.subject:#x}" if self.subject is not None else ""
        return f"[{self.severity}] {self.rule}{who}{what}: {self.message}"


@dataclass
class SanitizerReport:
    """The findings of one checkpoint (or an accumulated session)."""

    label: str = "check"
    checks_run: int = 0
    violations: List[Violation] = field(default_factory=list)

    def add(
        self,
        rule: str,
        message: str,
        severity: str = SEVERITY_ERROR,
        pid: Optional[int] = None,
        subject: Optional[int] = None,
    ) -> None:
        self.violations.append(Violation(rule, message, severity, pid, subject))

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violation was found."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def merge(self, other: "SanitizerReport") -> None:
        self.checks_run += other.checks_run
        self.violations.extend(other.violations)

    def describe(self) -> str:
        head = (
            f"{self.label}: {self.checks_run} rule check(s), "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        if not self.violations:
            return head
        return "\n".join([head] + [f"  {v.describe()}" for v in self.violations])
