"""Cross-layer memory-state sanitizer.

CARAT's safety argument is a set of software invariants spanning every
layer of the system — region set, Allocation Table, escape map, page
tables, TLBs, frame allocator, heap.  This package checks them end to
end: :class:`InvariantChecker` evaluates composable rules over a whole
kernel, :class:`Sanitizer` drives it from the kernel/interpreter hook
points, :class:`ShadowedEscapeMap` keeps redundant escape metadata so
even single-structure corruption is observable, and
:class:`FaultInjector` deliberately breaks each invariant so the
meta-tests can prove every fault class is detected.
"""

from repro.sanitizer.checker import (
    CheckContext,
    InvariantChecker,
    region_geometry_problems,
)
from repro.sanitizer.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPoint,
    InjectedFault,
    InjectedHang,
    ProtocolFaultInjector,
    parse_fault_points,
    random_fault_schedule,
)
from repro.sanitizer.hooks import Sanitizer, SanitizerError
from repro.sanitizer.shadow import ShadowedEscapeMap, install_escape_shadow
from repro.sanitizer.violations import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SanitizerReport,
    Violation,
)

__all__ = [
    "CheckContext",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPoint",
    "InjectedFault",
    "InjectedHang",
    "InvariantChecker",
    "ProtocolFaultInjector",
    "parse_fault_points",
    "random_fault_schedule",
    "SanitizerReport",
    "Sanitizer",
    "SanitizerError",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "ShadowedEscapeMap",
    "Violation",
    "install_escape_shadow",
    "region_geometry_problems",
]
