"""Wiring the invariant checker into the execution machinery.

A :class:`Sanitizer` drives one :class:`InvariantChecker` from three hook
points:

* **kernel change requests** — the kernel calls
  :meth:`on_change_request` after every page move, allocation move,
  protection change, stack expansion, and fault service (attach with
  :meth:`attach_kernel`);
* **interpreter ticks** — :meth:`attach_interpreter` chains onto the
  tick hook (the safepoint callback), checking every ``every_n_ticks``
  safepoints;
* **end of run** — the executor calls :meth:`finish` once the program
  exits.

With ``raise_on_violation`` (the default) the first error-severity
finding raises :class:`SanitizerError` at the hook that caught it, so a
stack trace points at the operation that corrupted state.  Audit-style
callers (the ``sanitize`` CLI subcommand) disable it and read the
accumulated :attr:`report` instead.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.sanitizer.checker import InvariantChecker
from repro.sanitizer.shadow import install_escape_shadow
from repro.sanitizer.violations import SanitizerReport

__all__ = ["Sanitizer", "SanitizerError"]


class SanitizerError(ReproError):
    """An invariant checkpoint found error-severity violations."""

    def __init__(self, report: SanitizerReport) -> None:
        super().__init__(report.describe())
        self.report = report


class Sanitizer:
    """One session of invariant checking over a kernel and its programs."""

    def __init__(
        self,
        checker: Optional[InvariantChecker] = None,
        every_n_ticks: int = 1,
        raise_on_violation: bool = True,
        shadow_escapes: bool = True,
    ) -> None:
        if every_n_ticks < 1:
            raise ValueError("every_n_ticks must be >= 1")
        self.checker = checker if checker is not None else InvariantChecker()
        self.every_n_ticks = every_n_ticks
        self.raise_on_violation = raise_on_violation
        self.shadow_escapes = shadow_escapes
        #: Accumulated findings across every checkpoint of the session.
        self.report = SanitizerReport(label="session")
        #: Checkpoints evaluated (each runs the full rule set).
        self.checks_run = 0
        self._ticks_seen = 0

    # -- wiring ----------------------------------------------------------

    def attach_kernel(self, kernel) -> "Sanitizer":
        """Register as the kernel's sanitizer; change requests will call
        :meth:`on_change_request`.  Existing CARAT processes get their
        escape maps shadowed immediately."""
        kernel.attach_sanitizer(self)
        for process in kernel.processes.values():
            self.on_process_loaded(process)
        return self

    def attach_interpreter(self, interpreter) -> "Sanitizer":
        """Chain onto the interpreter's tick hook: check the kernel at
        every ``every_n_ticks``-th safepoint."""
        previous = interpreter.tick_hook

        def hook(interp) -> None:
            if previous is not None:
                previous(interp)
            self._ticks_seen += 1
            if self._ticks_seen % self.every_n_ticks == 0:
                self.check_now(interp.kernel, label="tick")

        interpreter.tick_hook = hook
        return self

    # -- hook entry points ----------------------------------------------

    def on_process_loaded(self, process) -> None:
        """Kernel callback when a process is created (and on attach, for
        processes that already exist): install the shadow escape map."""
        if self.shadow_escapes and process.runtime is not None:
            install_escape_shadow(process.runtime)

    def on_change_request(self, kernel, label: str) -> None:
        """Kernel callback after a change request completed."""
        self.check_now(kernel, label=label)

    def finish(self, kernel) -> SanitizerReport:
        """The end-of-run checkpoint."""
        return self.check_now(kernel, label="end-of-run")

    # -- checking ---------------------------------------------------------

    def check_now(
        self,
        kernel,
        label: str = "manual",
        register_snapshots=None,
    ) -> SanitizerReport:
        report = self.checker.check_kernel(
            kernel, register_snapshots=register_snapshots, label=label
        )
        self.checks_run += 1
        self.report.merge(report)
        if self.raise_on_violation and not report.ok:
            raise SanitizerError(report)
        return report

    # -- results ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.report.ok

    def describe(self) -> str:
        verdict = "clean" if self.ok else "VIOLATIONS"
        return (
            f"{self.checks_run} checkpoint(s), "
            f"{len(self.report.errors)} error(s), "
            f"{len(self.report.warnings)} warning(s) -> {verdict}"
        )
