"""Redundant escape-map metadata (the CryptSan trick).

Most of the checker's rules cross-validate two live structures against
each other, but a *dropped* escape record has no second structure to
disagree with — the map simply forgets the cell and the next move leaves
a dangling pointer behind.  :class:`ShadowedEscapeMap` closes that hole:
it is a transparent proxy that replays every mutation on an independent
shadow copy, so any out-of-band corruption of the primary (a lost record,
a missed rekey) shows up as a primary/shadow divergence the checker's
``escape-shadow`` rule reports.
"""

from __future__ import annotations

from typing import List

from repro.runtime.escape_map import AllocationToEscapeMap

__all__ = ["ShadowedEscapeMap", "install_escape_shadow"]


class ShadowedEscapeMap:
    """Proxy around an :class:`AllocationToEscapeMap` that mirrors every
    mutation into a second, independent map.

    All reads and any method not listed below fall through to the primary
    untouched, so the proxy is drop-in wherever the raw map is used.
    """

    def __init__(self, primary: AllocationToEscapeMap) -> None:
        self._primary = primary
        shadow = AllocationToEscapeMap(batch_limit=primary.batch_limit)
        for base, locations in primary.resolved_items():
            shadow._escapes[base] = set(locations)
        shadow._pending = primary.pending_locations()
        self.shadow = shadow

    # -- mutators: replayed on both copies ------------------------------

    def record(self, location: int) -> None:
        self._primary.record(location)
        self.shadow.record(location)

    def flush(self, table, read_pointer) -> int:
        resolved = self._primary.flush(table, read_pointer)
        self.shadow.flush(table, read_pointer)
        return resolved

    def rekey(self, old_address: int, new_address: int) -> None:
        self._primary.rekey(old_address, new_address)
        self.shadow.rekey(old_address, new_address)

    def rekey_all(self, moves) -> None:
        moves = list(moves)
        self._primary.rekey_all(moves)
        self.shadow.rekey_all(moves)

    def drop_allocation(self, address: int) -> None:
        self._primary.drop_allocation(address)
        self.shadow.drop_allocation(address)

    def rewrite_range(self, lo: int, hi: int, delta: int) -> int:
        rewritten = self._primary.rewrite_range(lo, hi, delta)
        self.shadow.rewrite_range(lo, hi, delta)
        return rewritten

    def rewrite_locations(self, moves) -> int:
        moves = list(moves)
        rewritten = self._primary.rewrite_locations(moves)
        self.shadow.rewrite_locations(moves)
        return rewritten

    # -- everything else reads the primary ------------------------------

    def __getattr__(self, name: str):
        return getattr(self._primary, name)

    # -- divergence check ------------------------------------------------

    def divergences(self) -> List[str]:
        """Primary/shadow disagreements, as human-readable messages."""
        problems: List[str] = []
        primary = dict(self._primary.resolved_items())
        shadow = dict(self.shadow.resolved_items())
        for base in sorted(set(primary) | set(shadow)):
            mine = primary.get(base, set())
            theirs = shadow.get(base, set())
            if mine == theirs:
                continue
            lost = sorted(theirs - mine)
            extra = sorted(mine - theirs)
            detail = []
            if lost:
                detail.append(
                    "lost " + ", ".join(f"{loc:#x}" for loc in lost)
                )
            if extra:
                detail.append(
                    "extra " + ", ".join(f"{loc:#x}" for loc in extra)
                )
            problems.append(
                f"escape set of allocation {base:#x} diverged from its "
                f"shadow ({'; '.join(detail)})"
            )
        if sorted(self._primary.pending_locations()) != sorted(
            self.shadow.pending_locations()
        ):
            problems.append("pending escape queue diverged from its shadow")
        return problems


def install_escape_shadow(runtime) -> ShadowedEscapeMap:
    """Wrap a :class:`~repro.runtime.runtime.CaratRuntime`'s escape map in
    a shadow proxy, rebinding every reference the runtime holds (the
    patcher captured the map at construction)."""
    if isinstance(runtime.escapes, ShadowedEscapeMap):
        return runtime.escapes
    proxy = ShadowedEscapeMap(runtime.escapes)
    runtime.escapes = proxy
    runtime.patcher.escapes = proxy
    return proxy
